//! Workspace root package: hosts the integration tests in `tests/` and the
//! runnable examples in `examples/`. The library itself just re-exports the
//! `polyview` facade so examples can `use polyview_repro as polyview;` if
//! they wish; real consumers depend on the `polyview` crate directly.

pub use polyview::*;

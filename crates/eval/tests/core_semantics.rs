//! Core-language semantics (paper Section 2): records with identity,
//! L-value sharing via `extract`, sets, `hom`, `fix`, and equality.

use polyview_eval::{Machine, RuntimeError, Value};
use polyview_syntax::builder as b;
use polyview_syntax::sugar;
use polyview_syntax::Expr;

fn eval(e: &Expr) -> Value {
    Machine::new().eval(e).expect("evaluation succeeds")
}

fn eval_err(e: &Expr) -> RuntimeError {
    Machine::new().eval(e).expect_err("evaluation fails")
}

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

#[test]
fn literals_and_builtins() {
    assert_eq!(eval_show(&b::int(42)), "42");
    assert_eq!(eval_show(&b::add(b::int(2), b::int(3))), "5");
    assert_eq!(eval_show(&b::mul(b::int(4), b::int(5))), "20");
    assert_eq!(eval_show(&b::str("hi")), "\"hi\"");
    assert_eq!(eval_show(&b::unit()), "()");
}

#[test]
fn lambda_and_application() {
    let e = b::app(b::lam("x", b::add(b::v("x"), b::int(1))), b::int(41));
    assert_eq!(eval_show(&e), "42");
}

#[test]
fn closures_capture_lexically() {
    // let y = 10 in let f = λx. x + y in let y = 0 in f 1
    let e = b::let_(
        "y",
        b::int(10),
        b::let_(
            "f",
            b::lam("x", b::add(b::v("x"), b::v("y"))),
            b::let_("y", b::int(0), b::app(b::v("f"), b::int(1))),
        ),
    );
    assert_eq!(eval_show(&e), "11");
}

#[test]
fn record_field_access() {
    let joe = b::record([b::imm("Name", b::str("Doe")), b::mt("Salary", b::int(3000))]);
    let e = b::let_("joe", joe, b::dot(b::v("joe"), "Salary"));
    assert_eq!(eval_show(&e), "3000");
}

#[test]
fn record_update_mutates() {
    let joe = b::record([b::mt("Salary", b::int(3000))]);
    let e = b::let_(
        "joe",
        joe,
        b::let_(
            "_",
            b::update(b::v("joe"), "Salary", b::int(4000)),
            b::dot(b::v("joe"), "Salary"),
        ),
    );
    assert_eq!(eval_show(&e), "4000");
}

#[test]
fn update_immutable_field_is_runtime_error() {
    // (Caught statically in the full pipeline; the raw machine reports it.)
    let e = b::let_(
        "r",
        b::record([b::imm("Name", b::str("Joe"))]),
        b::update(b::v("r"), "Name", b::str("Peter")),
    );
    assert!(matches!(eval_err(&e), RuntimeError::ImmutableField(_)));
}

#[test]
fn extract_shares_lvalues_across_records() {
    // The paper's Doe/john example: joe's Salary, Doe's Income and john's
    // (immutable!) Salary all share one L-value.
    let prog = b::let_(
        "joe",
        b::record([b::imm("Name", b::str("Doe")), b::mt("Salary", b::int(3000))]),
        b::let_(
            "Doe",
            b::record([
                b::imm("Name", b::str("Doe")),
                b::mt("Income", b::extract(b::v("joe"), "Salary")),
            ]),
            b::let_(
                "john",
                b::record([
                    b::imm("Name", b::str("John")),
                    b::imm("Salary", b::extract(b::v("joe"), "Salary")),
                ]),
                b::let_(
                    "_",
                    b::update(b::v("joe"), "Salary", b::int(9999)),
                    Expr::tuple([
                        b::dot(b::v("Doe"), "Income"),
                        b::dot(b::v("john"), "Salary"),
                    ]),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&prog), "[1 = 9999, 2 = 9999]");
}

#[test]
fn update_through_shared_lvalue_flows_back() {
    // Updating Doe's Income changes joe's Salary too.
    let prog = b::let_(
        "joe",
        b::record([b::mt("Salary", b::int(1))]),
        b::let_(
            "Doe",
            b::record([b::mt("Income", b::extract(b::v("joe"), "Salary"))]),
            b::let_(
                "_",
                b::update(b::v("Doe"), "Income", b::int(77)),
                b::dot(b::v("joe"), "Salary"),
            ),
        ),
    );
    assert_eq!(eval_show(&prog), "77");
}

#[test]
fn extract_from_immutable_field_fails() {
    let e = b::let_(
        "r",
        b::record([b::imm("Name", b::str("x"))]),
        b::extract(b::v("r"), "Name"),
    );
    assert!(matches!(eval_err(&e), RuntimeError::ImmutableField(_)));
}

#[test]
fn record_equality_is_identity() {
    // Two syntactically identical records are different (new identity per
    // evaluation); a record equals itself.
    let two = b::eq(
        b::record([b::imm("a", b::int(1))]),
        b::record([b::imm("a", b::int(1))]),
    );
    assert_eq!(eval_show(&two), "false");
    let same = b::let_(
        "r",
        b::record([b::imm("a", b::int(1))]),
        b::eq(b::v("r"), b::v("r")),
    );
    assert_eq!(eval_show(&same), "true");
}

#[test]
fn function_equality_is_identity() {
    let same = b::let_("f", b::lam("x", b::v("x")), b::eq(b::v("f"), b::v("f")));
    assert_eq!(eval_show(&same), "true");
    let diff = b::eq(b::lam("x", b::v("x")), b::lam("x", b::v("x")));
    assert_eq!(eval_show(&diff), "false");
}

#[test]
fn base_equality_is_structural() {
    assert_eq!(eval_show(&b::eq(b::int(3), b::int(3))), "true");
    assert_eq!(eval_show(&b::eq(b::str("a"), b::str("a"))), "true");
    assert_eq!(eval_show(&b::eq(b::str("a"), b::str("b"))), "false");
}

#[test]
fn set_literals_deduplicate() {
    assert_eq!(
        eval_show(&b::set([b::int(1), b::int(2), b::int(1)])),
        "{1, 2}"
    );
}

#[test]
fn set_of_records_dedups_by_identity() {
    // Distinct record literals have distinct identities — both stay.
    let e = b::set([
        b::record([b::imm("a", b::int(1))]),
        b::record([b::imm("a", b::int(1))]),
    ]);
    let mut m = Machine::new();
    let v = m.eval(&e).expect("eval");
    assert_eq!(v.as_set().expect("set").len(), 2);
    // The same record twice stays once.
    let e2 = b::let_(
        "r",
        b::record([b::imm("a", b::int(1))]),
        b::set([b::v("r"), b::v("r")]),
    );
    let v2 = m.eval(&e2).expect("eval");
    assert_eq!(v2.as_set().expect("set").len(), 1);
}

#[test]
fn union_and_hom() {
    let e = b::union(
        b::set([b::int(1), b::int(2)]),
        b::set([b::int(2), b::int(3)]),
    );
    assert_eq!(eval_show(&e), "{1, 2, 3}");

    // Sum over a set via hom.
    let sum = b::hom(
        b::set([b::int(1), b::int(2), b::int(3)]),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&sum), "6");
}

#[test]
fn hom_on_empty_set_yields_zero() {
    let e = b::hom(
        b::empty(),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(42),
    );
    assert_eq!(eval_show(&e), "42");
}

#[test]
fn fix_computes_factorial() {
    let fact = Expr::fix(
        "f",
        b::lam(
            "n",
            b::if_(
                b::eq(b::v("n"), b::int(0)),
                b::int(1),
                b::mul(b::v("n"), b::app(b::v("f"), b::sub(b::v("n"), b::int(1)))),
            ),
        ),
    );
    assert_eq!(eval_show(&b::app(fact, b::int(6))), "720");
}

#[test]
fn fuel_bounds_divergence() {
    let omega = Expr::fix("f", b::lam("x", b::app(b::v("f"), b::v("x"))));
    let e = b::app(omega, b::int(0));
    let mut m = Machine::with_fuel(1_500);
    assert!(matches!(m.eval(&e), Err(RuntimeError::FuelExhausted)));
}

#[test]
fn division_by_zero_reported() {
    let e = b::app2(b::v("div"), b::int(1), b::int(0));
    assert_eq!(eval_err(&e), RuntimeError::DivisionByZero);
}

#[test]
fn sugar_member_map_filter_prod() {
    let s = b::set([b::int(1), b::int(2), b::int(3)]);
    assert_eq!(eval_show(&sugar::member(b::int(2), s.clone())), "true");
    assert_eq!(eval_show(&sugar::member(b::int(9), s.clone())), "false");
    assert_eq!(
        eval_show(&sugar::map(
            b::lam("x", b::mul(b::v("x"), b::int(10))),
            s.clone()
        )),
        "{10, 20, 30}"
    );
    assert_eq!(
        eval_show(&sugar::filter(
            b::lam("x", b::gt(b::v("x"), b::int(1))),
            s.clone()
        )),
        "{2, 3}"
    );
    let p = sugar::prod2(b::set([b::int(1), b::int(2)]), b::set([b::int(10)]));
    let mut m = Machine::new();
    let v = m.eval(&p).expect("eval");
    assert_eq!(v.as_set().expect("set").len(), 2);
}

#[test]
fn sugar_nary_prod_sizes() {
    let p = sugar::prod(vec![
        b::set([b::int(1), b::int(2)]),
        b::set([b::int(3), b::int(4), b::int(5)]),
        b::set([b::int(6)]),
    ]);
    let mut m = Machine::new();
    let v = m.eval(&p).expect("eval");
    assert_eq!(v.as_set().expect("set").len(), 6);
}

#[test]
fn sugar_mutual_recursion_even_odd() {
    use polyview_syntax::Label;
    let defs = vec![
        (
            Label::new("even"),
            Label::new("n"),
            b::if_(
                b::eq(b::v("n"), b::int(0)),
                b::boolean(true),
                b::app(b::v("odd"), b::sub(b::v("n"), b::int(1))),
            ),
        ),
        (
            Label::new("odd"),
            Label::new("n"),
            b::if_(
                b::eq(b::v("n"), b::int(0)),
                b::boolean(false),
                b::app(b::v("even"), b::sub(b::v("n"), b::int(1))),
            ),
        ),
    ];
    let e = sugar::fun_and(defs, b::app(b::v("even"), b::int(10)));
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn eval_is_deterministic() {
    let e = b::union(
        b::set([b::int(3), b::int(1)]),
        b::set([b::int(2), b::int(1)]),
    );
    assert_eq!(eval_show(&e), eval_show(&e));
}

#[test]
fn unbound_variable_at_runtime() {
    assert!(matches!(eval_err(&b::v("ghost")), RuntimeError::Unbound(_)));
}

#[test]
fn value_shapes_via_eval() {
    assert_eq!(eval(&b::int(1)).shape(), "int");
    assert_eq!(eval(&b::lam("x", b::v("x"))).shape(), "function");
    assert_eq!(eval(&b::empty()).shape(), "set");
}

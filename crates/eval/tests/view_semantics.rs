//! Object and view semantics (paper Section 3): the joe/joe_view example,
//! lazy view evaluation, update propagation through views, `fuse`,
//! `relobj`, and `objeq`-based set semantics.

use polyview_eval::{Machine, Value};
use polyview_syntax::builder as b;
use polyview_syntax::sugar;
use polyview_syntax::Expr;

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

/// The raw joe record from §3.3.
fn joe_raw() -> Expr {
    b::record([
        b::imm("Name", b::str("Joe")),
        b::imm("BirthYear", b::int(1955)),
        b::mt("Salary", b::int(2000)),
        b::mt("Bonus", b::int(5000)),
    ])
}

/// The §3.3 viewing function: rename, hide, compute, restrict.
fn joe_view_fn() -> Expr {
    b::lam(
        "x",
        b::record([
            b::imm("Name", b::dot(b::v("x"), "Name")),
            b::imm(
                "Age",
                b::sub(
                    b::app(b::v("this_year"), b::unit()),
                    b::dot(b::v("x"), "BirthYear"),
                ),
            ),
            b::imm("Income", b::dot(b::v("x"), "Salary")),
            b::mt("Bonus", b::extract(b::v("x"), "Bonus")),
        ]),
    )
}

fn with_joe_view(body: Expr) -> Expr {
    b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::let_("joe_view", b::as_view(b::v("joe"), joe_view_fn()), body),
    )
}

#[test]
fn idview_materializes_to_raw() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::query(b::lam("x", b::v("x")), b::v("joe")),
    );
    assert_eq!(
        eval_show(&e),
        "[BirthYear = 1955, Bonus := 5000, Name = \"Joe\", Salary := 2000]"
    );
}

#[test]
fn view_renames_hides_computes() {
    let e = with_joe_view(b::query(b::lam("x", b::v("x")), b::v("joe_view")));
    assert_eq!(
        eval_show(&e),
        "[Age = 39, Bonus := 5000, Income = 2000, Name = \"Joe\"]"
    );
}

#[test]
fn paper_annual_income_query_yields_29000() {
    // query(Annual_Income, joe_view) = 2000 * 12 + 5000 = 29000.
    let annual = b::lam(
        "p",
        b::add(
            b::mul(b::dot(b::v("p"), "Income"), b::int(12)),
            b::dot(b::v("p"), "Bonus"),
        ),
    );
    let e = with_joe_view(b::query(annual, b::v("joe_view")));
    assert_eq!(eval_show(&e), "29000");
}

#[test]
fn objeq_joe_and_joe_view_is_true() {
    let e = with_joe_view(sugar::objeq(b::v("joe"), b::v("joe_view")));
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn eq_on_distinct_view_associations_is_false() {
    // joe and joe_view have the same raw object but are distinct
    // associations, so the paper's record/function-style eq is false.
    let e = with_joe_view(b::eq(b::v("joe"), b::v("joe_view")));
    assert_eq!(eval_show(&e), "false");
}

#[test]
fn paper_view_update_adjust_bonus() {
    // adjustBonus joe_view sets Bonus := Income * 3 = 6000; afterwards both
    // the view and the underlying joe reflect the change (lazy evaluation).
    let adjust = b::lam(
        "p",
        b::query(
            b::lam(
                "x",
                b::update(
                    b::v("x"),
                    "Bonus",
                    b::mul(b::dot(b::v("x"), "Income"), b::int(3)),
                ),
            ),
            b::v("p"),
        ),
    );
    let e = with_joe_view(b::let_(
        "_",
        b::app(adjust, b::v("joe_view")),
        Expr::tuple([
            b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("joe_view")),
            b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("joe")),
        ]),
    ));
    assert_eq!(eval_show(&e), "[1 = 6000, 2 = 6000]");
}

#[test]
fn update_through_raw_visible_through_view() {
    // Views are lazy: changing joe's Salary changes joe_view's Income.
    let e = with_joe_view(b::let_(
        "_",
        b::query(
            b::lam("x", b::update(b::v("x"), "Salary", b::int(4000))),
            b::v("joe"),
        ),
        b::query(b::lam("x", b::dot(b::v("x"), "Income")), b::v("joe_view")),
    ));
    assert_eq!(eval_show(&e), "4000");
}

#[test]
fn view_composition_stacks() {
    // A second view over joe_view hides everything but Name.
    let e = with_joe_view(b::let_(
        "v2",
        b::as_view(
            b::v("joe_view"),
            b::lam("y", b::record([b::imm("N", b::dot(b::v("y"), "Name"))])),
        ),
        b::query(b::lam("z", b::dot(b::v("z"), "N")), b::v("v2")),
    ));
    assert_eq!(eval_show(&e), "\"Joe\"");
}

#[test]
fn fuse_same_raw_yields_singleton_product() {
    let e = with_joe_view(b::let_(
        "fused",
        b::fuse(b::v("joe"), b::v("joe_view")),
        b::hom(
            b::v("fused"),
            b::lam(
                "o",
                b::query(
                    b::lam(
                        "p",
                        Expr::tuple([
                            b::dot(b::proj(b::v("p"), 1), "Salary"),
                            b::dot(b::proj(b::v("p"), 2), "Income"),
                        ]),
                    ),
                    b::v("o"),
                ),
            ),
            b::lam("a", b::lam("acc", b::v("a"))),
            Expr::tuple([b::int(-1), b::int(-1)]),
        ),
    ));
    assert_eq!(eval_show(&e), "[1 = 2000, 2 = 2000]");
}

#[test]
fn fuse_different_raws_is_empty() {
    let e = b::let_(
        "a",
        b::id_view(b::record([b::imm("x", b::int(1))])),
        b::let_(
            "b",
            b::id_view(b::record([b::imm("x", b::int(1))])),
            b::eq(b::fuse(b::v("a"), b::v("b")), b::empty()),
        ),
    );
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn objeq_of_unrelated_objects_is_false() {
    let e = b::let_(
        "a",
        b::id_view(b::record([b::imm("x", b::int(1))])),
        b::let_(
            "b",
            b::id_view(b::record([b::imm("x", b::int(1))])),
            sugar::objeq(b::v("a"), b::v("b")),
        ),
    );
    assert_eq!(eval_show(&e), "false");
}

#[test]
fn sets_of_objects_collapse_by_objeq() {
    // {joe, joe_view} has one element (same raw object).
    let e = with_joe_view(b::set([b::v("joe"), b::v("joe_view")]));
    let mut m = Machine::new();
    let v = m.eval(&e).expect("eval");
    assert_eq!(v.as_set().expect("set").len(), 1);
}

#[test]
fn union_of_object_sets_is_left_biased() {
    // union({joe}, {joe_view}) keeps joe (the identity view): querying Name
    // through the survivor sees the raw record's fields.
    let e = with_joe_view(b::hom(
        b::union(b::set([b::v("joe")]), b::set([b::v("joe_view")])),
        b::lam(
            "o",
            b::query(b::lam("x", b::dot(b::v("x"), "Salary")), b::v("o")),
        ),
        b::lam("a", b::lam("acc", b::v("a"))),
        b::int(-1),
    ));
    // joe's identity view exposes Salary; had joe_view won, Salary would be
    // missing and evaluation would fail.
    assert_eq!(eval_show(&e), "2000");
}

#[test]
fn relobj_creates_new_identity() {
    // relobj over the same objects twice gives objeq-distinct objects.
    let e = with_joe_view(sugar::objeq(
        b::relobj([("a", b::v("joe"))]),
        b::relobj([("a", b::v("joe"))]),
    ));
    assert_eq!(eval_show(&e), "false");
}

#[test]
fn relobj_view_projects_componentwise() {
    let dept = b::id_view(b::record([b::imm("DName", b::str("RIMS"))]));
    let e = with_joe_view(b::let_(
        "r",
        b::relobj([("emp", b::v("joe_view")), ("dept", dept)]),
        b::query(
            b::lam(
                "p",
                Expr::tuple([
                    b::dot(b::dot(b::v("p"), "emp"), "Income"),
                    b::dot(b::dot(b::v("p"), "dept"), "DName"),
                ]),
            ),
            b::v("r"),
        ),
    ));
    assert_eq!(eval_show(&e), "[1 = 2000, 2 = \"RIMS\"]");
}

#[test]
fn relobj_sees_updates_lazily() {
    let e = with_joe_view(b::let_(
        "r",
        b::relobj([("emp", b::v("joe_view"))]),
        b::let_(
            "_",
            b::query(
                b::lam("x", b::update(b::v("x"), "Salary", b::int(8000))),
                b::v("joe"),
            ),
            b::query(
                b::lam("p", b::dot(b::dot(b::v("p"), "emp"), "Income")),
                b::v("r"),
            ),
        ),
    ));
    assert_eq!(eval_show(&e), "8000");
}

#[test]
fn select_as_from_where_composes_views() {
    // The paper's wealthy query over a two-person set.
    let poor_raw = b::record([
        b::imm("Name", b::str("Moe")),
        b::imm("BirthYear", b::int(1970)),
        b::mt("Salary", b::int(10)),
        b::mt("Bonus", b::int(0)),
    ]);
    let annual = b::lam(
        "x",
        b::add(
            b::mul(b::dot(b::v("x"), "Salary"), b::int(12)),
            b::dot(b::v("x"), "Bonus"),
        ),
    );
    let e = b::let_(
        "S",
        b::set([b::id_view(joe_raw()), b::id_view(poor_raw)]),
        b::let_(
            "rich",
            sugar::select_as_from_where(
                b::lam("x", b::record([b::imm("Name", b::dot(b::v("x"), "Name"))])),
                b::v("S"),
                b::lam("o", b::gt(b::query(annual, b::v("o")), b::int(20000))),
            ),
            sugar::map(
                b::lam(
                    "o",
                    b::query(b::lam("x", b::dot(b::v("x"), "Name")), b::v("o")),
                ),
                b::v("rich"),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Joe\"}");
}

#[test]
fn intersect_of_object_sets() {
    // joe appears in both sets (as different views) → intersection is a
    // singleton with the pair view.
    let e = with_joe_view(b::let_(
        "i",
        sugar::intersect2(b::set([b::v("joe")]), b::set([b::v("joe_view")])),
        b::hom(
            b::v("i"),
            b::lam(
                "o",
                b::query(b::lam("p", b::dot(b::proj(b::v("p"), 2), "Age")), b::v("o")),
            ),
            b::lam("a", b::lam("acc", b::v("a"))),
            b::int(-1),
        ),
    ));
    assert_eq!(eval_show(&e), "39");
}

#[test]
fn intersect_disjoint_is_empty() {
    let e = b::let_(
        "a",
        b::id_view(b::record([b::imm("x", b::int(1))])),
        b::let_(
            "b",
            b::id_view(b::record([b::imm("x", b::int(2))])),
            b::eq(
                sugar::intersect2(b::set([b::v("a")]), b::set([b::v("b")])),
                b::empty(),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn relation_query_builds_relation_objects() {
    let s1 = b::set([b::id_view(b::record([b::imm("a", b::int(1))]))]);
    let s2 = b::set([
        b::id_view(b::record([b::imm("bb", b::int(2))])),
        b::id_view(b::record([b::imm("bb", b::int(3))])),
    ]);
    let e = b::let_(
        "rel",
        sugar::relation_from_where(
            vec![
                (polyview_syntax::Label::new("l"), b::v("x1")),
                (polyview_syntax::Label::new("r"), b::v("x2")),
            ],
            vec![
                (polyview_syntax::Label::new("x1"), s1),
                (polyview_syntax::Label::new("x2"), s2),
            ],
            // Keep pairs where the right component's bb is odd.
            b::eq(
                b::app2(
                    b::v("imod"),
                    b::query(b::lam("y", b::dot(b::v("y"), "bb")), b::v("x2")),
                    b::int(2),
                ),
                b::int(1),
            ),
        ),
        sugar::map(
            b::lam(
                "o",
                b::query(b::lam("p", b::dot(b::dot(b::v("p"), "r"), "bb")), b::v("o")),
            ),
            b::v("rel"),
        ),
    );
    assert_eq!(eval_show(&e), "{3}");
}

#[test]
fn query_with_identity_returns_current_value_snapshot() {
    // Materialization is a snapshot: a record value, not the raw itself,
    // unless the view is the identity.
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::eq(
            b::query(b::lam("x", b::v("x")), b::v("joe")),
            b::query(b::lam("x", b::v("x")), b::v("joe")),
        ),
    );
    // Identity view materializes to the raw record itself — same identity.
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn machine_materialize_helper() {
    let mut m = Machine::new();
    let o = m
        .eval(&b::as_view(
            b::id_view(b::record([b::imm("x", b::int(5))])),
            b::lam("r", b::record([b::imm("y", b::dot(b::v("r"), "x"))])),
        ))
        .expect("eval");
    let mat = m.materialize(&o).expect("materialize");
    assert!(matches!(mat, Value::Record(_)));
    assert_eq!(m.show(&mat), "[y = 5]");
}

//! Class semantics (paper Section 4): lazy extents, insert/delete,
//! multi-source includes, first-class classes, and the mutually recursive
//! FemaleMember/Staff/Student example of Fig. 7 with the visited-set
//! algorithm (Prop. 5).

use polyview_eval::{Machine, Value};
use polyview_syntax::builder as b;
use polyview_syntax::sugar;
use polyview_syntax::Expr;

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

fn person(name: &str, age: i64, sex: &str) -> Expr {
    b::id_view(b::record([
        b::imm("Name", b::str(name)),
        b::imm("Age", b::int(age)),
        b::imm("Sex", b::str(sex)),
    ]))
}

/// Query: the set of Names visible in a class.
fn names_query(class: Expr) -> Expr {
    b::cquery(
        b::lam(
            "s",
            sugar::map(
                b::lam(
                    "o",
                    b::query(b::lam("y", b::dot(b::v("y"), "Name")), b::v("o")),
                ),
                b::v("s"),
            ),
        ),
        class,
    )
}

/// The FemaleMember class of §4.2 over Staff and Student source classes.
fn female_member_program(body: Expr) -> Expr {
    let include_from = |src: &str, category: &str| {
        b::include(
            vec![b::v(src)],
            b::lam(
                "s",
                b::record([
                    b::imm("Name", b::dot(b::v("s"), "Name")),
                    b::imm("Age", b::dot(b::v("s"), "Age")),
                    b::imm("Category", b::str(category)),
                ]),
            ),
            b::lam(
                "s",
                b::query(
                    b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                    b::v("s"),
                ),
            ),
        )
    };
    b::let_(
        "Staff",
        b::class(
            b::set([person("Alice", 40, "female"), person("Bob", 50, "male")]),
            vec![],
        ),
        b::let_(
            "Student",
            b::class(
                b::set([person("Carol", 22, "female"), person("Dave", 23, "male")]),
                vec![],
            ),
            b::let_(
                "FemaleMember",
                b::class(
                    b::empty(),
                    vec![
                        include_from("Staff", "staff"),
                        include_from("Student", "student"),
                    ],
                ),
                body,
            ),
        ),
    )
}

#[test]
fn own_extent_only_class() {
    let e = b::let_(
        "Staff",
        b::class(b::set([person("Alice", 40, "female")]), vec![]),
        names_query(b::v("Staff")),
    );
    assert_eq!(eval_show(&e), "{\"Alice\"}");
}

#[test]
fn female_member_selects_and_reviews() {
    let e = female_member_program(names_query(b::v("FemaleMember")));
    assert_eq!(eval_show(&e), "{\"Alice\", \"Carol\"}");
}

#[test]
fn include_view_adds_category_field() {
    let e = female_member_program(b::cquery(
        b::lam(
            "s",
            sugar::map(
                b::lam(
                    "o",
                    b::query(b::lam("y", b::dot(b::v("y"), "Category")), b::v("o")),
                ),
                b::v("s"),
            ),
        ),
        b::v("FemaleMember"),
    ));
    assert_eq!(eval_show(&e), "{\"staff\", \"student\"}");
}

#[test]
fn extents_are_lazy_inserts_propagate() {
    // Insert Eve into Staff *after* FemaleMember is defined; she appears in
    // FemaleMember because inclusion is evaluated at query time (Fig. 5's
    // λ() delay).
    let e = female_member_program(b::let_(
        "_",
        b::insert(b::v("Staff"), person("Eve", 31, "female")),
        names_query(b::v("FemaleMember")),
    ));
    assert_eq!(eval_show(&e), "{\"Alice\", \"Carol\", \"Eve\"}");
}

#[test]
fn deletes_propagate_lazily_too() {
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "All",
                b::class(
                    b::empty(),
                    vec![b::include(
                        vec![b::v("Staff")],
                        b::lam("s", b::v("s")),
                        b::lam("s", b::boolean(true)),
                    )],
                ),
                b::let_(
                    "_",
                    b::delete(b::v("Staff"), b::v("alice")),
                    b::cquery(b::lam("s", b::eq(b::v("s"), b::empty())), b::v("All")),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "true");
}

#[test]
fn insert_existing_object_keeps_left_biased_union() {
    // Inserting an object that is already present (by objeq) leaves the
    // class unchanged: union(OwnExt, {e}) is left-biased.
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "_",
                b::insert(
                    b::v("Staff"),
                    b::as_view(
                        b::v("alice"),
                        b::lam("x", b::record([b::imm("Name", b::str("shadow"))])),
                    ),
                ),
                names_query(b::v("Staff")),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Alice\"}");
}

#[test]
fn delete_removes_only_own_extent_members() {
    // Deleting an imported object from the including class does nothing:
    // delete removes from the *own* extent only (the paper's chosen
    // semantics, "clarity and safety").
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "All",
                b::class(
                    b::empty(),
                    vec![b::include(
                        vec![b::v("Staff")],
                        b::lam("s", b::v("s")),
                        b::lam("s", b::boolean(true)),
                    )],
                ),
                b::let_(
                    "_",
                    b::delete(b::v("All"), b::v("alice")),
                    names_query(b::v("All")),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Alice\"}");
}

#[test]
fn own_extent_wins_over_included_on_objeq_collision() {
    // S ∪ includes is left-biased: an object in the own extent keeps its
    // own view even if also included from a source.
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "Other",
                b::class(
                    b::set([b::v("alice")]),
                    vec![b::include(
                        vec![b::v("Staff")],
                        b::lam("s", b::record([b::imm("Name", b::str("viewed"))])),
                        b::lam("s", b::boolean(true)),
                    )],
                ),
                names_query(b::v("Other")),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Alice\"}");
}

#[test]
fn multi_source_include_is_intersection() {
    // StudentStaff (§4.2): include Staff, Student as λp.[…] where true —
    // only objects in *both* classes are included, with the pair view.
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice"), person("Bob", 50, "male")]), vec![]),
            b::let_(
                "Student",
                b::class(
                    b::set([b::v("alice"), person("Carol", 22, "female")]),
                    vec![],
                ),
                b::let_(
                    "StudentStaff",
                    b::class(
                        b::empty(),
                        vec![b::include(
                            vec![b::v("Staff"), b::v("Student")],
                            b::lam(
                                "p",
                                b::record([
                                    b::imm("Name", b::dot(b::proj(b::v("p"), 1), "Name")),
                                    b::imm("Age", b::dot(b::proj(b::v("p"), 2), "Age")),
                                ]),
                            ),
                            b::lam("p", b::boolean(true)),
                        )],
                    ),
                    names_query(b::v("StudentStaff")),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Alice\"}");
}

#[test]
fn classes_are_first_class_values() {
    // A class-creating function applied twice yields independent classes.
    let e = b::let_(
        "mk",
        b::lam("s", b::class(b::v("s"), vec![])),
        b::let_(
            "C1",
            b::app(b::v("mk"), b::set([person("Alice", 40, "female")])),
            b::let_(
                "C2",
                b::app(b::v("mk"), b::empty()),
                b::let_(
                    "_",
                    b::insert(b::v("C2"), person("Bob", 50, "male")),
                    Expr::tuple([names_query(b::v("C1")), names_query(b::v("C2"))]),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "[1 = {\"Alice\"}, 2 = {\"Bob\"}]");
}

// ----- recursive classes (Section 4.4, Fig. 7) -----

/// The full Fig. 7 program: Staff, Student and FemaleMember mutually share.
fn fig7_program(extra_members: Vec<(&'static str, i64, &'static str)>, body: Expr) -> Expr {
    let to_member_view = |cat: &str| {
        b::lam(
            "s",
            b::record([
                b::imm("Name", b::dot(b::v("s"), "Name")),
                b::imm("Age", b::dot(b::v("s"), "Age")),
                b::imm("Category", b::str(cat)),
            ]),
        )
    };
    let sex_pred = b::lam(
        "s",
        b::query(
            b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
            b::v("s"),
        ),
    );
    let to_person_view = b::lam(
        "f",
        b::record([
            b::imm("Name", b::dot(b::v("f"), "Name")),
            b::imm("Age", b::dot(b::v("f"), "Age")),
            b::imm("Sex", b::str("female")),
        ]),
    );
    let cat_pred = |cat: &str| {
        b::lam(
            "f",
            b::query(
                b::lam("x", b::eq(b::dot(b::v("x"), "Category"), b::str(cat))),
                b::v("f"),
            ),
        )
    };
    let members: Vec<Expr> = extra_members
        .into_iter()
        .map(|(n, a, cat)| {
            b::id_view(b::record([
                b::imm("Name", b::str(n)),
                b::imm("Age", b::int(a)),
                b::imm("Category", b::str(cat)),
            ]))
        })
        .collect();
    b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "bob",
            person("Bob", 50, "male"),
            b::let_(
                "carol",
                person("Carol", 22, "female"),
                b::let_classes(
                    vec![
                        (
                            "Staff",
                            b::class(
                                b::set([b::v("alice"), b::v("bob")]),
                                vec![b::include(
                                    vec![b::v("FemaleMember")],
                                    to_person_view.clone(),
                                    cat_pred("staff"),
                                )],
                            ),
                        ),
                        (
                            "Student",
                            b::class(
                                b::set([b::v("carol")]),
                                vec![b::include(
                                    vec![b::v("FemaleMember")],
                                    to_person_view,
                                    cat_pred("student"),
                                )],
                            ),
                        ),
                        (
                            "FemaleMember",
                            b::class(
                                b::set(members),
                                vec![
                                    b::include(
                                        vec![b::v("Staff")],
                                        to_member_view("staff"),
                                        sex_pred.clone(),
                                    ),
                                    b::include(
                                        vec![b::v("Student")],
                                        to_member_view("student"),
                                        sex_pred,
                                    ),
                                ],
                            ),
                        ),
                    ],
                    body,
                ),
            ),
        ),
    )
}

#[test]
fn fig7_female_member_collects_both_sources() {
    let e = fig7_program(vec![], names_query(b::v("FemaleMember")));
    assert_eq!(eval_show(&e), "{\"Alice\", \"Carol\"}");
}

#[test]
fn fig7_insert_into_female_member_propagates_to_staff() {
    // Insert a staff-category member directly into FemaleMember: she then
    // appears in Staff via the reverse include.
    let e = fig7_program(
        vec![("Fran", 28, "staff")],
        Expr::tuple([
            names_query(b::v("Staff")),
            names_query(b::v("Student")),
            names_query(b::v("FemaleMember")),
        ]),
    );
    assert_eq!(
        eval_show(&e),
        "[1 = {\"Alice\", \"Bob\", \"Fran\"}, 2 = {\"Carol\"}, \
         3 = {\"Alice\", \"Carol\", \"Fran\"}]"
    );
}

#[test]
fn fig7_terminates_on_cyclic_sharing() {
    // The visited-set algorithm (Prop. 5) cuts the Staff → FemaleMember →
    // Staff cycle; without it this query would not terminate.
    let e = fig7_program(vec![("Gina", 33, "student")], names_query(b::v("Student")));
    assert_eq!(eval_show(&e), "{\"Carol\", \"Gina\"}");
}

#[test]
fn two_class_cycle_terminates_and_shares() {
    // A = {a} ∪ B's objects; B = {b} ∪ A's objects (identity views).
    let idview = || b::lam("x", b::v("x"));
    let truep = || b::lam("x", b::boolean(true));
    let e = b::let_(
        "a",
        person("Anna", 1, "female"),
        b::let_(
            "bp",
            person("Ben", 2, "male"),
            b::let_classes(
                vec![
                    (
                        "A",
                        b::class(
                            b::set([b::v("a")]),
                            vec![b::include(vec![b::v("B")], idview(), truep())],
                        ),
                    ),
                    (
                        "B",
                        b::class(
                            b::set([b::v("bp")]),
                            vec![b::include(vec![b::v("A")], idview(), truep())],
                        ),
                    ),
                ],
                Expr::tuple([names_query(b::v("A")), names_query(b::v("B"))]),
            ),
        ),
    );
    assert_eq!(
        eval_show(&e),
        "[1 = {\"Anna\", \"Ben\"}, 2 = {\"Anna\", \"Ben\"}]"
    );
}

#[test]
fn three_class_ring_terminates() {
    let idview = || b::lam("x", b::v("x"));
    let truep = || b::lam("x", b::boolean(true));
    let mk =
        |src: &str, own: Expr| b::class(own, vec![b::include(vec![b::v(src)], idview(), truep())]);
    let e = b::let_(
        "p1",
        person("P1", 1, "x"),
        b::let_(
            "p2",
            person("P2", 2, "x"),
            b::let_(
                "p3",
                person("P3", 3, "x"),
                b::let_classes(
                    vec![
                        ("C1", mk("C2", b::set([b::v("p1")]))),
                        ("C2", mk("C3", b::set([b::v("p2")]))),
                        ("C3", mk("C1", b::set([b::v("p3")]))),
                    ],
                    names_query(b::v("C1")),
                ),
            ),
        ),
    );
    assert_eq!(eval_show(&e), "{\"P1\", \"P2\", \"P3\"}");
}

#[test]
fn self_include_terminates() {
    // class C includes C itself: the visited set makes the self-inclusion
    // contribute nothing beyond the own extent.
    let e = b::let_(
        "p",
        person("Solo", 9, "x"),
        b::let_classes(
            vec![(
                "C",
                b::class(
                    b::set([b::v("p")]),
                    vec![b::include(
                        vec![b::v("C")],
                        b::lam("x", b::v("x")),
                        b::lam("x", b::boolean(true)),
                    )],
                ),
            )],
            names_query(b::v("C")),
        ),
    );
    assert_eq!(eval_show(&e), "{\"Solo\"}");
}

#[test]
fn cquery_applies_arbitrary_set_function() {
    // Count members via hom.
    let e = female_member_program(b::cquery(
        b::lam(
            "s",
            b::hom(
                b::v("s"),
                b::lam("x", b::int(1)),
                b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
                b::int(0),
            ),
        ),
        b::v("FemaleMember"),
    ));
    assert_eq!(eval_show(&e), "2");
}

#[test]
fn class_values_expose_extent_via_machine_api() {
    let mut m = Machine::new();
    let c = m
        .eval(&b::class(b::set([person("Alice", 40, "female")]), vec![]))
        .expect("eval");
    let extent = m.extent_of(&c).expect("extent");
    assert_eq!(extent.len(), 1);
    let o = extent.values().next().expect("one").clone();
    assert!(matches!(o, Value::Obj(_)));
}

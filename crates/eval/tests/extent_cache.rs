//! The opt-in extent cache (an extension over the paper's
//! always-recompute semantics): correctness of invalidation on every
//! store mutation — insert, delete, and record-field update — so the
//! cached and uncached machines are observationally identical.

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::Expr;

fn person(name: &str, sex: &str) -> Expr {
    b::id_view(b::record([
        b::imm("Name", b::str(name)),
        b::imm("Sex", b::str(sex)),
    ]))
}

fn count_query(class: &str) -> Expr {
    b::cquery(
        b::lam(
            "s",
            b::hom(
                b::v("s"),
                b::lam("x", b::int(1)),
                b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
                b::int(0),
            ),
        ),
        b::v(class),
    )
}

fn setup(m: &mut Machine) {
    let staff = m
        .eval(&b::class(
            b::set([person("Alice", "female"), person("Bob", "male")]),
            vec![],
        ))
        .expect("staff");
    m.define_global("Staff", staff);
    let female = m
        .eval(&b::class(
            b::empty(),
            vec![b::include(
                vec![b::v("Staff")],
                b::lam("s", b::v("s")),
                b::lam(
                    "s",
                    b::query(
                        b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                        b::v("s"),
                    ),
                ),
            )],
        ))
        .expect("female");
    m.define_global("Female", female);
}

#[test]
fn cached_results_match_uncached() {
    let mut plain = Machine::new();
    setup(&mut plain);
    let mut cached = Machine::new();
    cached.enable_extent_cache(true);
    setup(&mut cached);

    for _ in 0..3 {
        let a = plain.eval(&count_query("Female")).expect("plain");
        let c = cached.eval(&count_query("Female")).expect("cached");
        assert!(a.value_eq(&c));
    }
    assert!(cached.extent_cache_len() > 0, "cache should be populated");
}

#[test]
fn insert_invalidates_cache() {
    let mut m = Machine::new();
    m.enable_extent_cache(true);
    setup(&mut m);
    let before = m.eval(&count_query("Female")).expect("count");
    assert_eq!(format!("{before:?}"), "Int(1)");
    m.eval(&b::insert(b::v("Staff"), person("Eve", "female")))
        .expect("insert");
    let after = m.eval(&count_query("Female")).expect("count");
    assert_eq!(
        format!("{after:?}"),
        "Int(2)",
        "stale cache served after insert"
    );
}

#[test]
fn delete_invalidates_cache() {
    let mut m = Machine::new();
    m.enable_extent_cache(true);
    let alice = m.eval(&person("Alice", "female")).expect("alice");
    m.define_global("alice", alice);
    let staff = m
        .eval(&b::class(b::set([b::v("alice")]), vec![]))
        .expect("staff");
    m.define_global("Staff", staff);
    let c1 = m.eval(&count_query("Staff")).expect("count");
    assert_eq!(format!("{c1:?}"), "Int(1)");
    m.eval(&b::delete(b::v("Staff"), b::v("alice")))
        .expect("delete");
    let c2 = m.eval(&count_query("Staff")).expect("count");
    assert_eq!(format!("{c2:?}"), "Int(0)");
}

#[test]
fn disabling_clears_cache() {
    let mut m = Machine::new();
    m.enable_extent_cache(true);
    setup(&mut m);
    m.eval(&count_query("Female")).expect("count");
    assert!(m.extent_cache_len() > 0);
    m.enable_extent_cache(false);
    assert_eq!(m.extent_cache_len(), 0);
}

#[test]
fn field_update_invalidates_cache() {
    // Regression: a record-field update used to be invisible to the cache
    // (only insert/delete bumped the epoch), so with a mutable Sex field,
    // flipping it after a cached query served a stale extent. Every store
    // write now invalidates, and the cached machine must agree with the
    // plain one.
    let flip_sex = |m: &mut Machine| {
        m.eval(&b::cquery(
            b::lam(
                "s",
                b::hom(
                    b::v("s"),
                    b::lam(
                        "o",
                        b::query(
                            b::lam("x", b::update(b::v("x"), "Sex", b::str("female"))),
                            b::v("o"),
                        ),
                    ),
                    b::lam("a", b::lam("acc", b::unit())),
                    b::unit(),
                ),
            ),
            b::v("Staff"),
        ))
        .expect("flip")
    };
    let mk_setup = |m: &mut Machine| {
        let staff = m
            .eval(&b::class(
                b::set([b::id_view(b::record([
                    b::imm("Name", b::str("Bob")),
                    b::mt("Sex", b::str("male")),
                ]))]),
                vec![],
            ))
            .expect("staff");
        m.define_global("Staff", staff);
        let female = m
            .eval(&b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Staff")],
                    b::lam("s", b::v("s")),
                    b::lam(
                        "s",
                        b::query(
                            b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                            b::v("s"),
                        ),
                    ),
                )],
            ))
            .expect("female");
        m.define_global("Female", female);
    };

    // Without the cache: the update is visible (paper semantics).
    let mut plain = Machine::new();
    mk_setup(&mut plain);
    plain.eval(&count_query("Female")).expect("warm");
    flip_sex(&mut plain);
    let v = plain.eval(&count_query("Female")).expect("count");
    assert_eq!(format!("{v:?}"), "Int(1)");

    // With the cache: the update bumps the epoch, so the next read
    // recomputes and observes the new field value.
    let mut cached = Machine::new();
    cached.enable_extent_cache(true);
    mk_setup(&mut cached);
    cached.eval(&count_query("Female")).expect("warm");
    flip_sex(&mut cached);
    let v = cached.eval(&count_query("Female")).expect("count");
    assert_eq!(
        format!("{v:?}"),
        "Int(1)",
        "update must invalidate cached extents"
    );
}

//! Direct tests of the machine's public API surface: view application,
//! n-ary fuse, object-set intersection, globals, rendering.

use polyview_eval::value::{ObjVal, ViewFn};
use polyview_eval::{Machine, RuntimeError, SetVal, Value};
use polyview_syntax::builder as b;
use std::rc::Rc;

fn obj(m: &mut Machine, fields: &[(&str, i64)]) -> Rc<ObjVal> {
    let rec = b::record(
        fields
            .iter()
            .map(|(l, v)| b::imm(l, b::int(*v)))
            .collect::<Vec<_>>(),
    );
    match m.eval(&b::id_view(rec)).expect("object") {
        Value::Obj(o) => o,
        other => panic!("expected obj, got {other:?}"),
    }
}

#[test]
fn apply_view_identity_returns_raw() {
    let mut m = Machine::new();
    let o = obj(&mut m, &[("a", 1)]);
    let mat = m
        .apply_view(&ViewFn::Identity, o.raw.clone())
        .expect("apply");
    assert!(mat.value_eq(&o.raw), "identity view must preserve identity");
}

#[test]
fn apply_view_tuple_builds_numeric_record() {
    let mut m = Machine::new();
    let o = obj(&mut m, &[("a", 7)]);
    let tuple = ViewFn::Tuple(vec![Rc::new(ViewFn::Identity), Rc::new(ViewFn::Identity)]);
    let mat = m.apply_view(&tuple, o.raw.clone()).expect("apply");
    let shown = m.show(&mat);
    assert_eq!(shown, "[1 = [a = 7], 2 = [a = 7]]");
}

#[test]
fn apply_view_relfields_missing_field_errors() {
    let mut m = Machine::new();
    let o = obj(&mut m, &[("a", 7)]);
    let rel = ViewFn::RelFields(vec![(
        polyview_syntax::Label::new("missing"),
        Rc::new(ViewFn::Identity),
    )]);
    assert!(matches!(
        m.apply_view(&rel, o.raw.clone()),
        Err(RuntimeError::NoSuchField(_))
    ));
}

#[test]
fn fuse_objs_singleton_and_mismatch() {
    let mut m = Machine::new();
    let o1 = obj(&mut m, &[("a", 1)]);
    let o2 = obj(&mut m, &[("a", 1)]);
    // Same object with itself: singleton.
    let s = m.fuse_objs(&[o1.clone(), o1.clone()]);
    assert_eq!(s.len(), 1);
    // Distinct raws: empty.
    let s = m.fuse_objs(&[o1.clone(), o2]);
    assert!(s.is_empty());
    // Unary: pass-through singleton.
    let s = m.fuse_objs(std::slice::from_ref(&o1));
    assert_eq!(s.len(), 1);
    assert!(s.values().next().expect("one").value_eq(&Value::Obj(o1)));
}

#[test]
fn fuse_objs_three_way_flat_view() {
    let mut m = Machine::new();
    let o = obj(&mut m, &[("a", 5)]);
    let s = m.fuse_objs(&[o.clone(), o.clone(), o.clone()]);
    assert_eq!(s.len(), 1);
    let fused = s.values().next().expect("one").clone();
    let mat = m.materialize(&fused).expect("materialize");
    assert_eq!(m.show(&mat), "[1 = [a = 5], 2 = [a = 5], 3 = [a = 5]]");
}

#[test]
fn intersect_obj_sets_matches_set_semantics() {
    let mut m = Machine::new();
    let shared = obj(&mut m, &[("a", 1)]);
    let only_left = obj(&mut m, &[("a", 2)]);
    let only_right = obj(&mut m, &[("a", 3)]);
    let left = SetVal::from_elems([Value::Obj(shared.clone()), Value::Obj(only_left)]);
    let right = SetVal::from_elems([Value::Obj(shared.clone()), Value::Obj(only_right)]);
    let both = m
        .intersect_obj_sets(&[left.clone(), right])
        .expect("intersect");
    assert_eq!(both.len(), 1);
    // Unary intersect is the set itself.
    let same = m
        .intersect_obj_sets(std::slice::from_ref(&left))
        .expect("intersect");
    assert_eq!(same.len(), left.len());
}

#[test]
fn globals_roundtrip() {
    let mut m = Machine::new();
    m.define_global("x", Value::Int(42));
    assert!(m
        .global(&polyview_syntax::Label::new("x"))
        .expect("bound")
        .value_eq(&Value::Int(42)));
    let v = m.eval(&b::add(b::v("x"), b::int(1))).expect("runs");
    assert!(v.value_eq(&Value::Int(43)));
}

#[test]
fn builtin_partial_application() {
    let mut m = Machine::new();
    let v = m
        .eval(&b::let_(
            "inc",
            b::app(b::v("add"), b::int(1)),
            b::app(b::v("inc"), b::int(41)),
        ))
        .expect("runs");
    assert!(v.value_eq(&Value::Int(42)));
    // A partially applied builtin is a function value.
    let f = m.eval(&b::app(b::v("add"), b::int(1))).expect("runs");
    assert_eq!(f.shape(), "function");
}

#[test]
fn show_caps_depth_instead_of_recursing_forever() {
    // Build a deeply nested record purely via the API and render it.
    let mut m = Machine::new();
    let mut e = b::record([b::imm("leaf", b::int(1))]);
    for _ in 0..100 {
        e = b::record([b::imm("n", e)]);
    }
    let v = m.eval(&e).expect("runs");
    let shown = m.show(&v);
    assert!(
        shown.contains('…'),
        "deep rendering must be capped: {shown}"
    );
}

#[test]
fn field_of_reads_through_store() {
    let mut m = Machine::new();
    let v = m
        .eval(&b::record([b::imm("Name", b::str("Ada"))]))
        .expect("runs");
    let name = m.field_of(&v, "Name").expect("field");
    assert_eq!(m.show(&name), "\"Ada\"");
    assert!(matches!(
        m.field_of(&v, "Nope"),
        Err(RuntimeError::NoSuchField(_))
    ));
    assert!(matches!(
        m.field_of(&Value::Int(1), "x"),
        Err(RuntimeError::NotARecord(_))
    ));
}

#[test]
fn set_contains_uses_objeq_for_objects() {
    let mut m = Machine::new();
    let o = obj(&mut m, &[("a", 1)]);
    let s = SetVal::from_elems([Value::Obj(o.clone())]);
    // A different view of the same raw is "contained" (objeq).
    let id2 = m.fresh_id();
    let reviewed = Value::Obj(Rc::new(ObjVal {
        id: id2,
        raw: o.raw.clone(),
        view: ViewFn::Identity,
    }));
    assert!(m.set_contains(&s, &reviewed));
}

#[test]
fn class_count_and_data_access() {
    let mut m = Machine::new();
    assert_eq!(m.class_count(), 0);
    let c = m.eval(&b::class(b::empty(), vec![])).expect("class");
    assert_eq!(m.class_count(), 1);
    let cid = c.as_class().expect("class id");
    assert!(m.class_data(cid).includes.is_empty());
}

#[test]
fn eval_global_runs_cached_ast_against_live_globals() {
    // The prepared-statement entry point: one AST, evaluated repeatedly,
    // observing the current global bindings and store each run.
    let mut m = Machine::new();
    m.define_global("x", Value::Int(1));
    let ast = b::add(b::v("x"), b::int(1));
    assert!(matches!(m.eval_global(&ast), Ok(Value::Int(2))));
    m.define_global("x", Value::Int(41));
    assert!(matches!(m.eval_global(&ast), Ok(Value::Int(42))));
}

#[test]
fn closures_share_lam_bodies_with_the_source_ast() {
    // `Expr::Lam` stores its body behind `Rc`; creating a closure must
    // share that allocation, not deep-copy the body.
    use polyview_syntax::Expr;
    let lam = b::lam("y", b::add(b::v("y"), b::int(1)));
    let body = match &lam {
        Expr::Lam(_, b) => Rc::clone(b),
        other => panic!("expected lam, got {other}"),
    };
    let mut m = Machine::new();
    let v = m.eval_global(&lam).expect("closure");
    match v {
        Value::Closure(c) => assert!(Rc::ptr_eq(&c.body, &body)),
        other => panic!("expected closure, got {other:?}"),
    }
}

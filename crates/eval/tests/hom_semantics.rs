//! `hom` — the paper's general set eliminator: the defining equation, the
//! empty-set case, and effect/duplicate semantics. The property-based half
//! (determinism over canonical order, the Section 2 definability claims)
//! lives in `crates/proptests/tests/eval_hom_props.rs`.

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::Expr;

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

#[test]
fn defining_equation_on_known_order() {
    // For ints the canonical order is numeric, so
    // hom({1,2,3}, f, op, z) = op(f 1, op(f 2, op(f 3, z))).
    // With op = subtraction this distinguishes fold directions:
    // 1 - (2 - (3 - 0)) = 2.
    let e = b::hom(
        b::set([b::int(1), b::int(2), b::int(3)]),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::sub(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "2");
}

#[test]
fn empty_set_returns_z() {
    let e = b::hom(
        b::empty(),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::v("a"))),
        b::str("zero"),
    );
    assert_eq!(eval_show(&e), "\"zero\"");
}

#[test]
fn singleton_applies_f_once() {
    let e = b::hom(
        b::set([b::int(21)]),
        b::lam("x", b::mul(b::v("x"), b::int(2))),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "42");
}

#[test]
fn duplicates_are_collapsed_before_iteration() {
    // {1,1,1} is the singleton {1}: f runs once.
    let e = b::hom(
        b::set([b::int(1), b::int(1), b::int(1)]),
        b::lam("x", b::int(1)),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "1");
}

#[test]
fn effects_in_f_run_per_element() {
    // f updates a shared cell: it must fire exactly n times.
    let e = b::let_(
        "cell",
        b::record([b::mt("n", b::int(0))]),
        b::let_(
            "_",
            b::hom(
                b::set([b::int(10), b::int(20), b::int(30)]),
                b::lam(
                    "x",
                    b::update(
                        b::v("cell"),
                        "n",
                        b::add(b::dot(b::v("cell"), "n"), b::int(1)),
                    ),
                ),
                b::lam("a", b::lam("acc", b::unit())),
                b::unit(),
            ),
            b::dot(b::v("cell"), "n"),
        ),
    );
    assert_eq!(eval_show(&e), "3");
}

//! `hom` — the paper's general set eliminator: the defining equation, the
//! empty-set case, determinism over canonical order, and the
//! definability claims of Section 2 (member/map/filter/prod from
//! union/hom).

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::{sugar, Expr};
use proptest::prelude::*;

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

#[test]
fn defining_equation_on_known_order() {
    // For ints the canonical order is numeric, so
    // hom({1,2,3}, f, op, z) = op(f 1, op(f 2, op(f 3, z))).
    // With op = subtraction this distinguishes fold directions:
    // 1 - (2 - (3 - 0)) = 2.
    let e = b::hom(
        b::set([b::int(1), b::int(2), b::int(3)]),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::sub(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "2");
}

#[test]
fn empty_set_returns_z() {
    let e = b::hom(
        b::empty(),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("acc", b::v("a"))),
        b::str("zero"),
    );
    assert_eq!(eval_show(&e), "\"zero\"");
}

#[test]
fn singleton_applies_f_once() {
    let e = b::hom(
        b::set([b::int(21)]),
        b::lam("x", b::mul(b::v("x"), b::int(2))),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "42");
}

#[test]
fn duplicates_are_collapsed_before_iteration() {
    // {1,1,1} is the singleton {1}: f runs once.
    let e = b::hom(
        b::set([b::int(1), b::int(1), b::int(1)]),
        b::lam("x", b::int(1)),
        b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
        b::int(0),
    );
    assert_eq!(eval_show(&e), "1");
}

#[test]
fn effects_in_f_run_per_element() {
    // f updates a shared cell: it must fire exactly n times.
    let e = b::let_(
        "cell",
        b::record([b::mt("n", b::int(0))]),
        b::let_(
            "_",
            b::hom(
                b::set([b::int(10), b::int(20), b::int(30)]),
                b::lam(
                    "x",
                    b::update(b::v("cell"), "n", b::add(b::dot(b::v("cell"), "n"), b::int(1))),
                ),
                b::lam("a", b::lam("acc", b::unit())),
                b::unit(),
            ),
            b::dot(b::v("cell"), "n"),
        ),
    );
    assert_eq!(eval_show(&e), "3");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// hom with a non-commutative operator is deterministic across element
    /// insertion orders (sets are canonical).
    #[test]
    fn deterministic_across_insertion_orders(mut xs in prop::collection::vec(-50i64..50, 0..8)) {
        let fold = |elems: &[i64]| {
            b::hom(
                Expr::set(elems.iter().map(|n| b::int(*n))),
                b::lam("x", b::v("x")),
                b::lam("a", b::lam("acc", b::sub(b::v("a"), b::v("acc")))),
                b::int(0),
            )
        };
        let r1 = eval_show(&fold(&xs));
        xs.reverse();
        let r2 = eval_show(&fold(&xs));
        prop_assert_eq!(r1, r2);
    }

    /// sum via hom equals the native sum of the deduplicated elements.
    #[test]
    fn sum_matches_reference(xs in prop::collection::vec(-50i64..50, 0..10)) {
        let expected: i64 = xs
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .sum();
        let e = b::hom(
            Expr::set(xs.iter().map(|n| b::int(*n))),
            b::lam("x", b::v("x")),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        );
        prop_assert_eq!(eval_show(&e), expected.to_string());
    }

    /// The paper's definability claims: member/map/filter from union+hom
    /// agree with reference implementations.
    #[test]
    fn derived_ops_match_reference(
        xs in prop::collection::vec(-20i64..20, 0..8),
        probe in -20i64..20,
    ) {
        let dedup: std::collections::BTreeSet<i64> = xs.iter().copied().collect();
        let set_e = Expr::set(xs.iter().map(|n| b::int(*n)));

        let member = sugar::member(b::int(probe), set_e.clone());
        prop_assert_eq!(eval_show(&member), dedup.contains(&probe).to_string());

        let mapped = sugar::map(b::lam("x", b::mul(b::v("x"), b::int(3))), set_e.clone());
        let expected: std::collections::BTreeSet<i64> =
            dedup.iter().map(|n| n * 3).collect();
        let shown = eval_show(&mapped);
        let expected_shown = format!(
            "{{{}}}",
            expected.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(shown, expected_shown);

        let filtered = sugar::filter(b::lam("x", b::gt(b::v("x"), b::int(0))), set_e);
        let expected: std::collections::BTreeSet<i64> =
            dedup.iter().copied().filter(|n| *n > 0).collect();
        let expected_shown = format!(
            "{{{}}}",
            expected.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(eval_show(&filtered), expected_shown);
    }

    /// prod cardinality = product of deduplicated cardinalities.
    #[test]
    fn prod_cardinality(
        xs in prop::collection::vec(0i64..6, 0..5),
        ys in prop::collection::vec(0i64..6, 0..5),
    ) {
        let nx = xs.iter().collect::<std::collections::BTreeSet<_>>().len();
        let ny = ys.iter().collect::<std::collections::BTreeSet<_>>().len();
        let e = sugar::prod2(
            Expr::set(xs.iter().map(|n| b::int(*n))),
            Expr::set(ys.iter().map(|n| b::int(*n))),
        );
        let mut m = Machine::new();
        let v = m.eval(&e).expect("eval");
        prop_assert_eq!(v.as_set().expect("set").len(), nx * ny);
    }
}

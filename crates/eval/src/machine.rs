//! The evaluator.
//!
//! A [`Machine`] owns the slot store, the class table, the global value
//! environment, and the identity counter. Expression evaluation is a plain
//! tree walk; classes and objects are interpreted natively with exactly the
//! meaning the paper's translations assign to them (Figs. 3 and 5 and the
//! `f^i` functions of Section 4.4).

use crate::builtins;
use crate::env::Env;
use crate::error::RuntimeError;
use crate::profile::{Profile, Profiler};
use crate::store::Store;
use crate::value::{
    Builtin, ClassId, Closure, Key, ObjVal, RecordVal, SetVal, SlotId, Value, ViewFn,
};
use polyview_obs::{Clock, WallClock};
use polyview_syntax::{ClassDef, Expr, Idx, Label, Layout, Lit, Name};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// One `include` clause of an evaluated class: resolved source classes, the
/// viewing function value, and the predicate value.
#[derive(Clone, Debug)]
pub struct IncludeSpec {
    pub sources: Vec<ClassId>,
    pub view: Value,
    pub pred: Value,
}

/// An evaluated class: `[OwnExt := S, Ext = λ().…]` in the translation —
/// natively, a slot holding the own extent plus the delayed include
/// computation.
#[derive(Clone, Debug)]
pub struct ClassData {
    pub own_slot: crate::value::SlotId,
    pub includes: Vec<IncludeSpec>,
}

/// Work counters for the evaluator: fuel units burned (one per expression
/// node and application, counted even when fuel is unbounded) and the number
/// of identity-carrying records / object sets constructed. Per-statement
/// deltas make evaluation cost observable (see DESIGN.md §9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Evaluation steps taken (the same unit that fuel budgets are in).
    pub fuel_consumed: u64,
    /// Records constructed (record expressions, relobj raws, view tuples).
    pub records_allocated: u64,
    /// Sets constructed by set-producing primitives.
    pub sets_allocated: u64,
    /// Field operations executed through a compile-time integer offset:
    /// lowered `dot@i`/`extract@i`/`update@i` with a resolved index, and
    /// lowered record constructions. The compile tier's success metric.
    pub field_offsets_resolved: u64,
    /// Field operations that fell back to dynamic label lookup: un-lowered
    /// `dot`/`extract`/`update`/record constructions (compile tier off, or
    /// residue the lowering could not resolve) and lowered ops whose index
    /// parameter carried the unresolved sentinel. Machine-internal record
    /// building (view materialization, relobj raws) is *not* counted — it
    /// has no source field operation to lower (DESIGN.md §13).
    pub dyn_field_fallbacks: u64,
}

/// The evaluation machine.
pub struct Machine {
    pub store: Store,
    classes: Vec<ClassData>,
    globals: HashMap<Name, Value>,
    next_id: u64,
    /// Remaining evaluation fuel; `None` means unbounded. Each expression
    /// node costs one unit.
    pub fuel: Option<u64>,
    /// Opt-in memoization of top-level class extents (see
    /// [`Machine::enable_extent_cache`]).
    extent_cache_enabled: bool,
    extent_cache: HashMap<ClassId, (u64, SetVal)>,
    /// Bumped by every store mutation — `insert`, `delete`, and record
    /// field `update` (extent predicates can read mutable fields); cache
    /// entries from older epochs are stale.
    class_epoch: u64,
    /// Work counters; monotone until [`Machine::reset_stats`].
    stats: MachineStats,
    /// The attribution profiler, present only between
    /// [`Machine::profile_start`] and [`Machine::profile_stop`]. While
    /// `None` (the default), evaluation pays exactly one `is_none` check
    /// per node and performs **zero** clock reads.
    profiler: Option<Profiler>,
    /// Clock handed to profilers started on this machine. Sticky: set it
    /// once (tests inject a `ManualClock`), every later `profile_start`
    /// uses it.
    profile_clock: Rc<dyn Clock>,
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// A machine with all builtins installed and unbounded fuel.
    pub fn new() -> Self {
        let mut m = Machine {
            store: Store::new(),
            classes: Vec::new(),
            globals: HashMap::new(),
            next_id: 0,
            fuel: None,
            extent_cache_enabled: false,
            extent_cache: HashMap::new(),
            class_epoch: 0,
            stats: MachineStats::default(),
            profiler: None,
            profile_clock: Rc::new(WallClock::new()),
        };
        for (name, arity, f) in builtins::natives() {
            let id = m.fresh_id();
            m.globals.insert(
                Label::new(name),
                Value::Builtin(Rc::new(Builtin {
                    id,
                    name,
                    arity,
                    args: Vec::new(),
                    f,
                })),
            );
        }
        m
    }

    /// Append a hand-built class (snapshot tests construct class tables
    /// without going through `class … end` evaluation).
    #[cfg(test)]
    pub(crate) fn push_class_for_test(&mut self, cd: ClassData) -> ClassId {
        self.classes.push(cd);
        self.classes.len() - 1
    }

    /// A machine with an evaluation budget (for property tests over
    /// programs containing `fix`).
    pub fn with_fuel(fuel: u64) -> Self {
        let mut m = Machine::new();
        m.fuel = Some(fuel);
        m
    }

    pub fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The next identity this machine would mint (snapshots persist it so
    /// a restored machine never reuses a live id).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The store-mutation epoch (snapshots persist it so extent-cache
    /// invalidation stays monotone across a restore).
    pub fn class_epoch(&self) -> u64 {
        self.class_epoch
    }

    /// Reassemble a machine from snapshot-decoded parts (`crate::snapshot`).
    /// The decoder has already validated internal consistency (slot and
    /// class ids in range, `next_id` above every live id). Caches, stats,
    /// and the profiler start cold — all are correctness-neutral
    /// derivatives of the persisted state.
    pub(crate) fn restore(
        store: Store,
        classes: Vec<ClassData>,
        globals: HashMap<Name, Value>,
        next_id: u64,
        class_epoch: u64,
        fuel: Option<u64>,
    ) -> Machine {
        Machine {
            store,
            classes,
            globals,
            next_id,
            fuel,
            extent_cache_enabled: false,
            extent_cache: HashMap::new(),
            class_epoch,
            stats: MachineStats::default(),
            profiler: None,
            profile_clock: Rc::new(WallClock::new()),
        }
    }

    /// Install a global value binding (used by the engine for top-level
    /// `val` definitions).
    pub fn define_global(&mut self, name: impl Into<Name>, v: Value) {
        self.globals.insert(name.into(), v);
    }

    pub fn global(&self, name: &Name) -> Option<&Value> {
        self.globals.get(name)
    }

    /// Iterate the global value environment (the engine uses this to
    /// resolve class ids back to their bound names in profile reports).
    pub fn globals_iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        self.globals.iter()
    }

    pub fn class_data(&self, id: ClassId) -> &ClassData {
        &self.classes[id]
    }

    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// Zero the work counters (store, classes, and globals are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = MachineStats::default();
    }

    /// Install the clock future [`Machine::profile_start`] calls will use.
    /// Does not affect a profiler already running.
    pub fn set_profile_clock(&mut self, clock: Rc<dyn Clock>) {
        self.profile_clock = clock;
    }

    /// Begin attribution profiling: every subsequent `eval_in` node opens a
    /// timed frame until [`Machine::profile_stop`]. Starting while already
    /// profiling discards the in-flight profile.
    pub fn profile_start(&mut self) {
        self.profiler = Some(Profiler::new(Rc::clone(&self.profile_clock)));
    }

    /// Stop profiling and return the collected [`Profile`] (`None` if
    /// profiling was never started).
    pub fn profile_stop(&mut self) -> Option<Profile> {
        self.profiler.take().map(Profiler::finish)
    }

    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    fn burn(&mut self) -> Result<(), RuntimeError> {
        self.stats.fuel_consumed += 1;
        if let Some(f) = &mut self.fuel {
            if *f == 0 {
                return Err(RuntimeError::FuelExhausted);
            }
            *f -= 1;
        }
        Ok(())
    }

    /// Evaluate a closed expression in the global environment.
    pub fn eval(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        self.eval_global(e)
    }

    /// Evaluate a cached AST under the persistent global environment — the
    /// entry point for prepared (compile-once/run-many) execution. The AST
    /// is only borrowed: nothing is cloned up front, and closure creation
    /// during the run shares `Lam`/`Fix` bodies with the cached tree via
    /// `Rc` instead of deep-copying them.
    pub fn eval_global(&mut self, e: &Expr) -> Result<Value, RuntimeError> {
        self.eval_in(e, &Env::empty())
    }

    /// Evaluate under a local environment.
    ///
    /// The profiler check is the *only* cost the profiler adds to normal
    /// runs: one `Option::is_none` on a field already in cache (fuel was
    /// just touched). With a profiler installed, dispatch detours through
    /// [`Machine::eval_profiled`] which brackets the node with two clock
    /// reads.
    pub fn eval_in(&mut self, e: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        self.burn()?;
        if self.profiler.is_none() {
            self.eval_dispatch(e, env)
        } else {
            self.eval_profiled(e, env)
        }
    }

    /// The undecorated dispatch. The hot recursion path (variables,
    /// application, let, if) stays in this function with a deliberately
    /// small stack frame; everything else is dispatched to a cold helper
    /// with its own frame.
    fn eval_dispatch(&mut self, e: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        match e {
            Expr::Lit(l) => Ok(match l {
                Lit::Unit => Value::Unit,
                Lit::Int(n) => Value::Int(*n),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Str(s) => Value::str(s),
            }),
            Expr::Var(x) => env
                .lookup(x)
                .or_else(|| self.globals.get(x))
                .cloned()
                .ok_or_else(|| RuntimeError::Unbound(x.clone())),
            Expr::App(f, a) => {
                let vf = self.eval_in(f, env)?;
                let va = self.eval_in(a, env)?;
                self.apply(vf, va)
            }
            Expr::Let(x, rhs, body) => {
                let v = self.eval_in(rhs, env)?;
                let env2 = env.bind(x.clone(), v);
                self.eval_in(body, &env2)
            }
            Expr::If(c, t, e2) => {
                if self.eval_in(c, env)?.as_bool()? {
                    self.eval_in(t, env)
                } else {
                    self.eval_in(e2, env)
                }
            }
            other => self.eval_cold(other, env),
        }
    }

    /// Profiled dispatch: open a frame keyed by this node (unless past the
    /// depth cap), attribute env-lookup depth for variables, evaluate, and
    /// close the frame — on errors too, so the tree stays balanced.
    /// Out-of-line so the unprofiled path carries none of this code.
    #[inline(never)]
    fn eval_profiled(&mut self, e: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        let entered = match &mut self.profiler {
            Some(p) => p.enter(e),
            None => unreachable!("checked by eval_in"),
        };
        if entered {
            if let Expr::Var(x) = e {
                let hops = env.lookup_cost(x);
                if let Some(p) = &mut self.profiler {
                    p.note_env_lookup(hops);
                }
            }
        }
        let r = self.eval_dispatch(e, env);
        if entered {
            // A nested profile_stop (impossible today: stop is a machine
            // API, not an expression) would take the profiler; guard
            // rather than unwrap.
            if let Some(p) = &mut self.profiler {
                p.exit();
            }
        }
        r
    }

    /// A field operation fell back to dynamic label lookup: bump the stat
    /// and, when profiling, attribute the fallback to the current site.
    fn note_dyn_fallback(&mut self, label: &str) {
        self.stats.dyn_field_fallbacks += 1;
        if let Some(p) = &mut self.profiler {
            p.note_fallback(label);
        }
    }

    #[inline(never)]
    fn eval_cold(&mut self, e: &Expr, env: &Env) -> Result<Value, RuntimeError> {
        match e {
            Expr::Lit(_) | Expr::Var(_) | Expr::App(..) | Expr::Let(..) | Expr::If(..) => {
                unreachable!("handled by eval_dispatch")
            }
            Expr::Eq(a, b) => {
                let va = self.eval_in(a, env)?;
                let vb = self.eval_in(b, env)?;
                Ok(Value::Bool(va.value_eq(&vb)))
            }
            Expr::Lam(x, body) => {
                let id = self.fresh_id();
                Ok(Value::Closure(Rc::new(Closure {
                    id,
                    fix_name: None,
                    param: x.clone(),
                    body: body.clone(),
                    env: env.clone(),
                })))
            }
            Expr::Record(fields) => {
                // Un-lowered construction: the layout must be computed
                // from the labels at runtime (counted as fallback work).
                let mut triples = Vec::with_capacity(fields.len());
                for f in fields {
                    let v = self.eval_in(&f.expr, env)?;
                    let slot = match v {
                        // The paper's (rec) rule: an extracted L-value
                        // becomes the field's slot — sharing, not copying.
                        Value::LValue(s) => s,
                        other => self.store.alloc(other),
                    };
                    triples.push((f.label.clone(), f.mutable, slot));
                }
                self.note_dyn_fallback("[record]");
                Ok(self.build_record(triples))
            }
            Expr::Dot(e, l) => {
                let v = self.eval_in(e, env)?;
                let r = v.as_record()?;
                let (_, slot) = self.field_slot(r, l, None)?;
                Ok(self.store.get(slot).clone())
            }
            Expr::Extract(e, l) => {
                let v = self.eval_in(e, env)?;
                let r = v.as_record()?;
                let (i, slot) = self.field_slot(r, l, None)?;
                if !r.layout.is_mutable(i) {
                    return Err(RuntimeError::ImmutableField(l.clone()));
                }
                Ok(Value::LValue(slot))
            }
            Expr::Update(e, l, rhs) => {
                let v = self.eval_in(e, env)?;
                let slot = {
                    let r = v.as_record()?;
                    let (i, slot) = self.field_slot(r, l, None)?;
                    if !r.layout.is_mutable(i) {
                        return Err(RuntimeError::ImmutableField(l.clone()));
                    }
                    slot
                };
                let nv = self.eval_in(rhs, env)?;
                self.store.set(slot, nv);
                // A field write can change what any extent predicate
                // observes (`include … where` reads object state), so it
                // invalidates cached extents exactly like insert/delete.
                self.class_epoch += 1;
                Ok(Value::Unit)
            }
            // ---------- lowered field operations (the compile tier) ----------
            Expr::DotAt(e, l, idx) => {
                let v = self.eval_in(e, env)?;
                let off = self.resolve_idx(idx, env)?;
                let r = v.as_record()?;
                let (_, slot) = self.field_slot(r, l, off)?;
                Ok(self.store.get(slot).clone())
            }
            Expr::ExtractAt(e, l, idx) => {
                let v = self.eval_in(e, env)?;
                let off = self.resolve_idx(idx, env)?;
                let r = v.as_record()?;
                let (i, slot) = self.field_slot(r, l, off)?;
                if !r.layout.is_mutable(i) {
                    return Err(RuntimeError::ImmutableField(l.clone()));
                }
                Ok(Value::LValue(slot))
            }
            Expr::UpdateAt(e, l, idx, rhs) => {
                let v = self.eval_in(e, env)?;
                let off = self.resolve_idx(idx, env)?;
                let slot = {
                    let r = v.as_record()?;
                    let (i, slot) = self.field_slot(r, l, off)?;
                    if !r.layout.is_mutable(i) {
                        return Err(RuntimeError::ImmutableField(l.clone()));
                    }
                    slot
                };
                let nv = self.eval_in(rhs, env)?;
                self.store.set(slot, nv);
                self.class_epoch += 1;
                Ok(Value::Unit)
            }
            Expr::RecordAt(layout, entries) => {
                // Lowered construction: entries are in source (evaluation)
                // order, each carrying its target slot; the layout is shared
                // with every record built here, not recomputed.
                let mut slots: Vec<SlotId> = vec![usize::MAX; layout.len()];
                for (off, fe) in entries {
                    let v = self.eval_in(fe, env)?;
                    let slot = match v {
                        Value::LValue(s) => s,
                        other => self.store.alloc(other),
                    };
                    slots[*off] = slot;
                }
                debug_assert!(
                    slots.iter().all(|s| *s != usize::MAX),
                    "lowered record construction left a slot unfilled"
                );
                let id = self.fresh_id();
                self.stats.records_allocated += 1;
                self.stats.field_offsets_resolved += 1;
                Ok(Value::Record(Rc::new(RecordVal {
                    id,
                    layout: layout.clone(),
                    slots,
                })))
            }
            Expr::SetLit(es) => {
                let mut elems = Vec::with_capacity(es.len());
                for e in es {
                    elems.push(self.eval_in(e, env)?);
                }
                self.stats.sets_allocated += 1;
                Ok(Value::Set(SetVal::from_elems(elems)))
            }
            Expr::Union(a, b) => {
                let va = self.eval_in(a, env)?;
                let vb = self.eval_in(b, env)?;
                let sa = va.as_set()?;
                let sb = vb.as_set()?;
                self.stats.sets_allocated += 1;
                Ok(Value::Set(sa.union_left(sb)))
            }
            Expr::Hom(s, f, op, z) => {
                let vs = self.eval_in(s, env)?;
                let vf = self.eval_in(f, env)?;
                let vop = self.eval_in(op, env)?;
                let vz = self.eval_in(z, env)?;
                self.hom(vs.as_set()?.clone(), vf, vop, vz)
            }
            Expr::Fix(x, body) => match &**body {
                Expr::Lam(p, lam_body) => {
                    let id = self.fresh_id();
                    Ok(Value::Closure(Rc::new(Closure {
                        id,
                        fix_name: Some(x.clone()),
                        param: p.clone(),
                        body: lam_body.clone(),
                        env: env.clone(),
                    })))
                }
                _ => Err(RuntimeError::FixNonFunction),
            },
            // ---------- views (the meaning of Fig. 3) ----------
            Expr::IdView(e) => {
                let raw = self.eval_in(e, env)?;
                raw.as_record()?; // raw objects are records
                let id = self.fresh_id();
                Ok(Value::Obj(Rc::new(ObjVal {
                    id,
                    raw,
                    view: ViewFn::Identity,
                })))
            }
            Expr::AsView(o, f) => {
                let vo = self.eval_in(o, env)?;
                let vf = self.eval_in(f, env)?;
                let o = vo.as_obj()?;
                let id = self.fresh_id();
                Ok(Value::Obj(Rc::new(ObjVal {
                    id,
                    raw: o.raw.clone(),
                    view: ViewFn::Compose(Rc::new(o.view.clone()), Rc::new(ViewFn::Fn(vf))),
                })))
            }
            Expr::Query(f, o) => {
                let vf = self.eval_in(f, env)?;
                let vo = self.eval_in(o, env)?;
                let o = vo.as_obj()?.clone();
                let materialized = self.apply_view(&o.view, o.raw.clone())?;
                self.apply(vf, materialized)
            }
            Expr::Fuse(a, b) => {
                let va = self.eval_in(a, env)?;
                let vb = self.eval_in(b, env)?;
                let oa = va.as_obj()?.clone();
                let ob = vb.as_obj()?.clone();
                Ok(Value::Set(self.fuse_objs(&[oa, ob])))
            }
            Expr::RelObj(fields) => {
                let mut raw_fields = Vec::with_capacity(fields.len());
                let mut views = Vec::with_capacity(fields.len());
                for (l, e) in fields {
                    let v = self.eval_in(e, env)?;
                    let o = v.as_obj()?.clone();
                    let slot = self.store.alloc(o.raw.clone());
                    raw_fields.push((l.clone(), false, slot));
                    views.push((l.clone(), Rc::new(o.view.clone())));
                }
                // relobj creates a *new* raw object, hence new identity.
                let raw = self.build_record(raw_fields);
                let id = self.fresh_id();
                Ok(Value::Obj(Rc::new(ObjVal {
                    id,
                    raw,
                    view: ViewFn::RelFields(views),
                })))
            }

            // ---------- classes (the meaning of Fig. 5 / Section 4.4) ----------
            Expr::ClassExpr(cd) => {
                let cid = self.eval_class_def(cd, env)?;
                Ok(Value::Class(cid))
            }
            Expr::CQuery(f, c) => {
                let vf = self.eval_in(f, env)?;
                let vc = self.eval_in(c, env)?;
                let cid = vc.as_class()?;
                let extent = self.top_level_extent(cid)?;
                self.apply(vf, Value::Set(extent))
            }
            Expr::Insert(c, e) => {
                let vc = self.eval_in(c, env)?;
                let ve = self.eval_in(e, env)?;
                ve.as_obj()?;
                let cid = vc.as_class()?;
                let slot = self.classes[cid].own_slot;
                let own = self.store.get(slot).as_set()?.clone();
                // tr: update(C, OwnExt, union(C·OwnExt, {e})) — left-biased,
                // so inserting an object already present (by objeq) keeps
                // the existing element.
                let updated = own.union_left(&SetVal::from_elems([ve]));
                self.store.set(slot, Value::Set(updated));
                self.class_epoch += 1;
                Ok(Value::Unit)
            }
            Expr::Delete(c, e) => {
                let vc = self.eval_in(c, env)?;
                let ve = self.eval_in(e, env)?;
                ve.as_obj()?;
                let cid = vc.as_class()?;
                let slot = self.classes[cid].own_slot;
                let own = self.store.get(slot).as_set()?.clone();
                let updated = own.difference(&SetVal::from_elems([ve]));
                self.store.set(slot, Value::Set(updated));
                self.class_epoch += 1;
                Ok(Value::Unit)
            }
            Expr::LetClasses(binds, body) => {
                // Pre-allocate every class id so include sources can refer
                // to siblings cyclically, then fill the definitions.
                let mut env2 = env.clone();
                let first_id = self.classes.len();
                for (i, (name, _)) in binds.iter().enumerate() {
                    let own_slot = self.store.alloc(Value::Set(SetVal::empty()));
                    self.classes.push(ClassData {
                        own_slot,
                        includes: Vec::new(),
                    });
                    env2 = env2.bind(name.clone(), Value::Class(first_id + i));
                }
                for (i, (_, cd)) in binds.iter().enumerate() {
                    let cid = first_id + i;
                    let own = self.eval_in(&cd.own, &env2)?;
                    own.as_set()?;
                    let slot = self.classes[cid].own_slot;
                    self.store.set(slot, own);
                    let includes = self.eval_includes(cd, &env2)?;
                    self.classes[cid].includes = includes;
                }
                self.eval_in(body, &env2)
            }
        }
    }

    /// Evaluate a non-recursive class definition to a fresh class id.
    fn eval_class_def(&mut self, cd: &ClassDef, env: &Env) -> Result<ClassId, RuntimeError> {
        let own = self.eval_in(&cd.own, env)?;
        own.as_set()?;
        let own_slot = self.store.alloc(own);
        let includes = self.eval_includes(cd, env)?;
        let cid = self.classes.len();
        self.classes.push(ClassData { own_slot, includes });
        Ok(cid)
    }

    fn eval_includes(
        &mut self,
        cd: &ClassDef,
        env: &Env,
    ) -> Result<Vec<IncludeSpec>, RuntimeError> {
        let mut includes = Vec::with_capacity(cd.includes.len());
        for inc in &cd.includes {
            let mut sources = Vec::with_capacity(inc.sources.len());
            for s in &inc.sources {
                let v = self.eval_in(s, env)?;
                sources.push(v.as_class()?);
            }
            let view = self.eval_in(&inc.view, env)?;
            let pred = self.eval_in(&inc.pred, env)?;
            includes.push(IncludeSpec {
                sources,
                view,
                pred,
            });
        }
        Ok(includes)
    }

    /// Build a record value from `(label, mutable, slot)` triples (any
    /// order; slots already allocated). Used by un-lowered record
    /// expressions and by machine-internal constructions (relobj raws,
    /// view materialization) — the latter have no source field operation,
    /// so this helper does not touch the offset/fallback counters.
    fn build_record(&mut self, mut triples: Vec<(Label, bool, SlotId)>) -> Value {
        triples.sort_by(|a, b| a.0.cmp(&b.0));
        let layout = Layout::new(triples.iter().map(|(l, m, _)| (l.clone(), *m)));
        let slots = triples.into_iter().map(|(_, _, s)| s).collect();
        let id = self.fresh_id();
        self.stats.records_allocated += 1;
        Value::Record(Rc::new(RecordVal {
            id,
            layout: Rc::new(layout),
            slots,
        }))
    }

    /// Locate a field: `(offset, slot)`. With a resolved offset (`Some`)
    /// this is a direct slot read — the fast path the compile tier buys —
    /// guarded by one label compare against the layout, in release builds
    /// too: a wrong-but-in-bounds compiled offset must degrade into the
    /// counted dynamic path below, never silently read the wrong field.
    /// Without a resolved offset (un-lowered op, or an index parameter
    /// that carried the unresolved sentinel) the label is looked up in
    /// the layout, and the fallback counter records the residue.
    fn field_slot(
        &mut self,
        r: &RecordVal,
        l: &Label,
        resolved: Option<usize>,
    ) -> Result<(usize, SlotId), RuntimeError> {
        match resolved {
            Some(i) if i < r.slots.len() && r.layout.label_at(i) == l => {
                self.stats.field_offsets_resolved += 1;
                Ok((i, r.slots[i]))
            }
            _ => {
                self.note_dyn_fallback(l.as_str());
                let i = r
                    .offset_of(l)
                    .ok_or_else(|| RuntimeError::NoSuchField(l.clone()))?;
                Ok((i, r.slots[i]))
            }
        }
    }

    /// Resolve a lowered index operand to an offset. An index *parameter*
    /// is an ordinary λ-bound variable holding an int; a negative value is
    /// the lowering's "could not resolve" sentinel and yields `None`
    /// (dynamic fallback).
    fn resolve_idx(&mut self, idx: &Idx, env: &Env) -> Result<Option<usize>, RuntimeError> {
        match idx {
            Idx::Const(n) => Ok(Some(*n)),
            Idx::Var(x) => {
                let v = env
                    .lookup(x)
                    .or_else(|| self.globals.get(x))
                    .cloned()
                    .ok_or_else(|| RuntimeError::Unbound(x.clone()))?;
                let n = v.as_int()?;
                Ok(usize::try_from(n).ok())
            }
        }
    }

    /// Apply a function value.
    pub fn apply(&mut self, f: Value, arg: Value) -> Result<Value, RuntimeError> {
        self.burn()?;
        match f {
            Value::Closure(c) => {
                let mut env = c.env.clone();
                if let Some(fx) = &c.fix_name {
                    env = env.bind(fx.clone(), Value::Closure(c.clone()));
                }
                let env = env.bind(c.param.clone(), arg);
                self.eval_in(&c.body, &env)
            }
            Value::Builtin(b) => {
                let mut nb = (*b).clone();
                nb.args.push(arg);
                if nb.args.len() == nb.arity {
                    (nb.f)(&nb.args)
                } else {
                    nb.id = self.fresh_id();
                    Ok(Value::Builtin(Rc::new(nb)))
                }
            }
            other => Err(RuntimeError::NotAFunction(other.shape())),
        }
    }

    /// `hom(S, f, op, z) = op(f(e1), op(f(e2), … op(f(en), z)…))`,
    /// folding right over the canonical element order.
    fn hom(&mut self, s: SetVal, f: Value, op: Value, z: Value) -> Result<Value, RuntimeError> {
        let elems: Vec<Value> = s.values().cloned().collect();
        let mut acc = z;
        for e in elems.into_iter().rev() {
            let fe = self.apply(f.clone(), e)?;
            let partial = self.apply(op.clone(), fe)?;
            acc = self.apply(partial, acc)?;
        }
        Ok(acc)
    }

    /// Materialize a view: apply the viewing function to the raw object.
    pub fn apply_view(&mut self, view: &ViewFn, raw: Value) -> Result<Value, RuntimeError> {
        match view {
            ViewFn::Identity => Ok(raw),
            ViewFn::Fn(f) => self.apply(f.clone(), raw),
            ViewFn::Compose(inner, outer) => {
                let mid = self.apply_view(inner, raw)?;
                self.apply_view(outer, mid)
            }
            ViewFn::Tuple(vs) => {
                let mut fields = Vec::with_capacity(vs.len());
                for (i, v) in vs.iter().enumerate() {
                    let val = self.apply_view(v, raw.clone())?;
                    let slot = self.store.alloc(val);
                    fields.push((Label::tuple(i + 1), false, slot));
                }
                Ok(self.build_record(fields))
            }
            ViewFn::RelFields(views) => {
                let r = raw.as_record()?.clone();
                let mut fields = Vec::with_capacity(views.len());
                for (l, v) in views {
                    let i = r
                        .offset_of(l)
                        .ok_or_else(|| RuntimeError::NoSuchField(l.clone()))?;
                    let component_raw = self.store.get(r.slots[i]).clone();
                    let val = self.apply_view(v, component_raw)?;
                    let slot = self.store.alloc(val);
                    fields.push((l.clone(), false, slot));
                }
                Ok(self.build_record(fields))
            }
        }
    }

    /// Materialize an object's current view — `query(λx.x, o)`.
    pub fn materialize(&mut self, o: &Value) -> Result<Value, RuntimeError> {
        let o = o.as_obj()?.clone();
        self.apply_view(&o.view, o.raw.clone())
    }

    /// n-ary `fuse`: when all objects share one raw object, a singleton of
    /// the product-view object; otherwise empty. For a single object this
    /// degenerates to a singleton of that object (used by 1-source
    /// `include` clauses).
    pub fn fuse_objs(&mut self, objs: &[Rc<ObjVal>]) -> SetVal {
        assert!(!objs.is_empty(), "fuse of zero objects");
        self.stats.sets_allocated += 1;
        if objs.len() == 1 {
            return SetVal::from_elems([Value::Obj(objs[0].clone())]);
        }
        let raw_key = objs[0].raw.key();
        if objs.iter().any(|o| o.raw.key() != raw_key) {
            return SetVal::empty();
        }
        let views: Vec<Rc<ViewFn>> = objs.iter().map(|o| Rc::new(o.view.clone())).collect();
        let id = self.fresh_id();
        let fused = Value::Obj(Rc::new(ObjVal {
            id,
            raw: objs[0].raw.clone(),
            view: ViewFn::Tuple(views),
        }));
        SetVal::from_elems([fused])
    }

    /// n-ary intersection of sets of objects (the paper's `intersect`):
    /// one fused object per raw object present in *all* sets.
    pub fn intersect_obj_sets(&mut self, sets: &[SetVal]) -> Result<SetVal, RuntimeError> {
        assert!(!sets.is_empty(), "intersect of zero sets");
        if sets.len() == 1 {
            return Ok(sets[0].clone());
        }
        let mut out = Vec::new();
        'outer: for (k, v0) in sets[0].0.iter() {
            let mut group: Vec<Rc<ObjVal>> = Vec::with_capacity(sets.len());
            group.push(v0.as_obj()?.clone());
            for s in &sets[1..] {
                match s.0.get(k) {
                    Some(v) => group.push(v.as_obj()?.clone()),
                    None => continue 'outer,
                }
            }
            let fused = self.fuse_objs(&group);
            for v in fused.values() {
                out.push(v.clone());
            }
        }
        Ok(SetVal::from_elems(out))
    }

    /// The extent of a class: own extent ∪ includes, with the visited-set
    /// (`L`) algorithm of Section 4.4 guaranteeing termination (Prop. 5).
    /// `visited` must already contain `cid`.
    pub fn class_extent(
        &mut self,
        cid: ClassId,
        visited: &BTreeSet<ClassId>,
    ) -> Result<SetVal, RuntimeError> {
        self.burn()?;
        let data = self.classes[cid].clone();
        let mut result = self.store.get(data.own_slot).as_set()?.clone();
        for inc in &data.includes {
            // Extents of the sources, cutting cycles via the visited set.
            let mut source_extents = Vec::with_capacity(inc.sources.len());
            for &src in &inc.sources {
                if visited.contains(&src) {
                    source_extents.push(SetVal::empty());
                } else {
                    let mut v2 = visited.clone();
                    v2.insert(src);
                    source_extents.push(self.class_extent(src, &v2)?);
                }
            }
            let candidates = self.intersect_obj_sets(&source_extents)?;
            // select as view from candidates where pred
            let mut included = Vec::new();
            for obj in candidates.values().cloned().collect::<Vec<_>>() {
                let keep = self.apply(inc.pred.clone(), obj.clone())?.as_bool()?;
                if keep {
                    let o = obj.as_obj()?.clone();
                    let id = self.fresh_id();
                    included.push(Value::Obj(Rc::new(ObjVal {
                        id,
                        raw: o.raw.clone(),
                        view: ViewFn::Compose(
                            Rc::new(o.view.clone()),
                            Rc::new(ViewFn::Fn(inc.view.clone())),
                        ),
                    })));
                }
            }
            result = result.union_left(&SetVal::from_elems(included));
        }
        Ok(result)
    }

    /// Convenience: the full extent of a class value (entry point used by
    /// `c-query` and the engine).
    pub fn extent_of(&mut self, class_value: &Value) -> Result<SetVal, RuntimeError> {
        let cid = class_value.as_class()?;
        self.top_level_extent(cid)
    }

    /// Compute (or fetch from the cache, when enabled and fresh) the full
    /// extent of a class.
    fn top_level_extent(&mut self, cid: ClassId) -> Result<SetVal, RuntimeError> {
        if self.extent_cache_enabled {
            if let Some((epoch, cached)) = self.extent_cache.get(&cid) {
                if *epoch == self.class_epoch {
                    let rows = cached.len() as u64;
                    let served = cached.clone();
                    if let Some(p) = &mut self.profiler {
                        p.note_extent(cid, true, rows, self.class_epoch);
                    }
                    return Ok(served);
                }
            }
        }
        let mut visited = BTreeSet::new();
        visited.insert(cid);
        let extent = self.class_extent(cid, &visited)?;
        if let Some(p) = &mut self.profiler {
            // A recompute with the cache on means the previous entry was
            // invalidated by the epoch current now.
            p.note_extent(cid, false, extent.len() as u64, self.class_epoch);
        }
        if self.extent_cache_enabled {
            self.extent_cache
                .insert(cid, (self.class_epoch, extent.clone()));
        }
        Ok(extent)
    }

    /// Opt-in memoization of top-level class extents, an *extension* to the
    /// paper's always-recompute semantics (§4.3's `λ()` delay).
    ///
    /// Cache entries are invalidated by any store mutation — `insert`,
    /// `delete`, and record-field `update` all bump a global epoch — so a
    /// predicate or viewing function reading mutable state always sees
    /// extents consistent with the current store; enabling the cache is
    /// observationally transparent. The cost is coarseness: one `update`
    /// anywhere recomputes every extent on next read. The E4 ablation
    /// bench quantifies the trade-off.
    pub fn enable_extent_cache(&mut self, enabled: bool) {
        self.extent_cache_enabled = enabled;
        if !enabled {
            self.extent_cache.clear();
        }
    }

    /// Number of live cache entries (diagnostics).
    pub fn extent_cache_len(&self) -> usize {
        self.extent_cache.len()
    }

    /// Read a record field value (engine convenience).
    pub fn field_of(&self, record: &Value, label: &str) -> Result<Value, RuntimeError> {
        let r = record.as_record()?;
        let l = Label::new(label);
        let i = r.offset_of(&l).ok_or(RuntimeError::NoSuchField(l))?;
        Ok(self.store.get(r.slots[i]).clone())
    }

    /// Pretty-print a value, reading record fields through the store.
    /// Rendering depth is capped defensively (well-typed programs cannot
    /// build cyclic values — the occurs check forbids the types — but the
    /// machine API is public).
    pub fn show(&self, v: &Value) -> String {
        self.show_depth(v, 64)
    }

    fn show_depth(&self, v: &Value, depth: usize) -> String {
        if depth == 0 {
            return "…".to_string();
        }
        match v {
            Value::Unit => "()".to_string(),
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => format!("{s:?}"),
            Value::Record(r) => {
                let mut out = String::from("[");
                for (i, (l, mutable, slot)) in r.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(l.as_str());
                    out.push_str(if mutable { " := " } else { " = " });
                    out.push_str(&self.show_depth(self.store.get(slot), depth - 1));
                }
                out.push(']');
                out
            }
            Value::Set(s) => {
                let mut out = String::from("{");
                for (i, e) in s.values().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&self.show_depth(e, depth - 1));
                }
                out.push('}');
                out
            }
            Value::Closure(_) | Value::Builtin(_) => "<fn>".to_string(),
            Value::LValue(s) => format!("<lval #{s}>"),
            Value::Obj(o) => format!("<obj raw={}>", self.show_depth(&o.raw, depth - 1)),
            Value::Class(c) => format!("<class #{c}>"),
        }
    }

    /// Test whether a set value contains an element `objeq`/value-equal to
    /// `v`.
    pub fn set_contains(&self, s: &SetVal, v: &Value) -> bool {
        s.contains_key(&v.key())
    }

    /// Expose the key of a value (for tests and the isa baseline).
    pub fn key_of(v: &Value) -> Key {
        v.key()
    }
}

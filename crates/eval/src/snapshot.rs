//! Machine snapshots: a versioned byte encoding of the complete evaluator
//! state — store, class table, global value environment, identity counter,
//! and mutation epoch — with **object-identity sharing preserved**.
//!
//! The encoding follows the no-serde discipline of `polyview_syntax::wire`
//! (hand-rolled, std-only, versioned header, loud decode errors). What it
//! adds over plain structural encoding is a *node table*: every shared
//! allocation (`Rc<RecordVal>`, `Rc<Closure>`, `Rc<Builtin>`, `Rc<ObjVal>`,
//! set maps, environment chain nodes, closure bodies, layouts, and view
//! functions) is serialized once at its first visit (`NODE_DEF`, which
//! implicitly assigns the next table index) and referenced by index
//! everywhere else (`NODE_REF`). The decoder memoizes indexes back to
//! fresh `Rc`s, so a record reachable from two globals decodes to one
//! allocation reachable from two globals — shared ids round-trip as
//! shared, never duplicated. Slot-level sharing (the paper's `extract`)
//! is free: `SlotId`s are indexes into the one flat store section.
//!
//! Soundness leans on an invariant of the evaluator: the value graph is
//! **acyclic**. Recursion ties its knot at application time (a `fix`
//! closure re-binds itself into its environment when applied, it does not
//! capture itself), so a pre-order `NODE_DEF` walk terminates and every
//! `NODE_REF` points at a node whose contents were already decoded.
//!
//! What is deliberately *not* serialized: the extent cache, work-counter
//! stats, and the profiler — all cold-start derivatives of the persisted
//! state. Builtin function pointers cannot cross a process boundary, so a
//! builtin serializes its name, id, and applied arguments; the decoder
//! re-resolves the pointer from [`crate::builtins::natives`] and rejects
//! names the running binary does not know.

use crate::builtins;
use crate::env::Env;
use crate::machine::{ClassData, IncludeSpec, Machine};
use crate::store::Store;
use crate::value::{Builtin, Closure, ObjVal, RecordVal, SetVal, Value, ViewFn};
use polyview_syntax::wire::{
    read_expr, read_label, read_layout, read_name, write_expr, write_label, write_layout,
    write_name, ByteReader, ByteWriter, WireError,
};
use polyview_syntax::{Expr, Layout, Name};
use std::collections::HashMap;
use std::rc::Rc;

/// First bytes of every machine snapshot.
pub const MACHINE_MAGIC: [u8; 4] = *b"PVMS";
/// Format version; decoding any other version is a loud error.
pub const MACHINE_VERSION: u32 = 1;

const NODE_DEF: u8 = 0;
const NODE_REF: u8 = 1;

const KIND_RECORD: u8 = 0;
const KIND_SET: u8 = 1;
const KIND_CLOSURE: u8 = 2;
const KIND_BUILTIN: u8 = 3;
const KIND_OBJ: u8 = 4;
const KIND_ENV: u8 = 5;
const KIND_EXPR: u8 = 6;
const KIND_LAYOUT: u8 = 7;
const KIND_VIEW: u8 = 8;

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_RECORD => "record",
        KIND_SET => "set",
        KIND_CLOSURE => "closure",
        KIND_BUILTIN => "builtin",
        KIND_OBJ => "object",
        KIND_ENV => "env node",
        KIND_EXPR => "expr",
        KIND_LAYOUT => "layout",
        KIND_VIEW => "view fn",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    w: ByteWriter,
    /// `Rc` allocation address → node-table index. Addresses are unique
    /// across all *live* allocations and the borrowed machine keeps every
    /// encoded allocation alive for the whole walk, so one map covers all
    /// node kinds.
    memo: HashMap<usize, u32>,
}

impl Enc {
    /// Emit a node: a `NODE_REF` if `ptr` was seen before, otherwise a
    /// `NODE_DEF` (implicitly assigning the next index, pre-order) whose
    /// contents `body` writes.
    fn node(&mut self, ptr: usize, kind: u8, body: impl FnOnce(&mut Enc)) {
        if let Some(&idx) = self.memo.get(&ptr) {
            self.w.u8(NODE_REF);
            self.w.u32(idx);
        } else {
            let idx = u32::try_from(self.memo.len()).expect("node table overflow");
            self.memo.insert(ptr, idx);
            self.w.u8(NODE_DEF);
            self.w.u8(kind);
            body(self);
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.w.u8(0),
            Value::Int(i) => {
                self.w.u8(1);
                self.w.i64(*i);
            }
            Value::Bool(b) => {
                self.w.u8(2);
                self.w.bool(*b);
            }
            Value::Str(s) => {
                self.w.u8(3);
                self.w.str(s);
            }
            Value::Record(r) => {
                self.w.u8(4);
                self.record(r);
            }
            Value::Set(s) => {
                self.w.u8(5);
                self.set(s);
            }
            Value::Closure(c) => {
                self.w.u8(6);
                self.closure(c);
            }
            Value::Builtin(b) => {
                self.w.u8(7);
                self.builtin(b);
            }
            Value::LValue(slot) => {
                self.w.u8(8);
                self.w.usize(*slot);
            }
            Value::Obj(o) => {
                self.w.u8(9);
                self.obj(o);
            }
            Value::Class(c) => {
                self.w.u8(10);
                self.w.usize(*c);
            }
        }
    }

    fn record(&mut self, r: &Rc<RecordVal>) {
        self.node(Rc::as_ptr(r) as usize, KIND_RECORD, |e| {
            e.w.u64(r.id);
            e.layout(&r.layout);
            e.w.usize(r.slots.len());
            for s in &r.slots {
                e.w.usize(*s);
            }
        });
    }

    fn layout(&mut self, l: &Rc<Layout>) {
        self.node(Rc::as_ptr(l) as usize, KIND_LAYOUT, |e| {
            write_layout(&mut e.w, l);
        });
    }

    fn set(&mut self, s: &SetVal) {
        self.node(Rc::as_ptr(&s.0) as usize, KIND_SET, |e| {
            e.w.usize(s.len());
            // Values only: keys are recomputed on decode (`Value::key` is
            // deterministic given the ids, which round-trip).
            for v in s.values() {
                e.value(v);
            }
        });
    }

    fn closure(&mut self, c: &Rc<Closure>) {
        self.node(Rc::as_ptr(c) as usize, KIND_CLOSURE, |e| {
            e.w.u64(c.id);
            match &c.fix_name {
                None => e.w.bool(false),
                Some(n) => {
                    e.w.bool(true);
                    write_name(&mut e.w, n);
                }
            }
            write_name(&mut e.w, &c.param);
            e.expr(&c.body);
            e.env(&c.env);
        });
    }

    fn expr(&mut self, body: &Rc<Expr>) {
        self.node(Rc::as_ptr(body) as usize, KIND_EXPR, |e| {
            write_expr(&mut e.w, body);
        });
    }

    fn builtin(&mut self, b: &Rc<Builtin>) {
        self.node(Rc::as_ptr(b) as usize, KIND_BUILTIN, |e| {
            e.w.u64(b.id);
            e.w.str(b.name);
            e.w.usize(b.arity);
            e.w.usize(b.args.len());
            for a in &b.args {
                e.value(a);
            }
        });
    }

    fn obj(&mut self, o: &Rc<ObjVal>) {
        self.node(Rc::as_ptr(o) as usize, KIND_OBJ, |e| {
            e.w.u64(o.id);
            e.value(&o.raw);
            e.viewfn(&o.view);
        });
    }

    fn viewfn(&mut self, vf: &ViewFn) {
        match vf {
            ViewFn::Identity => self.w.u8(0),
            ViewFn::Fn(v) => {
                self.w.u8(1);
                self.value(v);
            }
            ViewFn::Compose(inner, outer) => {
                self.w.u8(2);
                self.view_node(inner);
                self.view_node(outer);
            }
            ViewFn::Tuple(vs) => {
                self.w.u8(3);
                self.w.usize(vs.len());
                for v in vs {
                    self.view_node(v);
                }
            }
            ViewFn::RelFields(fs) => {
                self.w.u8(4);
                self.w.usize(fs.len());
                for (l, v) in fs {
                    write_label(&mut self.w, l);
                    self.view_node(v);
                }
            }
        }
    }

    fn view_node(&mut self, vf: &Rc<ViewFn>) {
        self.node(Rc::as_ptr(vf) as usize, KIND_VIEW, |e| {
            e.viewfn(vf);
        });
    }

    fn env(&mut self, env: &Env) {
        match env.head() {
            None => self.w.u8(0),
            Some((name, value, next)) => {
                self.w.u8(1);
                let ptr = env.node_ptr().expect("non-empty env has a node") as usize;
                self.node(ptr, KIND_ENV, |e| {
                    write_name(&mut e.w, name);
                    e.value(value);
                    e.env(next);
                });
            }
        }
    }
}

/// Serialize the complete machine state to the versioned byte format.
/// Infallible: every reachable value has an encoding.
pub fn encode_machine(m: &Machine) -> Vec<u8> {
    let mut e = Enc {
        w: ByteWriter::new(),
        memo: HashMap::new(),
    };
    for b in MACHINE_MAGIC {
        e.w.u8(b);
    }
    e.w.u32(MACHINE_VERSION);
    match m.fuel {
        None => e.w.bool(false),
        Some(f) => {
            e.w.bool(true);
            e.w.u64(f);
        }
    }
    e.w.u64(m.next_id());
    e.w.u64(m.class_epoch());
    e.w.usize(m.store.len());
    e.w.usize(m.class_count());
    for slot in 0..m.store.len() {
        e.value(m.store.get(slot));
    }
    for cid in 0..m.class_count() {
        let cd = m.class_data(cid);
        e.w.usize(cd.own_slot);
        e.w.usize(cd.includes.len());
        for inc in &cd.includes {
            e.w.usize(inc.sources.len());
            for s in &inc.sources {
                e.w.usize(*s);
            }
            e.value(&inc.view);
            e.value(&inc.pred);
        }
    }
    // Sorted for a deterministic byte stream (HashMap order is not).
    let mut globals: Vec<_> = m.globals_iter().collect();
    globals.sort_by(|a, b| a.0.cmp(b.0));
    e.w.usize(globals.len());
    for (name, v) in globals {
        write_name(&mut e.w, name);
        e.value(v);
    }
    e.w.into_bytes()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A decoded node-table entry. Cloning clones the `Rc`, which is exactly
/// how `NODE_REF` restores sharing.
#[derive(Clone)]
enum DecNode {
    Record(Rc<RecordVal>),
    Set(SetVal),
    Closure(Rc<Closure>),
    Builtin(Rc<Builtin>),
    Obj(Rc<ObjVal>),
    Env(Env),
    Expr(Rc<Expr>),
    Layout(Rc<Layout>),
    View(Rc<ViewFn>),
}

struct Dec<'a> {
    r: ByteReader<'a>,
    /// Table index → decoded node. `None` marks a definition still being
    /// decoded; a reference to it would mean a cycle, which the encoder
    /// cannot produce (the value graph is acyclic), so it is rejected.
    nodes: Vec<Option<DecNode>>,
    /// Bounds from the header, for validating ids as they are read.
    store_len: usize,
    class_count: usize,
    next_id: u64,
    /// Builtin name → (arity, fn pointer), resolved from the running
    /// binary.
    natives: HashMap<&'static str, (usize, builtins::NativeFn)>,
}

impl<'a> Dec<'a> {
    fn node(&mut self, expect: u8) -> Result<DecNode, WireError> {
        match self.r.u8("node framing")? {
            NODE_DEF => {
                let idx = self.nodes.len();
                self.nodes.push(None);
                let kind = self.r.u8("node kind")?;
                if kind != expect {
                    return Err(WireError::Malformed(format!(
                        "expected {} node, found {}",
                        kind_name(expect),
                        kind_name(kind)
                    )));
                }
                let n = self.node_body(kind)?;
                self.nodes[idx] = Some(n.clone());
                Ok(n)
            }
            NODE_REF => {
                let idx = self.r.u32("node index")? as usize;
                match self.nodes.get(idx) {
                    Some(Some(n)) => {
                        let n = n.clone();
                        self.check_ref_kind(&n, expect, idx)?;
                        Ok(n)
                    }
                    Some(None) => Err(WireError::Malformed(format!(
                        "reference to node {idx} from inside its own definition (cycle)"
                    ))),
                    None => Err(WireError::Malformed(format!(
                        "dangling reference to undefined node {idx}"
                    ))),
                }
            }
            tag => Err(WireError::BadTag {
                what: "node framing",
                tag,
            }),
        }
    }

    fn check_ref_kind(&self, n: &DecNode, expect: u8, idx: usize) -> Result<(), WireError> {
        let got = match n {
            DecNode::Record(_) => KIND_RECORD,
            DecNode::Set(_) => KIND_SET,
            DecNode::Closure(_) => KIND_CLOSURE,
            DecNode::Builtin(_) => KIND_BUILTIN,
            DecNode::Obj(_) => KIND_OBJ,
            DecNode::Env(_) => KIND_ENV,
            DecNode::Expr(_) => KIND_EXPR,
            DecNode::Layout(_) => KIND_LAYOUT,
            DecNode::View(_) => KIND_VIEW,
        };
        if got != expect {
            return Err(WireError::Malformed(format!(
                "node {idx} is a {} but was referenced as a {}",
                kind_name(got),
                kind_name(expect)
            )));
        }
        Ok(())
    }

    fn node_body(&mut self, kind: u8) -> Result<DecNode, WireError> {
        match kind {
            KIND_RECORD => {
                let id = self.id("record id")?;
                let layout = self.layout()?;
                let n = self.r.count("record slot count")?;
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    slots.push(self.slot("record slot")?);
                }
                if slots.len() != layout.len() {
                    return Err(WireError::Malformed(format!(
                        "record {id} has {} slots but its layout has {} fields",
                        slots.len(),
                        layout.len()
                    )));
                }
                Ok(DecNode::Record(Rc::new(RecordVal { id, layout, slots })))
            }
            KIND_SET => {
                let n = self.r.count("set element count")?;
                let mut elems = Vec::with_capacity(n);
                for _ in 0..n {
                    elems.push(self.value()?);
                }
                // Keys are recomputed: deterministic given the decoded ids.
                Ok(DecNode::Set(SetVal::from_elems(elems)))
            }
            KIND_CLOSURE => {
                let id = self.id("closure id")?;
                let fix_name = if self.r.bool("fix-name present")? {
                    Some(read_name(&mut self.r)?)
                } else {
                    None
                };
                let param = read_name(&mut self.r)?;
                let body = self.expr()?;
                let env = self.env()?;
                Ok(DecNode::Closure(Rc::new(Closure {
                    id,
                    fix_name,
                    param,
                    body,
                    env,
                })))
            }
            KIND_BUILTIN => {
                let id = self.id("builtin id")?;
                let name = self.r.str("builtin name")?;
                let arity = self.r.usize("builtin arity")?;
                let Some(&(native_arity, f)) = self.natives.get(name.as_str()) else {
                    return Err(WireError::Malformed(format!(
                        "snapshot references builtin {name:?}, unknown to this binary"
                    )));
                };
                if arity != native_arity {
                    return Err(WireError::Malformed(format!(
                        "builtin {name:?} arity mismatch: snapshot says {arity}, binary says {native_arity}"
                    )));
                }
                let n = self.r.count("builtin applied-arg count")?;
                if n >= arity.max(1) {
                    return Err(WireError::Malformed(format!(
                        "builtin {name:?} carries {n} applied args at arity {arity}"
                    )));
                }
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    args.push(self.value()?);
                }
                // The name's &'static str comes from the natives table, not
                // the snapshot buffer.
                let name: &'static str = self
                    .natives
                    .keys()
                    .find(|k| **k == name.as_str())
                    .copied()
                    .expect("present: resolved above");
                Ok(DecNode::Builtin(Rc::new(Builtin {
                    id,
                    name,
                    arity,
                    args,
                    f,
                })))
            }
            KIND_OBJ => {
                let id = self.id("object id")?;
                let raw = self.value()?;
                let view = self.viewfn()?;
                Ok(DecNode::Obj(Rc::new(ObjVal { id, raw, view })))
            }
            KIND_ENV => {
                let name = read_name(&mut self.r)?;
                let value = self.value()?;
                let next = self.env()?;
                Ok(DecNode::Env(next.bind(name, value)))
            }
            KIND_EXPR => Ok(DecNode::Expr(Rc::new(read_expr(&mut self.r)?))),
            KIND_LAYOUT => Ok(DecNode::Layout(Rc::new(read_layout(&mut self.r)?))),
            KIND_VIEW => Ok(DecNode::View(Rc::new(self.viewfn()?))),
            tag => Err(WireError::BadTag {
                what: "node kind",
                tag,
            }),
        }
    }

    fn value(&mut self) -> Result<Value, WireError> {
        Ok(match self.r.u8("value tag")? {
            0 => Value::Unit,
            1 => Value::Int(self.r.i64("int value")?),
            2 => Value::Bool(self.r.bool("bool value")?),
            3 => Value::str(self.r.str("str value")?),
            4 => match self.node(KIND_RECORD)? {
                DecNode::Record(r) => Value::Record(r),
                _ => unreachable!("kind checked"),
            },
            5 => match self.node(KIND_SET)? {
                DecNode::Set(s) => Value::Set(s),
                _ => unreachable!("kind checked"),
            },
            6 => match self.node(KIND_CLOSURE)? {
                DecNode::Closure(c) => Value::Closure(c),
                _ => unreachable!("kind checked"),
            },
            7 => match self.node(KIND_BUILTIN)? {
                DecNode::Builtin(b) => Value::Builtin(b),
                _ => unreachable!("kind checked"),
            },
            8 => Value::LValue(self.slot("lvalue slot")?),
            9 => match self.node(KIND_OBJ)? {
                DecNode::Obj(o) => Value::Obj(o),
                _ => unreachable!("kind checked"),
            },
            10 => Value::Class(self.class_id("class value")?),
            tag => {
                return Err(WireError::BadTag {
                    what: "value tag",
                    tag,
                })
            }
        })
    }

    fn layout(&mut self) -> Result<Rc<Layout>, WireError> {
        match self.node(KIND_LAYOUT)? {
            DecNode::Layout(l) => Ok(l),
            _ => unreachable!("kind checked"),
        }
    }

    fn expr(&mut self) -> Result<Rc<Expr>, WireError> {
        match self.node(KIND_EXPR)? {
            DecNode::Expr(e) => Ok(e),
            _ => unreachable!("kind checked"),
        }
    }

    fn viewfn(&mut self) -> Result<ViewFn, WireError> {
        Ok(match self.r.u8("view-fn tag")? {
            0 => ViewFn::Identity,
            1 => ViewFn::Fn(self.value()?),
            2 => {
                let inner = self.view_node()?;
                let outer = self.view_node()?;
                ViewFn::Compose(inner, outer)
            }
            3 => {
                let n = self.r.count("view tuple arity")?;
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(self.view_node()?);
                }
                ViewFn::Tuple(vs)
            }
            4 => {
                let n = self.r.count("view field count")?;
                let mut fs = Vec::with_capacity(n);
                for _ in 0..n {
                    let l = read_label(&mut self.r)?;
                    fs.push((l, self.view_node()?));
                }
                ViewFn::RelFields(fs)
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "view-fn tag",
                    tag,
                })
            }
        })
    }

    fn view_node(&mut self) -> Result<Rc<ViewFn>, WireError> {
        match self.node(KIND_VIEW)? {
            DecNode::View(v) => Ok(v),
            _ => unreachable!("kind checked"),
        }
    }

    fn env(&mut self) -> Result<Env, WireError> {
        match self.r.u8("env tag")? {
            0 => Ok(Env::empty()),
            1 => match self.node(KIND_ENV)? {
                DecNode::Env(e) => Ok(e),
                _ => unreachable!("kind checked"),
            },
            tag => Err(WireError::BadTag {
                what: "env tag",
                tag,
            }),
        }
    }

    fn slot(&mut self, what: &'static str) -> Result<usize, WireError> {
        let s = self.r.usize(what)?;
        if s >= self.store_len {
            return Err(WireError::Malformed(format!(
                "{what} {s} out of range (store has {} slots)",
                self.store_len
            )));
        }
        Ok(s)
    }

    fn class_id(&mut self, what: &'static str) -> Result<usize, WireError> {
        let c = self.r.usize(what)?;
        if c >= self.class_count {
            return Err(WireError::Malformed(format!(
                "{what} {c} out of range (table has {} classes)",
                self.class_count
            )));
        }
        Ok(c)
    }

    fn id(&mut self, what: &'static str) -> Result<u64, WireError> {
        let id = self.r.u64(what)?;
        if id >= self.next_id {
            return Err(WireError::Malformed(format!(
                "{what} {id} not below the identity counter {}",
                self.next_id
            )));
        }
        Ok(id)
    }
}

/// Reconstruct a machine from bytes produced by [`encode_machine`].
/// Anything else — truncation, version skew, dangling node references,
/// out-of-range slot/class/identity ids, unknown builtins, trailing
/// garbage — is a loud [`WireError`], never a silently wrong machine.
pub fn decode_machine(bytes: &[u8]) -> Result<Machine, WireError> {
    let mut d = Dec {
        r: ByteReader::new(bytes),
        nodes: Vec::new(),
        store_len: 0,
        class_count: 0,
        next_id: 0,
        natives: builtins::natives()
            .into_iter()
            .map(|(name, arity, f)| (name, (arity, f)))
            .collect(),
    };
    for expected in MACHINE_MAGIC {
        if d.r.u8("magic")? != expected {
            return Err(WireError::Malformed(
                "bad magic: not a machine snapshot".into(),
            ));
        }
    }
    let version = d.r.u32("version")?;
    if version != MACHINE_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported machine snapshot version {version} (this binary reads {MACHINE_VERSION})"
        )));
    }
    let fuel = if d.r.bool("fuel present")? {
        Some(d.r.u64("fuel")?)
    } else {
        None
    };
    d.next_id = d.r.u64("identity counter")?;
    let class_epoch = d.r.u64("class epoch")?;
    d.store_len = d.r.count("store length")?;
    d.class_count = d.r.count("class count")?;

    let mut store = Store::new();
    for _ in 0..d.store_len {
        let v = d.value()?;
        store.alloc(v);
    }

    let mut classes = Vec::with_capacity(d.class_count);
    for _ in 0..d.class_count {
        let own_slot = d.slot("class own-extent slot")?;
        let n = d.r.count("include count")?;
        let mut includes = Vec::with_capacity(n);
        for _ in 0..n {
            let ns = d.r.count("include source count")?;
            let mut sources = Vec::with_capacity(ns);
            for _ in 0..ns {
                sources.push(d.class_id("include source")?);
            }
            let view = d.value()?;
            let pred = d.value()?;
            includes.push(IncludeSpec {
                sources,
                view,
                pred,
            });
        }
        classes.push(ClassData { own_slot, includes });
    }

    let count = d.r.count("global count")?;
    let mut globals = HashMap::with_capacity(count);
    for _ in 0..count {
        let name: Name = read_name(&mut d.r)?;
        let v = d.value()?;
        globals.insert(name, v);
    }

    if !d.r.finished() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after machine snapshot",
            d.r.remaining()
        )));
    }
    let next_id = d.next_id;
    Ok(Machine::restore(
        store,
        classes,
        globals,
        next_id,
        class_epoch,
        fuel,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{Label, Lit};

    fn roundtrip(m: &Machine) -> Machine {
        decode_machine(&encode_machine(m)).expect("roundtrip decodes")
    }

    #[test]
    fn fresh_machine_roundtrips() {
        let m = Machine::new();
        let r = roundtrip(&m);
        assert_eq!(r.next_id(), m.next_id());
        assert_eq!(r.class_epoch(), 0);
        assert_eq!(r.store.len(), 0);
        assert_eq!(r.class_count(), 0);
        assert_eq!(r.globals_iter().count(), m.globals_iter().count());
    }

    #[test]
    fn restored_builtins_are_callable() {
        let m = Machine::new();
        let mut r = roundtrip(&m);
        let e = Expr::app(
            Expr::app(Expr::Var(Label::new("add")), Expr::Lit(Lit::Int(2))),
            Expr::Lit(Lit::Int(40)),
        );
        let v = r.eval(&e).expect("add applies");
        assert!(matches!(v, Value::Int(42)));
    }

    #[test]
    fn shared_record_identity_survives() {
        let mut m = Machine::new();
        let slot = m.store.alloc(Value::Int(1));
        let id = m.fresh_id();
        let rec = Rc::new(RecordVal {
            id,
            layout: Rc::new(Layout::new([(Label::new("A"), true)])),
            slots: vec![slot],
        });
        m.define_global("x", Value::Record(rec.clone()));
        m.define_global("y", Value::Record(rec));
        let r = roundtrip(&m);
        let x = r.global(&Label::new("x")).unwrap().as_record().unwrap();
        let y = r.global(&Label::new("y")).unwrap().as_record().unwrap();
        assert!(Rc::ptr_eq(x, y), "shared record decoded as one allocation");
        assert_eq!(x.id, id);
        // Slot-level sharing: both see the same store cell.
        let mut r = roundtrip(&m);
        r.store.set(slot, Value::Int(99));
        let x = r.global(&Label::new("x")).unwrap().as_record().unwrap();
        assert!(matches!(r.store.get(x.slots[0]), Value::Int(99)));
    }

    #[test]
    fn distinct_records_stay_distinct() {
        let mut m = Machine::new();
        let layout = Rc::new(Layout::new([(Label::new("A"), true)]));
        let s1 = m.store.alloc(Value::Int(1));
        let s2 = m.store.alloc(Value::Int(1));
        let id1 = m.fresh_id();
        let id2 = m.fresh_id();
        m.define_global(
            "x",
            Value::Record(Rc::new(RecordVal {
                id: id1,
                layout: layout.clone(),
                slots: vec![s1],
            })),
        );
        m.define_global(
            "y",
            Value::Record(Rc::new(RecordVal {
                id: id2,
                layout,
                slots: vec![s2],
            })),
        );
        let r = roundtrip(&m);
        let x = r.global(&Label::new("x")).unwrap().as_record().unwrap();
        let y = r.global(&Label::new("y")).unwrap().as_record().unwrap();
        assert!(!Rc::ptr_eq(x, y));
        assert_ne!(x.id, y.id);
        // The shared *layout* still decodes to one allocation.
        assert!(Rc::ptr_eq(&x.layout, &y.layout));
    }

    #[test]
    fn closure_env_and_body_sharing_survives() {
        let mut m = Machine::new();
        let env = Env::empty().bind(Label::new("n"), Value::Int(7));
        let body = Rc::new(Expr::Var(Label::new("n")));
        let c1 = Closure {
            id: m.fresh_id(),
            fix_name: None,
            param: Label::new("x"),
            body: body.clone(),
            env: env.clone(),
        };
        let c2 = Closure {
            id: m.fresh_id(),
            fix_name: None,
            param: Label::new("y"),
            body,
            env,
        };
        m.define_global("f", Value::Closure(Rc::new(c1)));
        m.define_global("g", Value::Closure(Rc::new(c2)));
        let mut r = roundtrip(&m);
        let (f, g) = match (
            r.global(&Label::new("f")).unwrap().clone(),
            r.global(&Label::new("g")).unwrap().clone(),
        ) {
            (Value::Closure(f), Value::Closure(g)) => (f, g),
            other => panic!("expected closures, got {other:?}"),
        };
        assert!(Rc::ptr_eq(&f.body, &g.body), "shared body stays shared");
        assert_eq!(f.env.node_ptr(), g.env.node_ptr(), "shared env chain");
        let v = r
            .eval(&Expr::app(Expr::Var(Label::new("f")), Expr::Lit(Lit::Unit)))
            .expect("captured binding applies");
        assert!(matches!(v, Value::Int(7)));
    }

    #[test]
    fn sets_and_objects_roundtrip() {
        let mut m = Machine::new();
        let slot = m.store.alloc(Value::str("ann"));
        let raw_id = m.fresh_id();
        let raw = Value::Record(Rc::new(RecordVal {
            id: raw_id,
            layout: Rc::new(Layout::new([(Label::new("Name"), true)])),
            slots: vec![slot],
        }));
        let o1 = Value::Obj(Rc::new(ObjVal {
            id: m.fresh_id(),
            raw: raw.clone(),
            view: ViewFn::Identity,
        }));
        let o2 = Value::Obj(Rc::new(ObjVal {
            id: m.fresh_id(),
            raw,
            view: ViewFn::Identity,
        }));
        let set = Value::Set(SetVal::from_elems([o1, o2]));
        m.define_global("s", set.clone());
        let r = roundtrip(&m);
        let got = r.global(&Label::new("s")).unwrap();
        // objeq identifies the two objects (same raw id): one element in,
        // one element out, and the rendering agrees.
        assert_eq!(got.as_set().unwrap().len(), set.as_set().unwrap().len());
        assert_eq!(r.show(got), m.show(&set));
        // The raw record behind the surviving object is the same
        // allocation graph: its id survived.
        let obj = got.as_set().unwrap().values().next().unwrap();
        assert_eq!(obj.as_obj().unwrap().raw.as_record().unwrap().id, raw_id);
    }

    #[test]
    fn classes_roundtrip() {
        let mut m = Machine::new();
        let own = m.store.alloc(Value::Set(SetVal::empty()));
        m.push_class_for_test(ClassData {
            own_slot: own,
            includes: vec![IncludeSpec {
                sources: vec![0],
                view: Value::Closure(Rc::new(Closure {
                    id: 100,
                    fix_name: None,
                    param: Label::new("x"),
                    body: Rc::new(Expr::Var(Label::new("x"))),
                    env: Env::empty(),
                })),
                pred: Value::Bool(true),
            }],
        });
        // Keep next_id above the closure id minted by hand.
        while m.next_id() <= 100 {
            m.fresh_id();
        }
        let r = roundtrip(&m);
        assert_eq!(r.class_count(), 1);
        let cd = r.class_data(0);
        assert_eq!(cd.own_slot, own);
        assert_eq!(cd.includes.len(), 1);
        assert_eq!(cd.includes[0].sources, vec![0]);
    }

    #[test]
    fn corrupt_input_is_loud() {
        assert!(decode_machine(b"garbage").is_err());
        assert!(decode_machine(b"").is_err());
        let good = encode_machine(&Machine::new());
        assert!(
            decode_machine(&good[..good.len() - 1]).is_err(),
            "truncated"
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_machine(&trailing).is_err(), "trailing bytes");
        let mut wrong_version = good;
        wrong_version[4] = 0xFF;
        assert!(decode_machine(&wrong_version).is_err(), "version skew");
    }
}

//! The attribution profiler (DESIGN.md §14): where inside a statement the
//! evaluation time went, keyed by eval node kind × source span.
//!
//! The profiler is opt-in per [`crate::Machine`]
//! ([`Machine::profile_start`](crate::Machine::profile_start)); while it is
//! off the evaluator pays exactly one flag check per node and performs
//! **zero clock reads** — the property the `ManualClock` read-counter
//! tests pin. While on, every `eval_in` dispatch opens a frame: two clock
//! reads bracket the node, a per-frame child-time accumulator splits
//! total time into self time, and three attribution channels hang off the
//! current frame:
//!
//! * **env-lookup depth** — how many environment links a `Var` node
//!   walked (a miss walks the whole chain before falling back to the
//!   globals map);
//! * **dynamic-fallback sites** — which nodes executed a field operation
//!   through the counted dynamic-label path (the residue the lowering
//!   left behind), label by label;
//! * **extent scans / view recomputes** — per class: cache hits, full
//!   recomputes, rows produced, and the store epoch whose bump invalidated
//!   the previously cached extent.
//!
//! The AST carries no positional spans (lexer positions die at the
//! parser), so a node's "span" is a truncated rendering of the node
//! itself ([`span_of`]), cached per node address. Tree identity during
//! one evaluation is (parent frame, node address): re-entering the same
//! node under the same parent — a loop body, a closure called twice —
//! accumulates into one tree node, while recursion grows a genuine call
//! chain, capped at [`MAX_DEPTH`] frames (deeper work is folded into the
//! deepest profiled frame's self time and counted in
//! [`Profile::truncated_frames`]).

use polyview_obs::Clock;
use polyview_syntax::Expr;
use std::collections::HashMap;
use std::rc::Rc;

/// Character cap on a rendered node span (whole node renderings can be
/// arbitrarily large; the profile only needs enough to recognize the
/// site).
pub const SPAN_MAX: usize = 48;

/// Frame-stack depth cap. Frames past the cap are not timed — their cost
/// lands in the deepest profiled ancestor's self time — so deep `fix`
/// recursions cannot grow the profile tree without bound.
pub const MAX_DEPTH: usize = 128;

/// One node of the hierarchical profile tree: an eval node kind × source
/// span, with timing, hit, and env-lookup attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// Eval dispatch kind (`"app"`, `"var"`, `"cquery"`, `"dot@"`, …).
    pub kind: &'static str,
    /// Truncated source rendering of the node ([`span_of`]).
    pub span: String,
    /// Times this node was entered under this tree position.
    pub hits: u64,
    /// Wall time spent in this node including children, in ns.
    pub total_ns: u64,
    /// Wall time spent in this node excluding children, in ns. Invariant:
    /// `total_ns == self_ns + Σ children.total_ns` at every node.
    pub self_ns: u64,
    /// Environment links walked by `var` lookups at this node, summed over
    /// hits (a global/builtin hit walks the entire local chain first).
    pub env_hops: u64,
    /// Largest single env-lookup walk observed at this node.
    pub env_hops_max: u64,
    pub children: Vec<ProfileNode>,
}

/// One dynamic-fallback call site: a profile-tree position that executed a
/// field operation through the dynamic-label path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FallbackSite {
    /// Kind of the node the fallback executed under.
    pub kind: &'static str,
    /// Span of that node.
    pub span: String,
    /// The field label looked up dynamically (`"[record]"` for un-lowered
    /// record constructions, which recompute a whole layout).
    pub label: String,
    pub count: u64,
}

/// Per-class extent-scan / view-recompute attribution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ViewRecompute {
    /// The class id (the engine resolves it to a bound name for reports).
    pub class: usize,
    /// Full extent recomputations (cache misses, or every scan when the
    /// extent cache is off).
    pub recomputes: u64,
    /// Extent-cache hits served without recomputation.
    pub cache_hits: u64,
    /// Rows (objects) produced across all recomputes.
    pub rows_scanned: u64,
    /// The store epoch current at the last recompute — i.e. the epoch
    /// whose bump invalidated the previously cached extent.
    pub invalidating_epoch: u64,
}

/// A finished evaluation profile: the tree plus the attribution channels.
/// Plain owned data (`Send`), so pool workers can merge and ship it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    pub roots: Vec<ProfileNode>,
    pub fallback_sites: Vec<FallbackSite>,
    pub view_recomputes: Vec<ViewRecompute>,
    /// Frames skipped past [`MAX_DEPTH`]; their time is folded into the
    /// deepest profiled ancestor's self time.
    pub truncated_frames: u64,
}

/// A flattened hot-row: one (kind, span) aggregated across every tree
/// position it appears at.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HotNode {
    pub kind: &'static str,
    pub span: String,
    pub hits: u64,
    pub total_ns: u64,
    pub self_ns: u64,
}

impl Profile {
    /// Total evaluation time covered by the profile (sum of root totals).
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|n| n.total_ns).sum()
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> u64 {
        fn walk(n: &ProfileNode) -> u64 {
            1 + n.children.iter().map(walk).sum::<u64>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// Aggregate the tree by (kind, span) and sort hottest-first (self
    /// time, then total, then kind/span — a total order, so the table is
    /// deterministic under a deterministic clock).
    pub fn hot_nodes(&self) -> Vec<HotNode> {
        let mut agg: Vec<HotNode> = Vec::new();
        let mut index: HashMap<(&'static str, &str), usize> = HashMap::new();
        fn walk<'p>(
            n: &'p ProfileNode,
            agg: &mut Vec<HotNode>,
            index: &mut HashMap<(&'static str, &'p str), usize>,
        ) {
            let at = match index.get(&(n.kind, n.span.as_str())) {
                Some(&i) => i,
                None => {
                    agg.push(HotNode {
                        kind: n.kind,
                        span: n.span.clone(),
                        ..HotNode::default()
                    });
                    index.insert((n.kind, n.span.as_str()), agg.len() - 1);
                    agg.len() - 1
                }
            };
            agg[at].hits += n.hits;
            agg[at].total_ns += n.total_ns;
            agg[at].self_ns += n.self_ns;
            for c in &n.children {
                walk(c, agg, index);
            }
        }
        for r in &self.roots {
            walk(r, &mut agg, &mut index);
        }
        agg.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then(b.total_ns.cmp(&a.total_ns))
                .then(a.kind.cmp(b.kind))
                .then(a.span.cmp(&b.span))
        });
        agg
    }

    /// Render the tree as folded stacks — the `inferno` / `flamegraph.pl`
    /// input format: one line per stack, frames `;`-separated, the sample
    /// weight (self time in ns) after the final space. Frames are
    /// `kind:span` with `;` sanitized out of the span.
    pub fn folded(&self) -> String {
        fn frame(n: &ProfileNode) -> String {
            let mut s = String::with_capacity(n.kind.len() + n.span.len() + 1);
            s.push_str(n.kind);
            s.push(':');
            for c in n.span.chars() {
                s.push(if c == ';' { ',' } else { c });
            }
            s
        }
        fn walk(n: &ProfileNode, stack: &mut Vec<String>, out: &mut String) {
            stack.push(frame(n));
            if n.self_ns > 0 {
                out.push_str(&stack.join(";"));
                out.push(' ');
                out.push_str(&n.self_ns.to_string());
                out.push('\n');
            }
            for c in &n.children {
                walk(c, stack, out);
            }
            stack.pop();
        }
        let mut out = String::new();
        let mut stack = Vec::new();
        for r in &self.roots {
            walk(r, &mut stack, &mut out);
        }
        out
    }

    /// Merge another profile into this one: trees are merged structurally
    /// by (kind, span) path, fallback sites by (kind, span, label), and
    /// view recomputes by class (keeping the latest invalidating epoch).
    /// This is what a pool worker's sampled continuous profile is built
    /// from.
    pub fn absorb(&mut self, other: &Profile) {
        fn merge_into(dst: &mut Vec<ProfileNode>, src: &[ProfileNode]) {
            for s in src {
                match dst
                    .iter_mut()
                    .find(|d| d.kind == s.kind && d.span == s.span)
                {
                    Some(d) => {
                        d.hits += s.hits;
                        d.total_ns += s.total_ns;
                        d.self_ns += s.self_ns;
                        d.env_hops += s.env_hops;
                        d.env_hops_max = d.env_hops_max.max(s.env_hops_max);
                        merge_into(&mut d.children, &s.children);
                    }
                    None => dst.push(s.clone()),
                }
            }
        }
        merge_into(&mut self.roots, &other.roots);
        for s in &other.fallback_sites {
            match self
                .fallback_sites
                .iter_mut()
                .find(|d| d.kind == s.kind && d.span == s.span && d.label == s.label)
            {
                Some(d) => d.count += s.count,
                None => self.fallback_sites.push(s.clone()),
            }
        }
        for s in &other.view_recomputes {
            match self.view_recomputes.iter_mut().find(|d| d.class == s.class) {
                Some(d) => {
                    d.recomputes += s.recomputes;
                    d.cache_hits += s.cache_hits;
                    d.rows_scanned += s.rows_scanned;
                    d.invalidating_epoch = d.invalidating_epoch.max(s.invalidating_epoch);
                }
                None => self.view_recomputes.push(s.clone()),
            }
        }
        self.truncated_frames += other.truncated_frames;
    }
}

/// The eval dispatch kind of an expression node.
pub fn kind_of(e: &Expr) -> &'static str {
    match e {
        Expr::Lit(_) => "lit",
        Expr::Var(_) => "var",
        Expr::Eq(..) => "eq",
        Expr::Lam(..) => "lam",
        Expr::App(..) => "app",
        Expr::Record(_) => "record",
        Expr::Dot(..) => "dot",
        Expr::Extract(..) => "extract",
        Expr::Update(..) => "update",
        Expr::SetLit(_) => "set",
        Expr::Union(..) => "union",
        Expr::Hom(..) => "hom",
        Expr::Fix(..) => "fix",
        Expr::Let(..) => "let",
        Expr::If(..) => "if",
        Expr::IdView(_) => "idview",
        Expr::AsView(..) => "asview",
        Expr::Query(..) => "query",
        Expr::Fuse(..) => "fuse",
        Expr::RelObj(_) => "relobj",
        Expr::ClassExpr(_) => "class",
        Expr::CQuery(..) => "cquery",
        Expr::Insert(..) => "insert",
        Expr::Delete(..) => "delete",
        Expr::LetClasses(..) => "letclasses",
        Expr::DotAt(..) => "dot@",
        Expr::ExtractAt(..) => "extract@",
        Expr::UpdateAt(..) => "update@",
        Expr::RecordAt(..) => "record@",
    }
}

/// Render a node's source span: its `Display` form with whitespace runs
/// collapsed, truncated to [`SPAN_MAX`] characters (with `…`).
pub fn span_of(e: &Expr) -> String {
    let full = e.to_string();
    let mut out = String::with_capacity(SPAN_MAX + 4);
    let mut in_space = false;
    let mut chars = 0usize;
    for c in full.chars() {
        if c.is_whitespace() {
            in_space = true;
            continue;
        }
        if in_space && chars > 0 {
            out.push(' ');
            chars += 1;
        }
        in_space = false;
        out.push(c);
        chars += 1;
        if chars >= SPAN_MAX {
            out.push('…');
            break;
        }
    }
    out
}

// ----- the in-flight builder -----

struct BuildNode {
    kind: &'static str,
    span: Rc<str>,
    hits: u64,
    total_ns: u64,
    self_ns: u64,
    env_hops: u64,
    env_hops_max: u64,
    /// Children in first-entered order (deterministic: evaluation order).
    children: Vec<usize>,
    /// Child arena id by child expression address.
    child_index: HashMap<usize, usize>,
}

struct Frame {
    node: usize,
    start_ns: u64,
    /// Total time of already-finished direct children of this frame.
    child_ns: u64,
}

/// The in-flight profile builder attached to a running
/// [`crate::Machine`]. Frames mirror the `eval_in` recursion; `finish`
/// converts the arena into a [`Profile`].
pub(crate) struct Profiler {
    clock: Rc<dyn Clock>,
    nodes: Vec<BuildNode>,
    roots: Vec<usize>,
    root_index: HashMap<usize, usize>,
    stack: Vec<Frame>,
    /// Span rendering cache by node address (a node re-entered at many
    /// tree positions renders once).
    spans: HashMap<usize, Rc<str>>,
    /// Fallback counts keyed by (arena node, label); `usize::MAX` is the
    /// outside-eval sentinel (machine API calls with no frame open).
    fallbacks: Vec<((usize, String), u64)>,
    /// View-recompute rows in first-seen class order.
    views: Vec<ViewRecompute>,
    truncated: u64,
}

impl Profiler {
    pub(crate) fn new(clock: Rc<dyn Clock>) -> Self {
        Profiler {
            clock,
            nodes: Vec::new(),
            roots: Vec::new(),
            root_index: HashMap::new(),
            stack: Vec::new(),
            spans: HashMap::new(),
            fallbacks: Vec::new(),
            views: Vec::new(),
            truncated: 0,
        }
    }

    fn span(&mut self, e: &Expr) -> Rc<str> {
        let addr = e as *const Expr as usize;
        if let Some(s) = self.spans.get(&addr) {
            return Rc::clone(s);
        }
        let s: Rc<str> = Rc::from(span_of(e).as_str());
        self.spans.insert(addr, Rc::clone(&s));
        s
    }

    fn new_node(&mut self, e: &Expr) -> usize {
        let span = self.span(e);
        self.nodes.push(BuildNode {
            kind: kind_of(e),
            span,
            hits: 0,
            total_ns: 0,
            self_ns: 0,
            env_hops: 0,
            env_hops_max: 0,
            children: Vec::new(),
            child_index: HashMap::new(),
        });
        self.nodes.len() - 1
    }

    /// Open a frame for `e`. Returns `false` past the depth cap — the
    /// caller must then skip the matching [`Profiler::exit`], and the
    /// subtree's cost lands in the current frame's self time.
    pub(crate) fn enter(&mut self, e: &Expr) -> bool {
        if self.stack.len() >= MAX_DEPTH {
            self.truncated += 1;
            return false;
        }
        let addr = e as *const Expr as usize;
        let node = match self.stack.last() {
            Some(f) => {
                let parent = f.node;
                match self.nodes[parent].child_index.get(&addr) {
                    Some(&n) => n,
                    None => {
                        let n = self.new_node(e);
                        self.nodes[parent].children.push(n);
                        self.nodes[parent].child_index.insert(addr, n);
                        n
                    }
                }
            }
            None => match self.root_index.get(&addr) {
                Some(&n) => n,
                None => {
                    let n = self.new_node(e);
                    self.roots.push(n);
                    self.root_index.insert(addr, n);
                    n
                }
            },
        };
        self.nodes[node].hits += 1;
        let start_ns = self.clock.now_ns();
        self.stack.push(Frame {
            node,
            start_ns,
            child_ns: 0,
        });
        true
    }

    /// Close the current frame: charge elapsed − child time as self time,
    /// and the full elapsed time to the parent's child accumulator.
    pub(crate) fn exit(&mut self) {
        let end_ns = self.clock.now_ns();
        let f = self.stack.pop().expect("profiler frame underflow");
        let d = end_ns.saturating_sub(f.start_ns);
        let n = &mut self.nodes[f.node];
        n.total_ns += d;
        n.self_ns += d.saturating_sub(f.child_ns);
        if let Some(p) = self.stack.last_mut() {
            p.child_ns += d;
        }
    }

    /// A `var` node walked `hops` environment links.
    pub(crate) fn note_env_lookup(&mut self, hops: u64) {
        if let Some(f) = self.stack.last() {
            let n = &mut self.nodes[f.node];
            n.env_hops += hops;
            n.env_hops_max = n.env_hops_max.max(hops);
        }
    }

    /// A dynamic field fallback executed under the current frame.
    pub(crate) fn note_fallback(&mut self, label: &str) {
        let site = self.stack.last().map_or(usize::MAX, |f| f.node);
        match self
            .fallbacks
            .iter_mut()
            .find(|((n, l), _)| *n == site && l == label)
        {
            Some((_, c)) => *c += 1,
            None => self.fallbacks.push(((site, label.to_string()), 1)),
        }
    }

    /// A top-level extent was served for `class`: from the cache (`hit`)
    /// or recomputed (`rows` produced at store epoch `epoch`).
    pub(crate) fn note_extent(&mut self, class: usize, hit: bool, rows: u64, epoch: u64) {
        let row = match self.views.iter_mut().find(|v| v.class == class) {
            Some(v) => v,
            None => {
                self.views.push(ViewRecompute {
                    class,
                    ..ViewRecompute::default()
                });
                self.views.last_mut().expect("just pushed")
            }
        };
        if hit {
            row.cache_hits += 1;
        } else {
            row.recomputes += 1;
            row.rows_scanned += rows;
            row.invalidating_epoch = epoch;
        }
    }

    /// Convert the arena into an owned [`Profile`]. Any frames still open
    /// (evaluation aborted by an error between enter and exit — the
    /// machine always pairs them, so this is defensive) are closed first.
    pub(crate) fn finish(mut self) -> Profile {
        while !self.stack.is_empty() {
            self.exit();
        }
        fn build(nodes: &[BuildNode], id: usize) -> ProfileNode {
            let n = &nodes[id];
            ProfileNode {
                kind: n.kind,
                span: n.span.to_string(),
                hits: n.hits,
                total_ns: n.total_ns,
                self_ns: n.self_ns,
                env_hops: n.env_hops,
                env_hops_max: n.env_hops_max,
                children: n.children.iter().map(|&c| build(nodes, c)).collect(),
            }
        }
        let roots = self.roots.iter().map(|&r| build(&self.nodes, r)).collect();
        let fallback_sites = self
            .fallbacks
            .iter()
            .map(|((site, label), count)| {
                let (kind, span) = if *site == usize::MAX {
                    ("<machine>", String::new())
                } else {
                    (self.nodes[*site].kind, self.nodes[*site].span.to_string())
                };
                FallbackSite {
                    kind,
                    span,
                    label: label.clone(),
                    count: *count,
                }
            })
            .collect();
        let mut view_recomputes = self.views;
        view_recomputes.sort_by_key(|v| v.class);
        Profile {
            roots,
            fallback_sites,
            view_recomputes,
            truncated_frames: self.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_obs::ManualClock;

    fn leaf(kind: &'static str, span: &str, hits: u64, total: u64, selfn: u64) -> ProfileNode {
        ProfileNode {
            kind,
            span: span.to_string(),
            hits,
            total_ns: total,
            self_ns: selfn,
            ..ProfileNode::default()
        }
    }

    #[test]
    fn frames_split_total_into_self_plus_children() {
        // Shape: outer(inner, inner) under a step-1 clock; every frame
        // costs exactly 1ns of measured time per enter/exit pair... the
        // arithmetic is easiest checked through the invariant.
        let clock = Rc::new(ManualClock::with_step(10));
        let mut p = Profiler::new(clock);
        let outer = Expr::int(1); // any nodes; identity is by address
        let inner = Expr::int(2);
        assert!(p.enter(&outer));
        assert!(p.enter(&inner));
        p.exit();
        assert!(p.enter(&inner));
        p.exit();
        p.exit();
        let prof = p.finish();
        assert_eq!(prof.roots.len(), 1);
        let root = &prof.roots[0];
        assert_eq!(root.hits, 1);
        assert_eq!(root.children.len(), 1, "same child address merges");
        assert_eq!(root.children[0].hits, 2);
        assert_eq!(
            root.total_ns,
            root.self_ns + root.children[0].total_ns,
            "total = self + Σ children"
        );
        assert_eq!(prof.total_ns(), root.total_ns);
        assert_eq!(prof.node_count(), 2);
    }

    #[test]
    fn depth_cap_folds_into_deepest_frame() {
        let clock = Rc::new(ManualClock::with_step(1));
        let mut p = Profiler::new(clock);
        let e = Expr::int(0);
        let mut entered = 0;
        for _ in 0..(MAX_DEPTH + 5) {
            if p.enter(&e) {
                entered += 1;
            }
        }
        assert_eq!(entered, MAX_DEPTH);
        for _ in 0..entered {
            p.exit();
        }
        let prof = p.finish();
        assert_eq!(prof.truncated_frames, 5);
    }

    #[test]
    fn folded_emits_one_line_per_self_bearing_node() {
        let prof = Profile {
            roots: vec![ProfileNode {
                children: vec![leaf("var", "x", 2, 10, 10)],
                ..leaf("app", "f x; y", 1, 30, 20)
            }],
            ..Profile::default()
        };
        assert_eq!(prof.folded(), "app:f x, y 20\napp:f x, y;var:x 10\n");
    }

    #[test]
    fn absorb_merges_by_kind_and_span() {
        let mut a = Profile {
            roots: vec![leaf("app", "f 1", 1, 10, 10)],
            fallback_sites: vec![FallbackSite {
                kind: "dot",
                span: "x.Name".into(),
                label: "Name".into(),
                count: 2,
            }],
            view_recomputes: vec![ViewRecompute {
                class: 0,
                recomputes: 1,
                cache_hits: 0,
                rows_scanned: 8,
                invalidating_epoch: 3,
            }],
            truncated_frames: 1,
        };
        let b = Profile {
            roots: vec![leaf("app", "f 1", 2, 20, 20), leaf("var", "y", 1, 5, 5)],
            fallback_sites: vec![FallbackSite {
                kind: "dot",
                span: "x.Name".into(),
                label: "Name".into(),
                count: 3,
            }],
            view_recomputes: vec![ViewRecompute {
                class: 0,
                recomputes: 2,
                cache_hits: 4,
                rows_scanned: 16,
                invalidating_epoch: 7,
            }],
            truncated_frames: 0,
        };
        a.absorb(&b);
        assert_eq!(a.roots.len(), 2);
        assert_eq!(a.roots[0].hits, 3);
        assert_eq!(a.roots[0].total_ns, 30);
        assert_eq!(a.fallback_sites.len(), 1);
        assert_eq!(a.fallback_sites[0].count, 5);
        assert_eq!(a.view_recomputes[0].recomputes, 3);
        assert_eq!(a.view_recomputes[0].cache_hits, 4);
        assert_eq!(a.view_recomputes[0].rows_scanned, 24);
        assert_eq!(a.view_recomputes[0].invalidating_epoch, 7);
        assert_eq!(a.truncated_frames, 1);
    }

    #[test]
    fn hot_nodes_aggregate_across_tree_positions() {
        let prof = Profile {
            roots: vec![
                ProfileNode {
                    children: vec![leaf("var", "x", 1, 4, 4)],
                    ..leaf("app", "f x", 1, 10, 6)
                },
                ProfileNode {
                    children: vec![leaf("var", "x", 1, 2, 2)],
                    ..leaf("let", "let y = …", 1, 3, 1)
                },
            ],
            ..Profile::default()
        };
        let hot = prof.hot_nodes();
        assert_eq!(hot[0].kind, "app");
        assert_eq!(hot[1].kind, "var");
        assert_eq!(hot[1].hits, 2, "same (kind, span) rows merge");
        assert_eq!(hot[1].total_ns, 6);
        assert_eq!(hot[1].self_ns, 6);
    }

    #[test]
    fn span_of_collapses_whitespace_and_truncates() {
        let e = Expr::str("abcdefghijklmnopqrstuvwxyz abcdefghijklmnopqrstuvwxyz");
        let s = span_of(&e);
        assert!(s.chars().count() <= SPAN_MAX + 1, "got {} {s:?}", s.len());
        assert!(s.ends_with('…'), "got {s:?}");
        assert!(!s.contains("  "));
    }
}

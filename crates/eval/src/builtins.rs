//! Native implementations of the builtin primitives, matching the
//! signatures in `polyview_types::builtins_sig` name for name.

use crate::error::RuntimeError;
use crate::value::Value;

/// Native implementation signature of a builtin.
pub type NativeFn = fn(&[Value]) -> Result<Value, RuntimeError>;

/// `(name, arity, implementation)` for every builtin.
pub fn natives() -> Vec<(&'static str, usize, NativeFn)> {
    vec![
        ("add", 2, |a| {
            Ok(Value::Int(a[0].as_int()?.wrapping_add(a[1].as_int()?)))
        }),
        ("sub", 2, |a| {
            Ok(Value::Int(a[0].as_int()?.wrapping_sub(a[1].as_int()?)))
        }),
        ("mul", 2, |a| {
            Ok(Value::Int(a[0].as_int()?.wrapping_mul(a[1].as_int()?)))
        }),
        ("div", 2, |a| {
            let d = a[1].as_int()?;
            if d == 0 {
                Err(RuntimeError::DivisionByZero)
            } else {
                Ok(Value::Int(a[0].as_int()?.wrapping_div(d)))
            }
        }),
        ("imod", 2, |a| {
            let d = a[1].as_int()?;
            if d == 0 {
                Err(RuntimeError::DivisionByZero)
            } else {
                Ok(Value::Int(a[0].as_int()?.wrapping_rem(d)))
            }
        }),
        ("neg", 1, |a| Ok(Value::Int(a[0].as_int()?.wrapping_neg()))),
        ("lt", 2, |a| {
            Ok(Value::Bool(a[0].as_int()? < a[1].as_int()?))
        }),
        ("le", 2, |a| {
            Ok(Value::Bool(a[0].as_int()? <= a[1].as_int()?))
        }),
        ("gt", 2, |a| {
            Ok(Value::Bool(a[0].as_int()? > a[1].as_int()?))
        }),
        ("ge", 2, |a| {
            Ok(Value::Bool(a[0].as_int()? >= a[1].as_int()?))
        }),
        ("min", 2, |a| {
            Ok(Value::Int(a[0].as_int()?.min(a[1].as_int()?)))
        }),
        ("max", 2, |a| {
            Ok(Value::Int(a[0].as_int()?.max(a[1].as_int()?)))
        }),
        ("abs", 1, |a| Ok(Value::Int(a[0].as_int()?.wrapping_abs()))),
        ("not", 1, |a| Ok(Value::Bool(!a[0].as_bool()?))),
        ("concat", 2, |a| match (&a[0], &a[1]) {
            (Value::Str(x), Value::Str(y)) => Ok(Value::str(format!("{x}{y}"))),
            _ => Err(RuntimeError::BuiltinType { builtin: "concat" }),
        }),
        ("strlen", 1, |a| match &a[0] {
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            _ => Err(RuntimeError::BuiltinType { builtin: "strlen" }),
        }),
        ("int_to_string", 1, |a| {
            Ok(Value::str(a[0].as_int()?.to_string()))
        }),
        // Fixed so the paper's Age example (1994 − 1955 = 39) reproduces.
        ("this_year", 1, |_| Ok(Value::Int(1994))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Result<Value, RuntimeError> {
        let (_, arity, f) = natives()
            .into_iter()
            .find(|(n, _, _)| *n == name)
            .expect("builtin exists");
        assert_eq!(arity, args.len());
        f(args)
    }

    #[test]
    fn arithmetic() {
        assert!(matches!(
            call("add", &[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(5))
        ));
        assert!(matches!(
            call("sub", &[Value::Int(2), Value::Int(3)]),
            Ok(Value::Int(-1))
        ));
        assert!(matches!(
            call("mul", &[Value::Int(4), Value::Int(3)]),
            Ok(Value::Int(12))
        ));
        assert!(matches!(
            call("div", &[Value::Int(7), Value::Int(2)]),
            Ok(Value::Int(3))
        ));
        assert!(matches!(
            call("imod", &[Value::Int(7), Value::Int(2)]),
            Ok(Value::Int(1))
        ));
        assert!(matches!(call("neg", &[Value::Int(5)]), Ok(Value::Int(-5))));
        assert!(matches!(call("abs", &[Value::Int(-5)]), Ok(Value::Int(5))));
    }

    #[test]
    fn division_by_zero() {
        assert!(matches!(
            call("div", &[Value::Int(1), Value::Int(0)]),
            Err(RuntimeError::DivisionByZero)
        ));
        assert!(matches!(
            call("imod", &[Value::Int(1), Value::Int(0)]),
            Err(RuntimeError::DivisionByZero)
        ));
    }

    #[test]
    fn comparisons() {
        assert!(matches!(
            call("lt", &[Value::Int(1), Value::Int(2)]),
            Ok(Value::Bool(true))
        ));
        assert!(matches!(
            call("ge", &[Value::Int(2), Value::Int(2)]),
            Ok(Value::Bool(true))
        ));
        assert!(matches!(
            call("gt", &[Value::Int(1), Value::Int(2)]),
            Ok(Value::Bool(false))
        ));
    }

    #[test]
    fn strings() {
        assert!(
            matches!(call("concat", &[Value::str("ab"), Value::str("cd")]), Ok(Value::Str(s)) if &*s == "abcd")
        );
        assert!(matches!(
            call("strlen", &[Value::str("héllo")]),
            Ok(Value::Int(5))
        ));
        assert!(
            matches!(call("int_to_string", &[Value::Int(42)]), Ok(Value::Str(s)) if &*s == "42")
        );
    }

    #[test]
    fn builtin_type_errors_are_type_errors() {
        let e = call("add", &[Value::Bool(true), Value::Int(1)]).unwrap_err();
        assert!(e.is_type_error());
    }

    #[test]
    fn names_match_type_signatures() {
        let sigs: std::collections::BTreeSet<&str> = polyview_types::builtins_sig::signatures()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let impls: std::collections::BTreeSet<&str> =
            natives().into_iter().map(|(n, _, _)| n).collect();
        assert_eq!(sigs, impls, "builtins_sig and natives must agree");
    }

    #[test]
    fn arities_match_type_signatures() {
        use polyview_syntax::Mono;
        let sigs: std::collections::HashMap<&str, Mono> =
            polyview_types::builtins_sig::signatures()
                .into_iter()
                .collect();
        for (name, arity, _) in natives() {
            let mut t = sigs[name].clone();
            let mut n = 0;
            while let Mono::Arrow(_, r) = t {
                n += 1;
                t = *r;
            }
            assert_eq!(n, arity, "arity mismatch for {name}");
        }
    }
}

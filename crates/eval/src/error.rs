//! Runtime errors.
//!
//! Errors in the [`RuntimeError::is_type_error`] class are exactly the
//! "wrong" outcomes of Milner's slogan: a sound type system guarantees
//! well-typed programs never produce them (Prop. 1). The remaining variants
//! (division by zero, fuel exhaustion) are legitimate partial-operation
//! failures that no ML-style type system rules out.

use polyview_syntax::{Label, Name};
use std::fmt;

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// Variable not bound at runtime.
    Unbound(Name),
    /// Applied a non-function.
    NotAFunction(&'static str),
    /// Projected a field from a non-record.
    NotARecord(&'static str),
    /// Field absent from a record.
    NoSuchField(Label),
    /// `update`/`extract` on an immutable field.
    ImmutableField(Label),
    /// Set operation on a non-set.
    NotASet(&'static str),
    /// Condition of `if` (or a predicate) was not a boolean.
    NotABool(&'static str),
    /// Object operation on a non-object.
    NotAnObject(&'static str),
    /// Arithmetic on a non-integer.
    NotAnInt(&'static str),
    /// Class operation on a non-class.
    NotAClass(&'static str),
    /// `fix x. e` where `e` is not a lambda abstraction.
    FixNonFunction,
    /// Integer division or modulus by zero.
    DivisionByZero,
    /// The configured evaluation fuel ran out (used to bound property
    /// tests over programs containing `fix`).
    FuelExhausted,
    /// A builtin received a value of an unexpected shape.
    BuiltinType { builtin: &'static str },
}

impl RuntimeError {
    /// True for errors that constitute "going wrong" in the type-soundness
    /// sense — a well-typed program must never raise these (Prop. 1).
    pub fn is_type_error(&self) -> bool {
        !matches!(
            self,
            RuntimeError::DivisionByZero | RuntimeError::FuelExhausted
        )
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Unbound(x) => write!(f, "unbound variable `{x}` at runtime"),
            RuntimeError::NotAFunction(what) => write!(f, "applied non-function ({what})"),
            RuntimeError::NotARecord(what) => write!(f, "expected a record, got {what}"),
            RuntimeError::NoSuchField(l) => write!(f, "record has no field `{l}`"),
            RuntimeError::ImmutableField(l) => {
                write!(f, "field `{l}` is immutable")
            }
            RuntimeError::NotASet(what) => write!(f, "expected a set, got {what}"),
            RuntimeError::NotABool(what) => write!(f, "expected a boolean, got {what}"),
            RuntimeError::NotAnObject(what) => write!(f, "expected an object, got {what}"),
            RuntimeError::NotAnInt(what) => write!(f, "expected an integer, got {what}"),
            RuntimeError::NotAClass(what) => write!(f, "expected a class, got {what}"),
            RuntimeError::FixNonFunction => write!(f, "fix applied to a non-function body"),
            RuntimeError::DivisionByZero => write!(f, "integer division by zero"),
            RuntimeError::FuelExhausted => write!(f, "evaluation fuel exhausted"),
            RuntimeError::BuiltinType { builtin } => {
                write!(f, "builtin `{builtin}` received a value of the wrong shape")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_error_classification() {
        assert!(RuntimeError::NotAFunction("int").is_type_error());
        assert!(RuntimeError::NoSuchField(Label::new("x")).is_type_error());
        assert!(!RuntimeError::DivisionByZero.is_type_error());
        assert!(!RuntimeError::FuelExhausted.is_type_error());
    }
}

//! The slot store: every record field value lives in a slot, and `extract`
//! shares slots between records (the paper's L-values).

use crate::value::{SlotId, Value};

#[derive(Debug, Default)]
pub struct Store {
    slots: Vec<Value>,
}

impl Store {
    pub fn new() -> Self {
        Store::default()
    }

    pub fn alloc(&mut self, v: Value) -> SlotId {
        self.slots.push(v);
        self.slots.len() - 1
    }

    pub fn get(&self, slot: SlotId) -> &Value {
        &self.slots[slot]
    }

    pub fn set(&mut self, slot: SlotId, v: Value) {
        self.slots[slot] = v;
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_set() {
        let mut st = Store::new();
        let a = st.alloc(Value::Int(1));
        let b = st.alloc(Value::Int(2));
        assert_ne!(a, b);
        assert!(matches!(st.get(a), Value::Int(1)));
        st.set(a, Value::Int(10));
        assert!(matches!(st.get(a), Value::Int(10)));
        assert!(matches!(st.get(b), Value::Int(2)));
    }
}

//! Runtime values.
//!
//! * Records carry an identity (`RecordId`) and a vector of field *slots*
//!   into the store — `extract` shares slots between records, which is how
//!   the paper's Doe/john aliasing example works.
//! * Objects are `(raw, viewing function)` associations with their own
//!   identity; `eq` on objects is association identity, while *sets* of
//!   objects identify elements up to `objeq` (same raw object), the
//!   semantics chosen in Section 3.1.
//! * Sets are canonical ordered maps from dedup keys to representative
//!   elements; union is left-biased on key collision.

use crate::env::Env;
use crate::error::RuntimeError;
use polyview_syntax::{Expr, Label, Layout, Name};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Index of an L-value slot in the store.
pub type SlotId = usize;

/// Identity of a record (the paper's L-value identity for records).
pub type RecordId = u64;

/// Index of a class in the machine's class table.
pub type ClassId = usize;

/// A record value, laid out flat: `slots[i]` holds the field whose label
/// is `layout.label_at(i)`, i.e. slot order *is* canonical label order —
/// the offset contract the compile tier's lowered `dot@i`/`update@i`
/// forms rely on. Mutability lives in the shared [`Layout`]; records
/// built from the same lowered construction site share one layout
/// allocation.
#[derive(Debug)]
pub struct RecordVal {
    pub id: RecordId,
    pub layout: Rc<Layout>,
    pub slots: Vec<SlotId>,
}

impl RecordVal {
    /// The offset of `l` in this record's layout.
    pub fn offset_of(&self, l: &Label) -> Option<usize> {
        self.layout.offset_of(l)
    }

    /// `(label, mutable, slot)` triples in slot (canonical label) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, bool, SlotId)> + '_ {
        self.layout
            .iter()
            .zip(self.slots.iter().copied())
            .map(|((l, m), s)| (l, m, s))
    }
}

/// A user function: one parameter, a body, and the captured environment.
/// `fix_name`, when present, re-binds the closure itself on application
/// (this is how `fix x.λy.e` ties the knot without reference cycles).
/// The body is shared with the source AST (`Expr::Lam` stores `Rc<Expr>`),
/// so creating a closure never deep-clones the function body — important
/// on the prepared-statement path, where one cached AST is evaluated many
/// times.
#[derive(Debug)]
pub struct Closure {
    pub id: u64,
    pub fix_name: Option<Name>,
    pub param: Name,
    pub body: Rc<Expr>,
    pub env: Env,
}

/// A builtin primitive, possibly partially applied.
#[derive(Clone)]
pub struct Builtin {
    pub id: u64,
    pub name: &'static str,
    pub arity: usize,
    pub args: Vec<Value>,
    pub f: fn(&[Value]) -> Result<Value, RuntimeError>,
}

impl std::fmt::Debug for Builtin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Builtin({}/{}, {} applied)",
            self.name,
            self.arity,
            self.args.len()
        )
    }
}

/// A viewing function attached to a raw object. Structured so the common
/// constructions of the algebra need no synthesized closures.
#[derive(Clone, Debug)]
pub enum ViewFn {
    /// `IDView`: present the raw object unchanged.
    Identity,
    /// A user-supplied function value.
    Fn(Value),
    /// `(e1 as e2)`: apply `inner` (e1's view) then `outer` (e2).
    Compose(Rc<ViewFn>, Rc<ViewFn>),
    /// `fuse`: present the n-tuple `[1 = v1(x), …, n = vn(x)]`.
    Tuple(Vec<Rc<ViewFn>>),
    /// `relobj`: present `[l1 = v1(x·l1), …, ln = vn(x·ln)]`.
    RelFields(Vec<(Label, Rc<ViewFn>)>),
}

/// An object: a raw object, a viewing function, and the association's own
/// identity (used by `eq`; `objeq` compares the raw identities).
#[derive(Debug)]
pub struct ObjVal {
    pub id: u64,
    pub raw: Value,
    pub view: ViewFn,
}

/// A set value: canonical map from element keys to representatives.
pub type SetMap = BTreeMap<Key, Value>;

/// Shared, immutable set representation.
#[derive(Clone, Debug)]
pub struct SetVal(pub Rc<SetMap>);

impl SetVal {
    pub fn empty() -> Self {
        SetVal(Rc::new(BTreeMap::new()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.values()
    }

    /// Build from elements left to right, keeping the *first* occurrence of
    /// each key (consistent with left-biased union).
    pub fn from_elems(elems: impl IntoIterator<Item = Value>) -> Self {
        let mut m = SetMap::new();
        for v in elems {
            let k = v.key();
            m.entry(k).or_insert(v);
        }
        SetVal(Rc::new(m))
    }

    /// Left-biased union: on key collision the element of `self` is kept
    /// and the one from `other` discarded (Section 3.1's chosen
    /// alternative).
    pub fn union_left(&self, other: &SetVal) -> SetVal {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        let mut m = (*self.0).clone();
        for (k, v) in other.0.iter() {
            m.entry(k.clone()).or_insert_with(|| v.clone());
        }
        SetVal(Rc::new(m))
    }

    /// Remove every element whose key occurs in `other`.
    pub fn difference(&self, other: &SetVal) -> SetVal {
        let mut m = (*self.0).clone();
        for k in other.0.keys() {
            m.remove(k);
        }
        SetVal(Rc::new(m))
    }

    pub fn contains_key(&self, k: &Key) -> bool {
        self.0.contains_key(k)
    }
}

/// Runtime values.
#[derive(Clone, Debug)]
pub enum Value {
    Unit,
    Int(i64),
    Bool(bool),
    Str(Rc<str>),
    Record(Rc<RecordVal>),
    Set(SetVal),
    Closure(Rc<Closure>),
    Builtin(Rc<Builtin>),
    /// The result of `extract`: a first-class slot reference, consumable
    /// only as a record field value.
    LValue(SlotId),
    Obj(Rc<ObjVal>),
    Class(ClassId),
}

/// Canonical identity/equality key of a value; used for set membership and
/// for `eq`.
///
/// Records and functions key by identity (L-value equality), objects key by
/// their *raw object's* identity (`objeq` — the set-formation equality the
/// paper chooses), base values key structurally, and sets key by their
/// element keys.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Key {
    Unit,
    Int(i64),
    Bool(bool),
    Str(String),
    Record(RecordId),
    Fn(u64),
    LValue(SlotId),
    Obj(RecordId),
    Class(ClassId),
    Set(Vec<Key>),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// A one-word description of the value's shape, for error messages.
    pub fn shape(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Int(_) => "int",
            Value::Bool(_) => "bool",
            Value::Str(_) => "string",
            Value::Record(_) => "record",
            Value::Set(_) => "set",
            Value::Closure(_) | Value::Builtin(_) => "function",
            Value::LValue(_) => "L-value",
            Value::Obj(_) => "object",
            Value::Class(_) => "class",
        }
    }

    /// The dedup/equality key of this value.
    pub fn key(&self) -> Key {
        match self {
            Value::Unit => Key::Unit,
            Value::Int(n) => Key::Int(*n),
            Value::Bool(b) => Key::Bool(*b),
            Value::Str(s) => Key::Str(s.to_string()),
            Value::Record(r) => Key::Record(r.id),
            Value::Set(s) => Key::Set(s.0.keys().cloned().collect()),
            Value::Closure(c) => Key::Fn(c.id),
            Value::Builtin(b) => Key::Fn(b.id),
            Value::LValue(s) => Key::LValue(*s),
            Value::Obj(o) => match &o.raw {
                Value::Record(r) => Key::Obj(r.id),
                // Raw objects are records by construction; fall back to the
                // association id for robustness.
                _ => Key::Obj(o.id),
            },
            Value::Class(c) => Key::Class(*c),
        }
    }

    /// The paper's `eq`: L-value equality on records and functions, `objeq`
    /// is *not* used here — two objects are `eq` only if they are the same
    /// association (same raw *and* the identical view construction event).
    pub fn value_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Obj(a), Value::Obj(b)) => a.id == b.id,
            _ => self.key() == other.key(),
        }
    }

    pub fn as_bool(&self) -> Result<bool, RuntimeError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(RuntimeError::NotABool(other.shape())),
        }
    }

    pub fn as_int(&self) -> Result<i64, RuntimeError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(RuntimeError::NotAnInt(other.shape())),
        }
    }

    pub fn as_set(&self) -> Result<&SetVal, RuntimeError> {
        match self {
            Value::Set(s) => Ok(s),
            other => Err(RuntimeError::NotASet(other.shape())),
        }
    }

    pub fn as_record(&self) -> Result<&Rc<RecordVal>, RuntimeError> {
        match self {
            Value::Record(r) => Ok(r),
            other => Err(RuntimeError::NotARecord(other.shape())),
        }
    }

    pub fn as_obj(&self) -> Result<&Rc<ObjVal>, RuntimeError> {
        match self {
            Value::Obj(o) => Ok(o),
            other => Err(RuntimeError::NotAnObject(other.shape())),
        }
    }

    pub fn as_class(&self) -> Result<ClassId, RuntimeError> {
        match self {
            Value::Class(c) => Ok(*c),
            other => Err(RuntimeError::NotAClass(other.shape())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: RecordId) -> Value {
        Value::Record(Rc::new(RecordVal {
            id,
            layout: Rc::new(Layout::new([])),
            slots: Vec::new(),
        }))
    }

    fn obj(id: u64, raw: Value) -> Value {
        Value::Obj(Rc::new(ObjVal {
            id,
            raw,
            view: ViewFn::Identity,
        }))
    }

    #[test]
    fn base_values_compare_structurally() {
        assert!(Value::Int(1).value_eq(&Value::Int(1)));
        assert!(!Value::Int(1).value_eq(&Value::Int(2)));
        assert!(Value::str("a").value_eq(&Value::str("a")));
        assert!(!Value::str("a").value_eq(&Value::Bool(true)));
    }

    #[test]
    fn records_compare_by_identity() {
        assert!(rec(1).value_eq(&rec(1)));
        assert!(!rec(1).value_eq(&rec(2)));
    }

    #[test]
    fn objects_eq_by_association_but_key_by_raw() {
        let o1 = obj(10, rec(1));
        let o2 = obj(11, rec(1));
        // Different associations over the same raw: not `eq`…
        assert!(!o1.value_eq(&o2));
        // …but identified in sets (objeq).
        assert_eq!(o1.key(), o2.key());
    }

    #[test]
    fn set_from_elems_keeps_first() {
        let o1 = obj(10, rec(1));
        let o2 = obj(11, rec(1));
        let s = SetVal::from_elems([o1.clone(), o2]);
        assert_eq!(s.len(), 1);
        let kept = s.values().next().expect("one element");
        assert!(kept.value_eq(&o1));
    }

    #[test]
    fn union_is_left_biased() {
        let o1 = obj(10, rec(1));
        let o2 = obj(11, rec(1));
        let s1 = SetVal::from_elems([o1.clone()]);
        let s2 = SetVal::from_elems([o2.clone()]);
        let u = s1.union_left(&s2);
        assert_eq!(u.len(), 1);
        assert!(u.values().next().expect("elem").value_eq(&o1));
        // Reversed, the other representative survives.
        let u2 = s2.union_left(&s1);
        assert!(u2.values().next().expect("elem").value_eq(&o2));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let s = SetVal::from_elems([Value::Int(1), Value::Int(2)]);
        assert_eq!(s.union_left(&SetVal::empty()).len(), 2);
        assert_eq!(SetVal::empty().union_left(&s).len(), 2);
    }

    #[test]
    fn difference_removes_by_key() {
        let s = SetVal::from_elems([Value::Int(1), Value::Int(2)]);
        let d = s.difference(&SetVal::from_elems([Value::Int(2), Value::Int(3)]));
        assert_eq!(d.len(), 1);
        assert!(d.contains_key(&Key::Int(1)));
    }

    #[test]
    fn sets_compare_by_element_keys() {
        let a = Value::Set(SetVal::from_elems([Value::Int(1), Value::Int(2)]));
        let b = Value::Set(SetVal::from_elems([Value::Int(2), Value::Int(1)]));
        assert!(a.value_eq(&b));
        let c = Value::Set(SetVal::from_elems([Value::Int(3)]));
        assert!(!a.value_eq(&c));
    }

    #[test]
    fn nested_sets_key_structurally() {
        let inner1 = Value::Set(SetVal::from_elems([Value::Int(1)]));
        let inner2 = Value::Set(SetVal::from_elems([Value::Int(1)]));
        let s = SetVal::from_elems([inner1, inner2]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn shapes_for_errors() {
        assert_eq!(Value::Unit.shape(), "unit");
        assert_eq!(rec(1).shape(), "record");
        assert_eq!(Value::Set(SetVal::empty()).shape(), "set");
    }
}

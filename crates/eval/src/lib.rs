//! Operational semantics for the view calculus.
//!
//! The evaluator implements the *meaning* the paper assigns to the extended
//! language: records are identity-carrying bundles of L-value slots
//! (Section 2), objects are associations of a raw object and a viewing
//! function (Section 3), sets of objects identify elements up to `objeq`
//! with left-biased union (Section 3.1), and classes are pairs of a mutable
//! own extent and a lazily evaluated inclusion computation with the
//! visited-set algorithm of Section 4.4 for recursive groups.
//!
//! Objects and classes are interpreted *natively* here; the paper's
//! translation semantics (Figs. 3 and 5) lives in `polyview-trans`, and the
//! two are compared by differential tests.

pub mod builtins;
pub mod env;
pub mod error;
pub mod machine;
pub mod profile;
pub mod snapshot;
pub mod store;
pub mod value;

pub use env::Env;
pub use error::RuntimeError;
pub use machine::{Machine, MachineStats};
pub use profile::{FallbackSite, HotNode, Profile, ProfileNode, ViewRecompute};
pub use snapshot::{decode_machine, encode_machine};
pub use value::{Key, SetVal, Value, ViewFn};

//! Runtime environments: an immutable linked list so closures capture in
//! O(1) and shadowing is structural.

use crate::value::Value;
use polyview_syntax::Name;
use std::rc::Rc;

#[derive(Clone, Debug, Default)]
pub struct Env(Option<Rc<Node>>);

#[derive(Debug)]
struct Node {
    name: Name,
    value: Value,
    next: Env,
}

impl Env {
    pub fn empty() -> Self {
        Env(None)
    }

    /// Extend with a binding, returning the new environment; `self` is
    /// untouched (persistent).
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(Node {
            name,
            value,
            next: self.clone(),
        })))
    }

    pub fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Env(Some(node)) = cur {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The most recent binding and the rest of the chain, or `None` for
    /// the empty environment. The snapshot encoder walks chains with
    /// this; ordinary evaluation goes through [`Env::lookup`].
    pub fn head(&self) -> Option<(&Name, &Value, &Env)> {
        self.0.as_ref().map(|n| (&n.name, &n.value, &n.next))
    }

    /// Address identity of the head node (`None` when empty). Closures
    /// share environment *tails* structurally (`bind` is persistent), and
    /// the snapshot encoder memoizes shared tails by this address so a
    /// chain shared by many closures is serialized once.
    pub fn node_ptr(&self) -> Option<*const ()> {
        self.0.as_ref().map(|n| Rc::as_ptr(n) as *const ())
    }

    /// How many links a lookup of `name` inspects: 1-based position of the
    /// binding, or the full chain length on a miss (a global/builtin hit
    /// walks the entire local chain first). This is the profiler's
    /// env-lookup depth attribution; it does not touch values.
    pub fn lookup_cost(&self, name: &Name) -> u64 {
        let mut cur = self;
        let mut hops = 0u64;
        while let Env(Some(node)) = cur {
            hops += 1;
            if &node.name == name {
                return hops;
            }
            cur = &node.next;
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::Label;

    #[test]
    fn bind_and_lookup() {
        let env = Env::empty().bind(Label::new("x"), Value::Int(1));
        assert!(matches!(env.lookup(&Label::new("x")), Some(Value::Int(1))));
        assert!(env.lookup(&Label::new("y")).is_none());
    }

    #[test]
    fn shadowing_is_lexical() {
        let env = Env::empty()
            .bind(Label::new("x"), Value::Int(1))
            .bind(Label::new("x"), Value::Int(2));
        assert!(matches!(env.lookup(&Label::new("x")), Some(Value::Int(2))));
    }

    #[test]
    fn lookup_cost_counts_links_inspected() {
        let env = Env::empty()
            .bind(Label::new("x"), Value::Int(1))
            .bind(Label::new("y"), Value::Int(2));
        assert_eq!(env.lookup_cost(&Label::new("y")), 1);
        assert_eq!(env.lookup_cost(&Label::new("x")), 2);
        assert_eq!(env.lookup_cost(&Label::new("z")), 2, "miss walks it all");
        assert_eq!(Env::empty().lookup_cost(&Label::new("z")), 0);
    }

    #[test]
    fn persistence() {
        let base = Env::empty().bind(Label::new("x"), Value::Int(1));
        let _ext = base.bind(Label::new("x"), Value::Int(2));
        assert!(matches!(base.lookup(&Label::new("x")), Some(Value::Int(1))));
    }
}

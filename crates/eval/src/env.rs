//! Runtime environments: an immutable linked list so closures capture in
//! O(1) and shadowing is structural.

use crate::value::Value;
use polyview_syntax::Name;
use std::rc::Rc;

#[derive(Clone, Debug, Default)]
pub struct Env(Option<Rc<Node>>);

#[derive(Debug)]
struct Node {
    name: Name,
    value: Value,
    next: Env,
}

impl Env {
    pub fn empty() -> Self {
        Env(None)
    }

    /// Extend with a binding, returning the new environment; `self` is
    /// untouched (persistent).
    pub fn bind(&self, name: Name, value: Value) -> Env {
        Env(Some(Rc::new(Node {
            name,
            value,
            next: self.clone(),
        })))
    }

    pub fn lookup(&self, name: &Name) -> Option<&Value> {
        let mut cur = self;
        while let Env(Some(node)) = cur {
            if &node.name == name {
                return Some(&node.value);
            }
            cur = &node.next;
        }
        None
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::Label;

    #[test]
    fn bind_and_lookup() {
        let env = Env::empty().bind(Label::new("x"), Value::Int(1));
        assert!(matches!(env.lookup(&Label::new("x")), Some(Value::Int(1))));
        assert!(env.lookup(&Label::new("y")).is_none());
    }

    #[test]
    fn shadowing_is_lexical() {
        let env = Env::empty()
            .bind(Label::new("x"), Value::Int(1))
            .bind(Label::new("x"), Value::Int(2));
        assert!(matches!(env.lookup(&Label::new("x")), Some(Value::Int(2))));
    }

    #[test]
    fn persistence() {
        let base = Env::empty().bind(Label::new("x"), Value::Int(1));
        let _ext = base.bind(Label::new("x"), Value::Int(2));
        assert!(matches!(base.lookup(&Label::new("x")), Some(Value::Int(1))));
    }
}

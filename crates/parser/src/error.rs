//! Parse errors with line/column positions.

use std::fmt;

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl ParseError {
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

//! Lexer and parser for the polyview surface language — an ML-flavoured
//! concrete syntax for the paper's calculus.
//!
//! ```text
//! val joe = IDView([Name = "Joe", BirthYear = 1955,
//!                   Salary := 2000, Bonus := 5000]);
//! val joe_view = joe as fn x => [Name = x.Name,
//!                                Age = this_year() - x.BirthYear,
//!                                Income = x.Salary,
//!                                Bonus := extract(x, Bonus)];
//! query(fn p => p.Income * 12 + p.Bonus, joe_view);
//! ```
//!
//! Programs are sequences of declarations: `val x = e;`,
//! `fun f x = e and g y = e';`, top-level recursive class groups
//! `class A = class … end and B = class … end;`, and bare expressions.
//! Every declaration maps onto the paper's abstract syntax; derived forms
//! (`select … as … from … where …`, `member`, `map`, `filter`, `prod`,
//! `intersect`, `objeq`, relation queries) desugar through
//! `polyview_syntax::sugar`.

pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::ParseError;
pub use parser::{
    parse_expr, parse_expr_counted, parse_program, parse_program_counted, Decl, ParseStats,
};

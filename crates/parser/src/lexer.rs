//! Hand-written lexer. Supports `(* … *)` comments (nesting) and `--`
//! line comments, string escapes, and negative literals via unary minus in
//! the parser.

use crate::error::ParseError;
use crate::token::{Spanned, Tok};

pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    pub fn tokenize(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let (line, col) = (self.line, self.col);
            if self.pos >= self.src.len() {
                out.push(Spanned {
                    tok: Tok::Eof,
                    line,
                    col,
                });
                return Ok(out);
            }
            let tok = self.next_token()?;
            out.push(Spanned { tok, line, col });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.line, self.col)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                (Some(b'-'), Some(b'-')) => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some(b'('), Some(b'*')) => {
                    let (line, col) = (self.line, self.col);
                    self.bump();
                    self.bump();
                    let mut depth = 1usize;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b')')) => {
                                self.bump();
                                self.bump();
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            (Some(b'('), Some(b'*')) => {
                                self.bump();
                                self.bump();
                                depth += 1;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(ParseError::new("unterminated comment", line, col))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Tok, ParseError> {
        let c = self.peek().expect("caller checked non-empty");
        match c {
            b'0'..=b'9' => self.lex_int(),
            b'"' => self.lex_string(),
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.lex_ident(),
            _ => self.lex_operator(),
        }
    }

    fn lex_int(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9') | Some(b'_')) {
            self.bump();
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii digits")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        text.parse::<i64>()
            .map(Tok::Int)
            .map_err(|_| self.err(format!("integer literal out of range: {text}")))
    }

    fn lex_string(&mut self) -> Result<Tok, ParseError> {
        let (line, col) = (self.line, self.col);
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'"') => s.push('"'),
                    Some(other) => {
                        return Err(self.err(format!("unknown string escape: \\{}", other as char)))
                    }
                    None => return Err(ParseError::new("unterminated string", line, col)),
                },
                Some(other) => {
                    // Collect raw bytes; the source is UTF-8 so multibyte
                    // sequences pass through unchanged.
                    s.push(other as char);
                    if other >= 0x80 {
                        // Re-read properly: back up and take the full char.
                        s.pop();
                        let rest = std::str::from_utf8(&self.src[self.pos - 1..])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        let ch = rest.chars().next().expect("non-empty");
                        s.push(ch);
                        for _ in 0..ch.len_utf8() - 1 {
                            self.bump();
                        }
                    }
                }
                None => return Err(ParseError::new("unterminated string", line, col)),
            }
        }
    }

    fn lex_ident(&mut self) -> Result<Tok, ParseError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'A'..=b'Z') | Some(b'a'..=b'z') | Some(b'0'..=b'9') | Some(b'_') | Some(b'\'')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii idents")
            .to_string();
        Ok(Tok::keyword(&text).unwrap_or(Tok::Ident(text)))
    }

    fn lex_operator(&mut self) -> Result<Tok, ParseError> {
        let c = self.bump().expect("caller checked");
        let two = |l: &mut Self, second: u8, yes: Tok, no: Tok| {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b'.' => Tok::Dot,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'^' => Tok::Caret,
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::EqEq
                } else if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Arrow
                } else {
                    Tok::Eq
                }
            }
            b'<' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    Tok::Neq
                } else {
                    two(self, b'=', Tok::Le, Tok::Lt)
                }
            }
            b'>' => two(self, b'=', Tok::Ge, Tok::Gt),
            b':' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Assign
                } else {
                    return Err(self.err("expected `:=`"));
                }
            }
            other => return Err(self.err(format!("unexpected character `{}`", other as char))),
        })
    }
}

/// Tokenize a source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    Lexer::new(src).tokenize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .map(|s| s.tok)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("val x = 42;"),
            vec![
                Tok::Val,
                Tok::Ident("x".into()),
                Tok::Eq,
                Tok::Int(42),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_disambiguate() {
        assert_eq!(
            toks("= == => := < <= <> > >="),
            vec![
                Tok::Eq,
                Tok::EqEq,
                Tok::Arrow,
                Tok::Assign,
                Tok::Lt,
                Tok::Le,
                Tok::Neq,
                Tok::Gt,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""hi\n\"there\"""#),
            vec![Tok::Str("hi\n\"there\"".into()), Tok::Eof]
        );
    }

    #[test]
    fn unicode_strings() {
        assert_eq!(toks("\"héllo\""), vec![Tok::Str("héllo".into()), Tok::Eof]);
    }

    #[test]
    fn comments_nest() {
        assert_eq!(
            toks("1 (* outer (* inner *) still *) 2 -- line\n3"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Int(3), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn keywords_vs_idents() {
        assert_eq!(
            toks("class classy IDView idview"),
            vec![
                Tok::Class,
                Tok::Ident("classy".into()),
                Tok::IdView,
                Tok::Ident("idview".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("x\n  y").expect("lexes");
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn numeric_underscores() {
        assert_eq!(toks("1_000_000"), vec![Tok::Int(1_000_000), Tok::Eof]);
    }

    #[test]
    fn integer_overflow_reported() {
        assert!(lex("99999999999999999999").is_err());
    }
}

//! Recursive-descent parser with precedence climbing.
//!
//! Precedence, loosest to tightest:
//!
//! ```text
//! fn / fix / let / if / select / relation      (prefix forms)
//! as                                           (view composition)
//! orelse
//! andalso
//! = == <> < <= > >=                            (non-associative)
//! + - ^
//! * / %
//! juxtaposition (application)
//! unary -
//! .label                                       (projection)
//! ```

use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{Spanned, Tok};
use polyview_syntax::sugar;
use polyview_syntax::visit;
use polyview_syntax::{ClassDef, Expr, Field, IncludeClause, Label, Name};

/// A top-level declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum Decl {
    /// `val x = e;`
    Val(Name, Expr),
    /// `fun f x y = e and g z = e';` — possibly mutually recursive.
    Fun(Vec<(Name, Vec<Name>, Expr)>),
    /// `class A = class … end and B = class … end;` — a recursive class
    /// group bound at top level.
    Classes(Vec<(Name, ClassDef)>),
    /// A bare expression.
    Expr(Expr),
}

/// Front-end work counters: how many tokens the lexer produced (excluding
/// the end-of-input marker) and how many AST nodes the parse built. Fed
/// into the engine's metrics registry by the observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseStats {
    pub tokens: u64,
    pub nodes: u64,
}

/// Parse a whole program (sequence of declarations).
pub fn parse_program(src: &str) -> Result<Vec<Decl>, ParseError> {
    parse_program_counted(src).map(|(decls, _)| decls)
}

/// [`parse_program`], also reporting token and node counts.
pub fn parse_program_counted(src: &str) -> Result<(Vec<Decl>, ParseStats), ParseError> {
    let toks = lex(src)?;
    let tokens = (toks.len() as u64).saturating_sub(1); // exclude Eof
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut decls = Vec::new();
    while !p.at(&Tok::Eof) {
        decls.push(p.decl()?);
        while p.eat(&Tok::Semi) {}
    }
    let nodes = decls.iter().map(decl_nodes).sum();
    Ok((decls, ParseStats { tokens, nodes }))
}

/// Parse a single expression (must consume the whole input).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    parse_expr_counted(src).map(|(e, _)| e)
}

/// [`parse_expr`], also reporting token and node counts.
pub fn parse_expr_counted(src: &str) -> Result<(Expr, ParseStats), ParseError> {
    let toks = lex(src)?;
    let tokens = (toks.len() as u64).saturating_sub(1); // exclude Eof
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect(&Tok::Eof)?;
    let nodes = visit::term_size(&e);
    Ok((e, ParseStats { tokens, nodes }))
}

/// AST nodes contributed by one declaration (the expressions it binds).
fn decl_nodes(d: &Decl) -> u64 {
    match d {
        Decl::Val(_, e) | Decl::Expr(e) => visit::term_size(e),
        Decl::Fun(defs) => defs.iter().map(|(_, _, e)| visit::term_size(e)).sum(),
        Decl::Classes(binds) => binds.iter().map(|(_, cd)| visit::class_def_size(cd)).sum(),
    }
}

/// Maximum expression nesting depth; beyond this the parser reports an
/// error instead of exhausting the stack on adversarial input.
const MAX_DEPTH: usize = 100;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let s = &self.toks[self.pos];
        ParseError::new(msg, s.line, s.col)
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<Name, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Label::new(s))
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    /// A label: an identifier or an integer (tuple label).
    fn label(&mut self) -> Result<Label, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(Label::new(s))
            }
            Tok::Int(n) if n >= 0 => {
                self.bump();
                Ok(Label::new(n.to_string()))
            }
            other => Err(self.err(format!("expected label, found `{other}`"))),
        }
    }

    // ---------- declarations ----------

    fn decl(&mut self) -> Result<Decl, ParseError> {
        match self.peek() {
            Tok::Val => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let e = self.expr()?;
                Ok(Decl::Val(name, e))
            }
            Tok::Fun => {
                self.bump();
                let mut defs = vec![self.fundef()?];
                while self.eat(&Tok::And) {
                    defs.push(self.fundef()?);
                }
                Ok(Decl::Fun(defs))
            }
            // `class A = class … end and …` at top level; plain
            // `class … end` expressions fall through to Decl::Expr.
            Tok::Class if matches!(self.peek2(), Tok::Ident(_)) => {
                self.bump();
                let mut binds = vec![self.class_bind()?];
                while self.eat(&Tok::And) {
                    binds.push(self.class_bind()?);
                }
                Ok(Decl::Classes(binds))
            }
            _ => Ok(Decl::Expr(self.expr()?)),
        }
    }

    fn fundef(&mut self) -> Result<(Name, Vec<Name>, Expr), ParseError> {
        let name = self.ident()?;
        let mut params = vec![self.ident()?];
        while matches!(self.peek(), Tok::Ident(_)) {
            params.push(self.ident()?);
        }
        self.expect(&Tok::Eq)?;
        let body = self.expr()?;
        Ok((name, params, body))
    }

    fn class_bind(&mut self) -> Result<(Name, ClassDef), ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::Eq)?;
        self.expect(&Tok::Class)?;
        let cd = self.class_body()?;
        Ok((name, cd))
    }

    // ---------- expressions ----------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!(
                "expression nesting exceeds the maximum depth of {MAX_DEPTH}"
            )));
        }
        let out = self.expr_inner();
        self.depth -= 1;
        out
    }

    fn expr_inner(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Fn => {
                self.bump();
                // fn x y => e, and fn () => e for unit-domain functions.
                let mut params = Vec::new();
                if self.at(&Tok::LParen) && self.peek2() == &Tok::RParen {
                    self.bump();
                    self.bump();
                    params.push(Label::new("_unit"));
                } else {
                    params.push(self.ident()?);
                    while matches!(self.peek(), Tok::Ident(_)) {
                        params.push(self.ident()?);
                    }
                }
                self.expect(&Tok::Arrow)?;
                let body = self.expr()?;
                Ok(params
                    .into_iter()
                    .rev()
                    .fold(body, |acc, p| Expr::lam(p, acc)))
            }
            Tok::Fix => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Arrow)?;
                let body = self.expr()?;
                Ok(Expr::fix(name, body))
            }
            Tok::If => {
                self.bump();
                let c = self.expr()?;
                self.expect(&Tok::Then)?;
                let t = self.expr()?;
                self.expect(&Tok::Else)?;
                let e = self.expr()?;
                Ok(Expr::if_(c, t, e))
            }
            Tok::Let => self.let_expr(),
            Tok::Select => {
                // select as VIEW from SET where PRED
                self.bump();
                self.expect(&Tok::As)?;
                let view = self.expr()?;
                self.expect(&Tok::From)?;
                let set = self.expr()?;
                self.expect(&Tok::Where)?;
                let pred = self.expr()?;
                Ok(sugar::select_as_from_where(view, set, pred))
            }
            Tok::Relation => {
                // relation [l = e, …] from x in S, y in T where P
                self.bump();
                self.expect(&Tok::LBracket)?;
                let mut fields = Vec::new();
                if !self.at(&Tok::RBracket) {
                    loop {
                        let l = self.label()?;
                        self.expect(&Tok::Eq)?;
                        fields.push((l, self.expr()?));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                self.expect(&Tok::From)?;
                let mut binders = Vec::new();
                loop {
                    let x = self.ident()?;
                    self.expect(&Tok::In)?;
                    let s = self.or_expr()?;
                    binders.push((x, s));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::Where)?;
                let pred = self.expr()?;
                Ok(sugar::relation_from_where(fields, binders, pred))
            }
            _ => self.as_expr(),
        }
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Tok::Let)?;
        match self.peek() {
            Tok::Class => {
                self.bump();
                let mut binds = vec![self.class_bind_inline()?];
                while self.eat(&Tok::And) {
                    binds.push(self.class_bind_inline()?);
                }
                self.expect(&Tok::In)?;
                let body = self.expr()?;
                self.expect(&Tok::End)?;
                Ok(Expr::LetClasses(binds, Box::new(body)))
            }
            Tok::Fun => {
                self.bump();
                let mut defs = Vec::new();
                loop {
                    let (f, params, body) = self.fundef()?;
                    defs.push((f, params, body));
                    if !self.eat(&Tok::And) {
                        break;
                    }
                }
                self.expect(&Tok::In)?;
                let body = self.expr()?;
                self.expect(&Tok::End)?;
                Ok(fun_defs_to_expr(defs, body))
            }
            _ => {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let rhs = self.expr()?;
                self.expect(&Tok::In)?;
                let body = self.expr()?;
                self.expect(&Tok::End)?;
                Ok(Expr::let_(name, rhs, body))
            }
        }
    }

    /// Inside `let class …`, a binding is `NAME = class … end` or just
    /// `NAME = class …` — we already consumed the leading `class` keyword
    /// of the group for the first binding, so accept both orders.
    fn class_bind_inline(&mut self) -> Result<(Name, ClassDef), ParseError> {
        let name = self.ident()?;
        self.expect(&Tok::Eq)?;
        self.expect(&Tok::Class)?;
        let cd = self.class_body()?;
        Ok((name, cd))
    }

    fn class_body(&mut self) -> Result<ClassDef, ParseError> {
        let own = self.or_expr()?;
        let mut includes = Vec::new();
        while self.eat(&Tok::Include) {
            let mut sources = vec![self.or_expr()?];
            while self.eat(&Tok::Comma) {
                sources.push(self.or_expr()?);
            }
            self.expect(&Tok::As)?;
            let view = self.expr()?;
            self.expect(&Tok::Where)?;
            let pred = self.expr()?;
            includes.push(IncludeClause {
                sources,
                view,
                pred,
            });
        }
        self.expect(&Tok::End)?;
        Ok(ClassDef {
            own: Box::new(own),
            includes,
        })
    }

    fn as_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.or_expr()?;
        while self.eat(&Tok::As) {
            // The viewing function is typically a lambda; allow full
            // prefix forms on the right of `as`.
            let f = match self.peek() {
                Tok::Fn | Tok::Fix | Tok::If | Tok::Let => self.expr()?,
                _ => self.or_expr()?,
            };
            e = Expr::as_view(e, f);
        }
        Ok(e)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Orelse) {
            let r = self.and_expr()?;
            e = sugar::or(e, r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr()?;
        while self.eat(&Tok::Andalso) {
            let r = self.cmp_expr()?;
            e = sugar::and(e, r);
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::Eq | Tok::EqEq => Some("eq"),
            Tok::Neq => Some("neq"),
            Tok::Lt => Some("lt"),
            Tok::Le => Some("le"),
            Tok::Gt => Some("gt"),
            Tok::Ge => Some("ge"),
            _ => None,
        };
        match op {
            None => Ok(e),
            Some(op) => {
                self.bump();
                let r = self.add_expr()?;
                Ok(match op {
                    "eq" => Expr::eq(e, r),
                    "neq" => sugar::not(Expr::eq(e, r)),
                    other => Expr::apps(Expr::var(other), [e, r]),
                })
            }
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => "add",
                Tok::Minus => "sub",
                Tok::Caret => "concat",
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::apps(Expr::var(op), [e, r]);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.prefix_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => "mul",
                Tok::Slash => "div",
                Tok::Percent => "imod",
                _ => break,
            };
            self.bump();
            let r = self.prefix_expr()?;
            e = Expr::apps(Expr::var(op), [e, r]);
        }
        Ok(e)
    }

    fn prefix_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let e = self.prefix_expr()?;
            // Constant-fold negative literals.
            if let Expr::Lit(polyview_syntax::Lit::Int(n)) = e {
                return Ok(Expr::int(-n));
            }
            return Ok(Expr::app(Expr::var("neg"), e));
        }
        self.app_expr()
    }

    fn app_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.postfix_expr()?;
        while self.starts_atom() {
            let a = self.postfix_expr()?;
            e = Expr::app(e, a);
        }
        Ok(e)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Int(_)
                | Tok::Str(_)
                | Tok::Ident(_)
                | Tok::True
                | Tok::False
                | Tok::LParen
                | Tok::LBracket
                | Tok::LBrace
                | Tok::IdView
                | Tok::Query
                | Tok::Fuse
                | Tok::Relobj
                | Tok::Extract
                | Tok::Update
                | Tok::Union
                | Tok::Hom
                | Tok::EqKw
                | Tok::Member
                | Tok::MapKw
                | Tok::FilterKw
                | Tok::Prod
                | Tok::Intersect
                | Tok::Objeq
                | Tok::Cquery
                | Tok::Insert
                | Tok::Delete
                | Tok::Not
                | Tok::Class
        )
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        while self.eat(&Tok::Dot) {
            let l = self.label()?;
            e = Expr::Dot(Box::new(e), l);
        }
        Ok(e)
    }

    /// A parenthesized, comma-separated argument list.
    fn args(&mut self, n: usize, what: &str) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut out = Vec::with_capacity(n);
        if !self.at(&Tok::RParen) {
            loop {
                out.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        if out.len() != n {
            return Err(self.err(format!(
                "`{what}` expects {n} argument(s), found {}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Like [`Parser::args`] but variadic with a minimum count.
    fn args_min(&mut self, min: usize, what: &str) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut out = Vec::new();
        if !self.at(&Tok::RParen) {
            loop {
                out.push(self.expr()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        if out.len() < min {
            return Err(self.err(format!(
                "`{what}` expects at least {min} argument(s), found {}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::str(s))
            }
            Tok::True => {
                self.bump();
                Ok(Expr::bool(true))
            }
            Tok::False => {
                self.bump();
                Ok(Expr::bool(false))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(Expr::var(s))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::var("not"))
            }
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Expr::unit());
                }
                let first = self.expr()?;
                if self.at(&Tok::Comma) {
                    let mut elems = vec![first];
                    while self.eat(&Tok::Comma) {
                        elems.push(self.expr()?);
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::tuple(elems))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut fields = Vec::new();
                if !self.at(&Tok::RBracket) {
                    loop {
                        let l = self.label()?;
                        let mutable = if self.eat(&Tok::Assign) {
                            true
                        } else {
                            self.expect(&Tok::Eq)?;
                            false
                        };
                        let e = self.expr()?;
                        fields.push(Field {
                            label: l,
                            mutable,
                            expr: e,
                        });
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Expr::Record(fields))
            }
            Tok::LBrace => {
                self.bump();
                let mut elems = Vec::new();
                if !self.at(&Tok::RBrace) {
                    loop {
                        elems.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBrace)?;
                Ok(Expr::SetLit(elems))
            }
            Tok::Class => {
                self.bump();
                Ok(Expr::ClassExpr(self.class_body()?))
            }
            Tok::IdView => {
                self.bump();
                let mut a = self.args(1, "IDView")?;
                Ok(Expr::id_view(a.remove(0)))
            }
            Tok::Query => {
                self.bump();
                let mut a = self.args(2, "query")?;
                let o = a.remove(1);
                Ok(Expr::query(a.remove(0), o))
            }
            Tok::Fuse => {
                self.bump();
                let mut a = self.args(2, "fuse")?;
                let b = a.remove(1);
                Ok(Expr::fuse(a.remove(0), b))
            }
            Tok::Relobj => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let mut fields = Vec::new();
                if !self.at(&Tok::RParen) {
                    loop {
                        let l = self.label()?;
                        self.expect(&Tok::Eq)?;
                        fields.push((l, self.expr()?));
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(Expr::RelObj(fields))
            }
            Tok::Extract => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect(&Tok::Comma)?;
                let l = self.label()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Extract(Box::new(e), l))
            }
            Tok::Update => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect(&Tok::Comma)?;
                let l = self.label()?;
                self.expect(&Tok::Comma)?;
                let v = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Update(Box::new(e), l, Box::new(v)))
            }
            Tok::Union => {
                self.bump();
                let mut a = self.args(2, "union")?;
                let b = a.remove(1);
                Ok(Expr::union(a.remove(0), b))
            }
            Tok::Hom => {
                self.bump();
                let mut a = self.args(4, "hom")?;
                let z = a.remove(3);
                let op = a.remove(2);
                let f = a.remove(1);
                Ok(Expr::hom(a.remove(0), f, op, z))
            }
            Tok::EqKw => {
                self.bump();
                let mut a = self.args(2, "eq")?;
                let b = a.remove(1);
                Ok(Expr::eq(a.remove(0), b))
            }
            Tok::Member => {
                self.bump();
                let mut a = self.args(2, "member")?;
                let b = a.remove(1);
                Ok(sugar::member(a.remove(0), b))
            }
            Tok::MapKw => {
                self.bump();
                let mut a = self.args(2, "map")?;
                let b = a.remove(1);
                Ok(sugar::map(a.remove(0), b))
            }
            Tok::FilterKw => {
                self.bump();
                let mut a = self.args(2, "filter")?;
                let b = a.remove(1);
                Ok(sugar::filter(a.remove(0), b))
            }
            Tok::Prod => {
                self.bump();
                let a = self.args_min(1, "prod")?;
                Ok(sugar::prod(a))
            }
            Tok::Intersect => {
                self.bump();
                let a = self.args_min(2, "intersect")?;
                let mut it = a.into_iter();
                let first = it.next().expect("len >= 2");
                Ok(it.fold(first, sugar::intersect2))
            }
            Tok::Objeq => {
                self.bump();
                let mut a = self.args(2, "objeq")?;
                let b = a.remove(1);
                Ok(sugar::objeq(a.remove(0), b))
            }
            Tok::Cquery => {
                self.bump();
                let mut a = self.args(2, "cquery")?;
                let c = a.remove(1);
                Ok(Expr::cquery(a.remove(0), c))
            }
            Tok::Insert => {
                self.bump();
                let mut a = self.args(2, "insert")?;
                let e = a.remove(1);
                Ok(Expr::insert(a.remove(0), e))
            }
            Tok::Delete => {
                self.bump();
                let mut a = self.args(2, "delete")?;
                let e = a.remove(1);
                Ok(Expr::delete(a.remove(0), e))
            }
            other => Err(self.err(format!("expected an expression, found `{other}`"))),
        }
    }
}

/// Encode `let fun f x y = e and … in body end` using the paper's
/// `fix`/record construction (via [`sugar::fun_and`]); multi-parameter
/// functions curry into nested lambdas.
fn fun_defs_to_expr(defs: Vec<(Name, Vec<Name>, Expr)>, body: Expr) -> Expr {
    let singles = defs
        .into_iter()
        .map(|(f, mut params, e)| {
            let first = params.remove(0);
            let curried = params.into_iter().rev().fold(e, |acc, p| Expr::lam(p, acc));
            (f, first, curried)
        })
        .collect();
    sugar::fun_and(singles, body)
}

/// Public helper used by the engine for top-level `fun` declarations.
pub fn fun_decl_to_expr(defs: Vec<(Name, Vec<Name>, Expr)>, body: Expr) -> Expr {
    fun_defs_to_expr(defs, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;

    fn pe(src: &str) -> Expr {
        parse_expr(src).expect("parses")
    }

    #[test]
    fn counted_parse_reports_tokens_and_nodes() {
        let (e, stats) = parse_expr_counted("1 + 2 * 3").expect("parses");
        // Desugared arithmetic builds applications, so nodes ≥ literal count.
        assert_eq!(stats.nodes, visit::term_size(&e));
        assert_eq!(stats.tokens, 5, "1 + 2 * 3 is five tokens");

        let (decls, pstats) =
            parse_program_counted("val x = 1;\nfun f n = n + x;").expect("parses");
        assert_eq!(decls.len(), 2);
        assert!(pstats.tokens > 0 && pstats.nodes > 0);

        let (_, cstats) = parse_program_counted("class C = class {} end;").expect("parses");
        assert!(cstats.nodes > 0, "class declarations contribute nodes");
    }

    #[test]
    fn literals() {
        assert_eq!(pe("42"), b::int(42));
        assert_eq!(pe("-42"), b::int(-42));
        assert_eq!(pe("true"), b::boolean(true));
        assert_eq!(pe("\"hi\""), b::str("hi"));
        assert_eq!(pe("()"), b::unit());
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as add(1, mul(2, 3)).
        assert_eq!(
            pe("1 + 2 * 3"),
            b::add(b::int(1), b::mul(b::int(2), b::int(3)))
        );
        // (1 + 2) * 3
        assert_eq!(
            pe("(1 + 2) * 3"),
            b::mul(b::add(b::int(1), b::int(2)), b::int(3))
        );
    }

    #[test]
    fn comparison_and_equality() {
        assert_eq!(pe("1 < 2"), b::lt(b::int(1), b::int(2)));
        assert_eq!(pe("1 = 2"), b::eq(b::int(1), b::int(2)));
        assert_eq!(pe("1 == 2"), b::eq(b::int(1), b::int(2)));
        assert_eq!(pe("1 <> 2"), sugar::not(b::eq(b::int(1), b::int(2))));
    }

    #[test]
    fn application_is_left_associative() {
        assert_eq!(pe("f x y"), b::app(b::app(b::v("f"), b::v("x")), b::v("y")));
    }

    #[test]
    fn lambda_multi_param_curries() {
        assert_eq!(pe("fn x y => x"), b::lam("x", b::lam("y", b::v("x"))));
        assert_eq!(pe("fn () => 1"), Expr::thunk(b::int(1)));
    }

    #[test]
    fn record_syntax() {
        assert_eq!(
            pe("[Name = \"Joe\", Salary := 2000]"),
            b::record([b::imm("Name", b::str("Joe")), b::mt("Salary", b::int(2000))])
        );
        assert_eq!(pe("[]"), b::record([]));
    }

    #[test]
    fn tuple_and_projection() {
        assert_eq!(pe("(1, 2)"), Expr::pair(b::int(1), b::int(2)));
        assert_eq!(pe("x.1"), b::proj(b::v("x"), 1));
        assert_eq!(pe("x.Name"), b::dot(b::v("x"), "Name"));
        assert_eq!(pe("x.Name.len"), b::dot(b::dot(b::v("x"), "Name"), "len"));
    }

    #[test]
    fn sets() {
        assert_eq!(pe("{}"), b::empty());
        assert_eq!(pe("{1, 2}"), b::set([b::int(1), b::int(2)]));
    }

    #[test]
    fn let_and_if() {
        assert_eq!(pe("let x = 1 in x end"), b::let_("x", b::int(1), b::v("x")));
        assert_eq!(
            pe("if true then 1 else 2"),
            b::if_(b::boolean(true), b::int(1), b::int(2))
        );
    }

    #[test]
    fn fix_expression() {
        assert_eq!(
            pe("fix f => fn n => n"),
            Expr::fix("f", b::lam("n", b::v("n")))
        );
    }

    #[test]
    fn view_operators() {
        assert_eq!(
            pe("IDView([a = 1])"),
            b::id_view(b::record([b::imm("a", b::int(1))]))
        );
        assert_eq!(
            pe("x as fn y => y"),
            b::as_view(b::v("x"), b::lam("y", b::v("y")))
        );
        assert_eq!(
            pe("query(fn x => x, joe)"),
            b::query(b::lam("x", b::v("x")), b::v("joe"))
        );
        assert_eq!(pe("fuse(a, b)"), b::fuse(b::v("a"), b::v("b")));
        assert_eq!(
            pe("relobj(emp = a, dept = b)"),
            b::relobj([("emp", b::v("a")), ("dept", b::v("b"))])
        );
    }

    #[test]
    fn as_chains_left() {
        let e = pe("x as f as g");
        assert_eq!(e, b::as_view(b::as_view(b::v("x"), b::v("f")), b::v("g")));
    }

    #[test]
    fn extract_and_update() {
        assert_eq!(
            pe("extract(joe, Salary)"),
            b::extract(b::v("joe"), "Salary")
        );
        assert_eq!(
            pe("update(joe, Salary, 4000)"),
            b::update(b::v("joe"), "Salary", b::int(4000))
        );
    }

    #[test]
    fn core_set_operators() {
        assert_eq!(
            pe("union({1}, {2})"),
            b::union(b::set([b::int(1)]), b::set([b::int(2)]))
        );
        assert!(matches!(pe("hom({1}, f, g, 0)"), Expr::Hom(..)));
        assert!(matches!(pe("member(1, {1})"), Expr::Let(..)));
        assert!(matches!(pe("map(f, s)"), Expr::Let(..)));
        assert!(matches!(pe("filter(p, s)"), Expr::Let(..)));
        assert!(matches!(pe("prod(s, t)"), Expr::Let(..)));
        assert!(matches!(pe("intersect(s, t)"), Expr::Hom(..)));
        assert!(matches!(pe("objeq(a, b)"), Expr::If(..)));
    }

    #[test]
    fn class_expression() {
        let e = pe("class {} include Staff as fn s => s where fn s => true end");
        match e {
            Expr::ClassExpr(cd) => {
                assert_eq!(*cd.own, b::empty());
                assert_eq!(cd.includes.len(), 1);
                assert_eq!(cd.includes[0].sources, vec![b::v("Staff")]);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_multi_source_include() {
        let e = pe("class {} include Staff, Student as fn p => p where fn p => true end");
        match e {
            Expr::ClassExpr(cd) => {
                assert_eq!(cd.includes[0].sources.len(), 2);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn let_class_recursive_group() {
        let e = pe(
            "let class A = class {} include B as fn x => x where fn x => true end \
             and B = class {} end \
             in cquery(fn s => s, A) end",
        );
        match e {
            Expr::LetClasses(binds, _) => {
                assert_eq!(binds.len(), 2);
                assert_eq!(binds[0].0, Label::new("A"));
            }
            other => panic!("expected let-classes, got {other:?}"),
        }
    }

    #[test]
    fn select_from_where_derived_form() {
        let e = pe("select as fn x => x from S where fn x => true");
        // select desugars to let view = … in map(…, filter(…)).
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn relation_derived_form() {
        let e = pe("relation [l = x, r = y] from x in S, y in T where true");
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn andalso_orelse_not() {
        assert_eq!(
            pe("true andalso false"),
            sugar::and(b::boolean(true), b::boolean(false))
        );
        assert_eq!(
            pe("true orelse false"),
            sugar::or(b::boolean(true), b::boolean(false))
        );
        assert_eq!(pe("not true"), b::app(b::v("not"), b::boolean(true)));
    }

    #[test]
    fn string_concat_operator() {
        assert_eq!(
            pe("\"a\" ^ \"b\""),
            Expr::apps(b::v("concat"), [b::str("a"), b::str("b")])
        );
    }

    #[test]
    fn unary_minus_on_expr() {
        assert_eq!(pe("-x"), b::app(b::v("neg"), b::v("x")));
        assert_eq!(pe("1 - 2"), b::sub(b::int(1), b::int(2)));
    }

    #[test]
    fn program_declarations() {
        let decls = parse_program(
            "val x = 1;\n\
             fun f a = a and g z = f z;\n\
             class A = class {} end;\n\
             f x",
        )
        .expect("parses");
        assert_eq!(decls.len(), 4);
        assert!(matches!(decls[0], Decl::Val(..)));
        match &decls[1] {
            Decl::Fun(defs) => assert_eq!(defs.len(), 2),
            other => panic!("expected fun, got {other:?}"),
        }
        assert!(matches!(decls[2], Decl::Classes(_)));
        assert!(matches!(decls[3], Decl::Expr(_)));
    }

    #[test]
    fn class_decl_group() {
        let decls = parse_program(
            "class A = class {} include B as fn x => x where fn x => true end \
             and B = class {} end;",
        )
        .expect("parses");
        match &decls[0] {
            Decl::Classes(binds) => assert_eq!(binds.len(), 2),
            other => panic!("expected classes, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_expr("1 +").expect_err("should fail");
        assert_eq!(err.line, 1);
        assert!(err.col >= 3, "got col {}", err.col);
    }

    #[test]
    fn wrong_arity_keyword_call() {
        let err = parse_expr("query(f)").expect_err("should fail");
        assert!(err.message.contains("expects 2"), "got: {}", err.message);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_expr("1 2 3 ]").is_err());
    }

    #[test]
    fn let_fun_in_expression() {
        let e = pe("let fun f x = x + 1 in f 41 end");
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn paper_joe_view_parses() {
        let e = pe("joe as fn x => [Name = x.Name, \
                    Age = this_year() - x.BirthYear, \
                    Income = x.Salary, \
                    Bonus := extract(x, Bonus)]");
        assert!(matches!(e, Expr::AsView(..)));
    }
}

//! Props. 3 and 4 executably: for well-typed programs `e` of the extended
//! language, `tr(e)` re-typechecks in the smaller language, at a type that
//! is an internal representation of `e`'s type.

use polyview_syntax::builder as b;
use polyview_syntax::{Expr, FieldTy, Label, Mono};
use polyview_trans::{classes, translate, views};
use polyview_types::{builtins_sig, infer, Infer};

/// Infer the resolved (monomorphic) type of a closed expression.
fn type_of(e: &Expr) -> Mono {
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    infer::infer_resolved(&mut cx, &mut env, e)
        .unwrap_or_else(|err| panic!("expected well-typed, got {err}: {e}"))
}

/// Build an internal-representation *skeleton* of a source type, with a
/// fresh variable for each `obj` occurrence's raw type ("for some τ1" in
/// Prop. 3):
///
/// * `obj(τ)`    ⇒ `[1 = α, 2 = α → skel(τ)]`
/// * `class(τ)`  ⇒ `[OwnExt := {skel(obj(τ))}, Ext = unit → {skel(obj(τ))}]`
fn skeleton(cx: &mut Infer, source: &Mono) -> Mono {
    match source {
        Mono::Obj(t) => {
            let raw = cx.fresh();
            let view = skeleton(cx, t);
            Mono::pair(raw.clone(), Mono::arrow(raw, view))
        }
        Mono::Class(t) => {
            let obj_rep = skeleton(cx, &Mono::obj((**t).clone()));
            Mono::Record(
                [
                    (
                        Label::new("OwnExt"),
                        FieldTy::mutable(Mono::set(obj_rep.clone())),
                    ),
                    (
                        Label::new("Ext"),
                        FieldTy::immutable(Mono::arrow(Mono::Unit, Mono::set(obj_rep))),
                    ),
                ]
                .into_iter()
                .collect(),
            )
        }
        Mono::Base(bt) => Mono::Base(*bt),
        Mono::Unit => Mono::Unit,
        Mono::Var(v) => Mono::Var(*v),
        Mono::Arrow(a, r) => Mono::arrow(skeleton(cx, a), skeleton(cx, r)),
        Mono::Set(t) => Mono::set(skeleton(cx, t)),
        Mono::LVal(t) => Mono::lval(skeleton(cx, t)),
        Mono::Record(fs) => Mono::Record(
            fs.iter()
                .map(|(l, f)| {
                    (
                        l.clone(),
                        FieldTy {
                            mutable: f.mutable,
                            ty: skeleton(cx, &f.ty),
                        },
                    )
                })
                .collect(),
        ),
    }
}

/// Check Prop. 3/4 for one program: the source typechecks, the translation
/// typechecks, and the translated type unifies with an internal
/// representation of the source type (i.e. `tr(e)` *is typeable at* an
/// internal representation — exactly the proposition's statement).
fn check_preservation(e: &Expr) {
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    let src_ty = infer::infer_resolved(&mut cx, &mut env, e)
        .unwrap_or_else(|err| panic!("source ill-typed ({err}): {e}"));
    let tr = translate(e);
    assert!(
        !classes::has_class_constructs(&tr) && !views::has_view_constructs(&tr),
        "translation incomplete for {e}"
    );
    let tr_ty = infer::infer(&mut cx, &mut env, &tr)
        .unwrap_or_else(|err| panic!("translation ill-typed ({err}): {e}"));
    let skel = skeleton(&mut cx, &src_ty);
    if let Err(err) = cx.unify(&tr_ty, &skel) {
        panic!(
            "translated type {} does not match internal representation {} of {src_ty} ({err})\nsource: {e}",
            cx.resolve(&tr_ty),
            cx.resolve(&skel)
        );
    }
}

fn joe_raw() -> Expr {
    b::record([
        b::imm("Name", b::str("Joe")),
        b::imm("BirthYear", b::int(1955)),
        b::mt("Salary", b::int(2000)),
        b::mt("Bonus", b::int(5000)),
    ])
}

fn joe_view_fn() -> Expr {
    b::lam(
        "x",
        b::record([
            b::imm("Name", b::dot(b::v("x"), "Name")),
            b::imm("Income", b::dot(b::v("x"), "Salary")),
            b::mt("Bonus", b::extract(b::v("x"), "Bonus")),
        ]),
    )
}

#[test]
fn prop3_idview() {
    check_preservation(&b::id_view(joe_raw()));
}

#[test]
fn prop3_as_view() {
    check_preservation(&b::as_view(b::id_view(joe_raw()), joe_view_fn()));
}

#[test]
fn prop3_query_is_transparent() {
    // query returns a non-object type, so source and translation types
    // coincide.
    let e = b::query(
        b::lam("x", b::dot(b::v("x"), "Name")),
        b::id_view(joe_raw()),
    );
    check_preservation(&e);
    assert_eq!(type_of(&translate(&e)), type_of(&e));
}

#[test]
fn prop3_fuse() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::fuse(b::v("joe"), b::as_view(b::v("joe"), joe_view_fn())),
    );
    check_preservation(&e);
}

#[test]
fn prop3_relobj() {
    let e = b::relobj([
        ("emp", b::id_view(joe_raw())),
        (
            "dept",
            b::id_view(b::record([b::imm("DName", b::str("RIMS"))])),
        ),
    ]);
    check_preservation(&e);
}

#[test]
fn prop3_objeq_and_select_sugar() {
    use polyview_syntax::sugar;
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        sugar::objeq(b::v("joe"), b::v("joe")),
    );
    check_preservation(&e);

    let sel = b::let_(
        "S",
        b::set([b::id_view(joe_raw())]),
        sugar::select_as_from_where(
            b::lam("x", b::record([b::imm("N", b::dot(b::v("x"), "Name"))])),
            b::v("S"),
            b::lam("o", b::boolean(true)),
        ),
    );
    check_preservation(&sel);
}

#[test]
fn prop3_sets_of_objects() {
    let e = b::union(
        b::set([b::id_view(joe_raw())]),
        b::set([b::id_view(joe_raw())]),
    );
    check_preservation(&e);
}

#[test]
fn prop4_simple_class() {
    let e = b::class(b::set([b::id_view(joe_raw())]), vec![]);
    check_preservation(&e);
}

#[test]
fn prop4_class_with_include() {
    let e = b::let_(
        "Src",
        b::class(b::set([b::id_view(joe_raw())]), vec![]),
        b::class(
            b::empty(),
            vec![b::include(
                vec![b::v("Src")],
                b::lam("s", b::record([b::imm("N", b::dot(b::v("s"), "Name"))])),
                b::lam(
                    "s",
                    b::query(
                        b::lam("x", b::eq(b::dot(b::v("x"), "Name"), b::str("Joe"))),
                        b::v("s"),
                    ),
                ),
            )],
        ),
    );
    check_preservation(&e);
}

#[test]
fn prop4_cquery_insert_delete() {
    let mk = |body: fn(Expr) -> Expr| {
        b::let_(
            "C",
            b::class(b::set([b::id_view(joe_raw())]), vec![]),
            body(b::v("C")),
        )
    };
    check_preservation(&mk(|c| b::cquery(b::lam("s", b::v("s")), c)));
    check_preservation(&mk(|c| {
        b::insert(
            c,
            b::id_view(b::record([
                b::imm("Name", b::str("X")),
                b::imm("BirthYear", b::int(1960)),
                b::mt("Salary", b::int(1)),
                b::mt("Bonus", b::int(1)),
            ])),
        )
    }));
}

#[test]
fn prop4_two_source_include() {
    let person = |n: &str| {
        b::id_view(b::record([
            b::imm("Name", b::str(n)),
            b::imm("Age", b::int(30)),
        ]))
    };
    let e = b::let_(
        "A",
        b::class(b::set([person("P")]), vec![]),
        b::let_(
            "B",
            b::class(b::set([person("Q")]), vec![]),
            b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("A"), b::v("B")],
                    b::lam(
                        "p",
                        b::record([b::imm("N", b::dot(b::proj(b::v("p"), 1), "Name"))]),
                    ),
                    b::lam("p", b::boolean(true)),
                )],
            ),
        ),
    );
    check_preservation(&e);
}

#[test]
fn prop4_recursive_classes() {
    let idv = || b::lam("x", b::v("x"));
    let tp = || b::lam("x", b::boolean(true));
    let e = b::let_classes(
        vec![
            (
                "A",
                b::class(
                    b::set([b::id_view(b::record([b::imm("n", b::int(1))]))]),
                    vec![b::include(vec![b::v("B")], idv(), tp())],
                ),
            ),
            (
                "B",
                b::class(b::empty(), vec![b::include(vec![b::v("A")], idv(), tp())]),
            ),
        ],
        b::cquery(
            b::lam(
                "s",
                b::hom(
                    b::v("s"),
                    b::lam("x", b::int(1)),
                    b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
                    b::int(0),
                ),
            ),
            b::v("A"),
        ),
    );
    check_preservation(&e);
}

#[test]
fn prop4_class_creating_function() {
    // Classes are first-class: λs. class s end translates and preserves
    // typing (the function type's class component becomes its record
    // representation).
    let e = b::app(
        b::lam("s", b::class(b::v("s"), vec![])),
        b::set([b::id_view(joe_raw())]),
    );
    check_preservation(&e);
}

#[test]
fn translation_of_pure_core_is_identity_typed() {
    let e = b::let_(
        "f",
        b::lam("x", b::add(b::v("x"), b::int(1))),
        b::app(b::v("f"), b::int(41)),
    );
    assert_eq!(translate(&e), e);
    assert_eq!(type_of(&e), polyview_syntax::Mono::int());
}

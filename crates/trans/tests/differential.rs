//! Differential semantics: programs with base-type observable results must
//! evaluate to the same value natively (objects/classes interpreted
//! directly) and through the paper's translation (Figs. 3 and 5 into pure
//! core). This is the executable form of "the translation is an effective
//! implementation algorithm".

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::{sugar, Expr};
use polyview_trans::translate;

/// Evaluate `e` both ways and compare the printed (observable) results.
fn check_agreement(e: &Expr) {
    let native = {
        let mut m = Machine::new();
        let v = m
            .eval(e)
            .unwrap_or_else(|err| panic!("native eval failed ({err}): {e}"));
        m.show(&v)
    };
    let tr = translate(e);
    let translated = {
        let mut m = Machine::new();
        let v = m
            .eval(&tr)
            .unwrap_or_else(|err| panic!("translated eval failed ({err}): {e}"));
        m.show(&v)
    };
    assert_eq!(
        native, translated,
        "native and translated results differ\nsource: {e}"
    );
}

fn joe_raw() -> Expr {
    b::record([
        b::imm("Name", b::str("Joe")),
        b::imm("BirthYear", b::int(1955)),
        b::mt("Salary", b::int(2000)),
        b::mt("Bonus", b::int(5000)),
    ])
}

fn joe_view_fn() -> Expr {
    b::lam(
        "x",
        b::record([
            b::imm("Name", b::dot(b::v("x"), "Name")),
            b::imm("Income", b::dot(b::v("x"), "Salary")),
            b::mt("Bonus", b::extract(b::v("x"), "Bonus")),
        ]),
    )
}

#[test]
fn query_through_view() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::let_(
            "jv",
            b::as_view(b::v("joe"), joe_view_fn()),
            b::query(
                b::lam(
                    "p",
                    b::add(
                        b::mul(b::dot(b::v("p"), "Income"), b::int(12)),
                        b::dot(b::v("p"), "Bonus"),
                    ),
                ),
                b::v("jv"),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn view_update_propagates_both_ways() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::let_(
            "jv",
            b::as_view(b::v("joe"), joe_view_fn()),
            b::let_(
                "_",
                b::query(
                    b::lam(
                        "x",
                        b::update(
                            b::v("x"),
                            "Bonus",
                            b::mul(b::dot(b::v("x"), "Income"), b::int(3)),
                        ),
                    ),
                    b::v("jv"),
                ),
                Expr::tuple([
                    b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("jv")),
                    b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("joe")),
                ]),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn objeq_same_and_different() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::let_(
            "other",
            b::id_view(joe_raw()),
            Expr::tuple([
                sugar::objeq(b::v("joe"), b::as_view(b::v("joe"), joe_view_fn())),
                sugar::objeq(b::v("joe"), b::v("other")),
            ]),
        ),
    );
    check_agreement(&e);
}

#[test]
fn fuse_product_query() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::hom(
            b::fuse(b::v("joe"), b::as_view(b::v("joe"), joe_view_fn())),
            b::lam(
                "o",
                b::query(
                    b::lam(
                        "p",
                        b::add(
                            b::dot(b::proj(b::v("p"), 1), "Salary"),
                            b::dot(b::proj(b::v("p"), 2), "Income"),
                        ),
                    ),
                    b::v("o"),
                ),
            ),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        ),
    );
    check_agreement(&e);
}

#[test]
fn relobj_query() {
    let e = b::let_(
        "joe",
        b::id_view(joe_raw()),
        b::let_(
            "dept",
            b::id_view(b::record([b::imm("DName", b::str("RIMS"))])),
            b::query(
                b::lam("p", b::dot(b::dot(b::v("p"), "d"), "DName")),
                b::relobj([("e", b::v("joe")), ("d", b::v("dept"))]),
            ),
        ),
    );
    check_agreement(&e);
}

fn person(name: &str, age: i64, sex: &str) -> Expr {
    b::id_view(b::record([
        b::imm("Name", b::str(name)),
        b::imm("Age", b::int(age)),
        b::imm("Sex", b::str(sex)),
    ]))
}

fn names_query(class: Expr) -> Expr {
    b::cquery(
        b::lam(
            "s",
            sugar::map(
                b::lam(
                    "o",
                    b::query(b::lam("y", b::dot(b::v("y"), "Name")), b::v("o")),
                ),
                b::v("s"),
            ),
        ),
        class,
    )
}

#[test]
fn class_with_include_and_pred() {
    let e = b::let_(
        "Staff",
        b::class(
            b::set([person("Alice", 40, "female"), person("Bob", 50, "male")]),
            vec![],
        ),
        b::let_(
            "Female",
            b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Staff")],
                    b::lam("s", b::record([b::imm("Name", b::dot(b::v("s"), "Name"))])),
                    b::lam(
                        "s",
                        b::query(
                            b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                            b::v("s"),
                        ),
                    ),
                )],
            ),
            names_query(b::v("Female")),
        ),
    );
    check_agreement(&e);
}

#[test]
fn insert_then_query_is_lazy_in_both() {
    let e = b::let_(
        "Staff",
        b::class(b::set([person("Alice", 40, "female")]), vec![]),
        b::let_(
            "All",
            b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Staff")],
                    b::lam("s", b::v("s")),
                    b::lam("s", b::boolean(true)),
                )],
            ),
            b::let_(
                "_",
                b::insert(b::v("Staff"), person("Eve", 30, "female")),
                names_query(b::v("All")),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn delete_then_query() {
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice"), person("Bob", 50, "male")]), vec![]),
            b::let_(
                "_",
                b::delete(b::v("Staff"), b::v("alice")),
                names_query(b::v("Staff")),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn insert_existing_is_noop_in_both() {
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "_",
                b::insert(
                    b::v("Staff"),
                    b::as_view(
                        b::v("alice"),
                        b::lam("x", b::record([b::imm("Name", b::str("shadow"))])),
                    ),
                ),
                names_query(b::v("Staff")),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn own_extent_beats_included_on_collision() {
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "Staff",
            b::class(b::set([b::v("alice")]), vec![]),
            b::let_(
                "Other",
                b::class(
                    b::set([b::v("alice")]),
                    vec![b::include(
                        vec![b::v("Staff")],
                        b::lam("s", b::record([b::imm("Name", b::str("viewed"))])),
                        b::lam("s", b::boolean(true)),
                    )],
                ),
                names_query(b::v("Other")),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn two_source_intersection_class() {
    let e = b::let_(
        "alice",
        person("Alice", 40, "female"),
        b::let_(
            "A",
            b::class(b::set([b::v("alice"), person("Bob", 50, "male")]), vec![]),
            b::let_(
                "B",
                b::class(
                    b::set([b::v("alice"), person("Carol", 22, "female")]),
                    vec![],
                ),
                b::let_(
                    "Both",
                    b::class(
                        b::empty(),
                        vec![b::include(
                            vec![b::v("A"), b::v("B")],
                            b::lam(
                                "p",
                                b::record([b::imm("Name", b::dot(b::proj(b::v("p"), 1), "Name"))]),
                            ),
                            b::lam("p", b::boolean(true)),
                        )],
                    ),
                    names_query(b::v("Both")),
                ),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn recursive_two_class_cycle() {
    let idv = || b::lam("x", b::v("x"));
    let tp = || b::lam("x", b::boolean(true));
    let e = b::let_(
        "a",
        person("Anna", 1, "f"),
        b::let_(
            "bp",
            person("Ben", 2, "m"),
            b::let_classes(
                vec![
                    (
                        "A",
                        b::class(
                            b::set([b::v("a")]),
                            vec![b::include(vec![b::v("B")], idv(), tp())],
                        ),
                    ),
                    (
                        "B",
                        b::class(
                            b::set([b::v("bp")]),
                            vec![b::include(vec![b::v("A")], idv(), tp())],
                        ),
                    ),
                ],
                Expr::tuple([names_query(b::v("A")), names_query(b::v("B"))]),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn fig7_style_mutual_sharing() {
    let to_member = |cat: &str| {
        b::lam(
            "s",
            b::record([
                b::imm("Name", b::dot(b::v("s"), "Name")),
                b::imm("Category", b::str(cat)),
            ]),
        )
    };
    let sex_pred = || {
        b::lam(
            "s",
            b::query(
                b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                b::v("s"),
            ),
        )
    };
    let to_person = b::lam(
        "f",
        b::record([
            b::imm("Name", b::dot(b::v("f"), "Name")),
            b::imm("Sex", b::str("female")),
        ]),
    );
    let cat_pred = |cat: &str| {
        b::lam(
            "f",
            b::query(
                b::lam("x", b::eq(b::dot(b::v("x"), "Category"), b::str(cat))),
                b::v("f"),
            ),
        )
    };
    let fran = b::id_view(b::record([
        b::imm("Name", b::str("Fran")),
        b::imm("Category", b::str("staff")),
    ]));
    let e = b::let_classes(
        vec![
            (
                "Staff",
                b::class(
                    b::set([person("Alice", 40, "female"), person("Bob", 50, "male")]),
                    vec![b::include(
                        vec![b::v("FemaleMember")],
                        to_person.clone(),
                        cat_pred("staff"),
                    )],
                ),
            ),
            (
                "FemaleMember",
                b::class(
                    b::set([fran]),
                    vec![b::include(
                        vec![b::v("Staff")],
                        to_member("staff"),
                        sex_pred(),
                    )],
                ),
            ),
        ],
        Expr::tuple([
            names_query(b::v("Staff")),
            names_query(b::v("FemaleMember")),
        ]),
    );
    check_agreement(&e);
}

#[test]
fn self_including_class() {
    let e = b::let_(
        "p",
        person("Solo", 9, "x"),
        b::let_classes(
            vec![(
                "C",
                b::class(
                    b::set([b::v("p")]),
                    vec![b::include(
                        vec![b::v("C")],
                        b::lam("x", b::v("x")),
                        b::lam("x", b::boolean(true)),
                    )],
                ),
            )],
            names_query(b::v("C")),
        ),
    );
    check_agreement(&e);
}

#[test]
fn class_creating_function() {
    let e = b::let_(
        "mk",
        b::lam("s", b::class(b::v("s"), vec![])),
        b::let_(
            "C",
            b::app(b::v("mk"), b::set([person("Alice", 40, "f")])),
            names_query(b::v("C")),
        ),
    );
    check_agreement(&e);
}

#[test]
fn select_and_wealthy_pipeline() {
    let annual = b::lam(
        "x",
        b::add(
            b::mul(b::dot(b::v("x"), "Salary"), b::int(12)),
            b::dot(b::v("x"), "Bonus"),
        ),
    );
    let rich_raw = joe_raw();
    let poor_raw = b::record([
        b::imm("Name", b::str("Moe")),
        b::imm("BirthYear", b::int(1970)),
        b::mt("Salary", b::int(10)),
        b::mt("Bonus", b::int(0)),
    ]);
    let e = b::let_(
        "S",
        b::set([b::id_view(rich_raw), b::id_view(poor_raw)]),
        sugar::map(
            b::lam(
                "o",
                b::query(b::lam("x", b::dot(b::v("x"), "Name")), b::v("o")),
            ),
            sugar::select_as_from_where(
                b::lam("x", b::record([b::imm("Name", b::dot(b::v("x"), "Name"))])),
                b::v("S"),
                b::lam("o", b::gt(b::query(annual, b::v("o")), b::int(20000))),
            ),
        ),
    );
    check_agreement(&e);
}

#[test]
fn core_programs_translate_to_themselves_and_agree() {
    let e = b::let_(
        "xs",
        b::set([b::int(3), b::int(1), b::int(2)]),
        b::hom(
            b::v("xs"),
            b::lam("x", b::mul(b::v("x"), b::v("x"))),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        ),
    );
    assert_eq!(translate(&e), e);
    check_agreement(&e);
}

//! A formal subtlety of Prop. 3 discovered by property testing, pinned as
//! a documented behaviour.
//!
//! Fig. 3 translates `fuse(e1, e2)` to code that (a) compares the two raw
//! objects with `eq` and (b) builds the product view `λx.((v1 x), (v2 x))`,
//! applying the *same* `x` to both viewing functions. Both constructions
//! type-check only when the two objects' **raw types coincide**. The native
//! object semantics has no such restriction — when the raws differ, `fuse`
//! simply evaluates to `{}` (and the product view is never applied).
//!
//! So the executable form of Prop. 3 holds on derivations where fused
//! objects share a raw type (the fragment our generators target), while a
//! `fuse` across *different* raw types is a well-typed source program whose
//! Fig. 3 image is not typeable in the core — the translation would need a
//! heterogeneous identity test and a sum-typed view domain to cover it.

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::sugar;
use polyview_trans::translate;
use polyview_types::{builtins_sig, infer, Infer};

/// objeq between an identity-view object and a renamed-view object over a
/// *different* raw record shape (same view type `[a = int]`).
fn cross_raw_fuse_program() -> polyview_syntax::Expr {
    let plain = b::id_view(b::record([b::imm("a", b::int(1))]));
    let widened = b::as_view(
        b::id_view(b::record([
            b::imm("src_a", b::int(1)),
            b::imm("extra", b::str("x")),
        ])),
        b::lam("x", b::record([b::imm("a", b::dot(b::v("x"), "src_a"))])),
    );
    sugar::objeq(plain, widened)
}

#[test]
fn source_program_is_well_typed() {
    let e = cross_raw_fuse_program();
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    let t = infer::infer_resolved(&mut cx, &mut env, &e).expect("well-typed source");
    assert_eq!(t.to_string(), "bool");
}

#[test]
fn native_semantics_evaluates_fine() {
    let mut m = Machine::new();
    let v = m.eval(&cross_raw_fuse_program()).expect("native eval");
    // Different raw objects: not objeq.
    assert_eq!(m.show(&v), "false");
}

#[test]
fn fig3_image_is_not_core_typeable_across_raw_types() {
    // The documented limit: the translation of this program does not
    // typecheck (eq over two different record types / one λx into two view
    // domains).
    let tr = translate(&cross_raw_fuse_program());
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    let result = infer::infer_resolved(&mut cx, &mut env, &tr);
    assert!(
        result.is_err(),
        "expected the Fig. 3 image to be untypeable across raw types; \
         if this now typechecks, the translation gained heterogeneous \
         identity comparison — update the docs!"
    );
}

#[test]
fn same_raw_type_fuse_translates_and_agrees() {
    // The covered fragment: raw types coincide (even with different
    // views), and everything works end to end.
    let mk = || {
        b::as_view(
            b::id_view(b::record([
                b::imm("src_a", b::int(1)),
                b::imm("extra", b::str("x")),
            ])),
            b::lam("x", b::record([b::imm("a", b::dot(b::v("x"), "src_a"))])),
        )
    };
    let e = sugar::objeq(mk(), mk());
    let tr = translate(&e);
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    infer::infer_resolved(&mut cx, &mut env, &tr).expect("typeable in the fragment");
    let native = {
        let mut m = Machine::new();
        let v = m.eval(&e).expect("eval");
        m.show(&v)
    };
    let translated = {
        let mut m = Machine::new();
        let v = m.eval(&tr).expect("eval");
        m.show(&v)
    };
    assert_eq!(native, translated);
    assert_eq!(native, "false");
}

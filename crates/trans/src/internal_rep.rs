//! The internal-representation relation of Props. 3 and 4.
//!
//! A core-language type `τ'` is an *internal representation* of an extended
//! type `τ` when `τ'` is obtained by repeatedly replacing components
//! `obj(τ₀)` by `τ₁ × (τ₁ → τ₀')` for some raw type `τ₁` (Prop. 3), and —
//! for the class layer — `class(τ₀)` by
//! `[OwnExt := {o}, Ext = unit → {o}]` where `o` internally represents
//! `obj(τ₀)` (Section 4.3's `[[class(τ)]]`).
//!
//! The raw type `τ₁` is determined by the *derivation*, not by the type, so
//! this module provides the checking relation rather than a function.

use polyview_syntax::{FieldTy, Label, Mono};

/// Does `internal` internally represent `source`?
pub fn is_internal_rep(internal: &Mono, source: &Mono) -> bool {
    match source {
        Mono::Obj(t) => is_obj_rep(internal, t),
        Mono::Class(t) => is_class_rep(internal, t),
        Mono::Base(b) => matches!(internal, Mono::Base(b2) if b2 == b),
        Mono::Unit => matches!(internal, Mono::Unit),
        Mono::Var(v) => matches!(internal, Mono::Var(u) if u == v),
        Mono::Arrow(a, r) => match internal {
            Mono::Arrow(a2, r2) => is_internal_rep(a2, a) && is_internal_rep(r2, r),
            _ => false,
        },
        Mono::Set(t) => match internal {
            Mono::Set(t2) => is_internal_rep(t2, t),
            _ => false,
        },
        Mono::LVal(t) => match internal {
            Mono::LVal(t2) => is_internal_rep(t2, t),
            _ => false,
        },
        Mono::Record(fs) => match internal {
            Mono::Record(fs2) => {
                fs.len() == fs2.len()
                    && fs.iter().all(|(l, f)| match fs2.get(l) {
                        Some(f2) => f.mutable == f2.mutable && is_internal_rep(&f2.ty, &f.ty),
                        None => false,
                    })
            }
            _ => false,
        },
    }
}

/// `obj(t)` is represented by `[1 = τ₁, 2 = τ₁ → t']` with `t'` an internal
/// representation of `t` and the two `τ₁` occurrences identical.
fn is_obj_rep(internal: &Mono, t: &Mono) -> bool {
    let fs = match internal {
        Mono::Record(fs) => fs,
        _ => return false,
    };
    if fs.len() != 2 {
        return false;
    }
    let (raw, viewfn) = match (fs.get(&Label::tuple(1)), fs.get(&Label::tuple(2))) {
        (
            Some(FieldTy {
                mutable: false,
                ty: raw,
            }),
            Some(FieldTy {
                mutable: false,
                ty: vf,
            }),
        ) => (raw, vf),
        _ => return false,
    };
    match viewfn {
        Mono::Arrow(dom, cod) => **dom == *raw && is_internal_rep(cod, t),
        _ => false,
    }
}

/// `class(t)` is represented by
/// `[OwnExt := {o}, Ext = unit → {o}]` with `o` representing `obj(t)`.
fn is_class_rep(internal: &Mono, t: &Mono) -> bool {
    let fs = match internal {
        Mono::Record(fs) => fs,
        _ => return false,
    };
    if fs.len() != 2 {
        return false;
    }
    let own = match fs.get(&Label::new("OwnExt")) {
        Some(FieldTy { mutable: true, ty }) => ty,
        _ => return false,
    };
    let ext = match fs.get(&Label::new("Ext")) {
        Some(FieldTy { mutable: false, ty }) => ty,
        _ => return false,
    };
    let own_elem = match own {
        Mono::Set(e) => e,
        _ => return false,
    };
    let ext_elem = match ext {
        Mono::Arrow(dom, cod) => match (&**dom, &**cod) {
            (Mono::Unit, Mono::Set(e)) => e,
            _ => return false,
        },
        _ => return false,
    };
    let obj_ty = Mono::obj(t.clone());
    is_internal_rep(own_elem, &obj_ty) && is_internal_rep(ext_elem, &obj_ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj_rep_of(raw: Mono, view: Mono) -> Mono {
        Mono::pair(raw.clone(), Mono::arrow(raw, view))
    }

    #[test]
    fn base_types_represent_themselves() {
        assert!(is_internal_rep(&Mono::int(), &Mono::int()));
        assert!(!is_internal_rep(&Mono::int(), &Mono::bool()));
        assert!(is_internal_rep(&Mono::Unit, &Mono::Unit));
    }

    #[test]
    fn obj_rep_shape() {
        let raw = Mono::record_imm([(Label::new("a"), Mono::int())]);
        let src = Mono::obj(Mono::record_imm([(Label::new("b"), Mono::int())]));
        let good = obj_rep_of(
            raw.clone(),
            Mono::record_imm([(Label::new("b"), Mono::int())]),
        );
        assert!(is_internal_rep(&good, &src));
        // Mismatched raw domains fail.
        let bad = Mono::pair(
            raw,
            Mono::arrow(
                Mono::int(),
                Mono::record_imm([(Label::new("b"), Mono::int())]),
            ),
        );
        assert!(!is_internal_rep(&bad, &src));
    }

    #[test]
    fn nested_obj_reps() {
        // {obj(int-record)} → {pair-rep}.
        let raw = Mono::record_imm([(Label::new("x"), Mono::int())]);
        let src = Mono::set(Mono::obj(raw.clone()));
        let rep = Mono::set(obj_rep_of(raw.clone(), raw));
        assert!(is_internal_rep(&rep, &src));
    }

    #[test]
    fn class_rep_shape() {
        let view = Mono::record_imm([(Label::new("n"), Mono::str())]);
        let raw = Mono::record_imm([(Label::new("n"), Mono::str())]);
        let obj_rep = obj_rep_of(raw, view.clone());
        let class_rep = Mono::Record(
            [
                (
                    Label::new("OwnExt"),
                    FieldTy::mutable(Mono::set(obj_rep.clone())),
                ),
                (
                    Label::new("Ext"),
                    FieldTy::immutable(Mono::arrow(Mono::Unit, Mono::set(obj_rep))),
                ),
            ]
            .into_iter()
            .collect(),
        );
        assert!(is_internal_rep(&class_rep, &Mono::class(view.clone())));
        assert!(!is_internal_rep(&Mono::int(), &Mono::class(view)));
    }

    #[test]
    fn vars_match_by_identity() {
        assert!(is_internal_rep(&Mono::Var(3), &Mono::Var(3)));
        assert!(!is_internal_rep(&Mono::Var(3), &Mono::Var(4)));
    }

    #[test]
    fn records_match_fieldwise_with_mutability() {
        let a = Mono::record([(Label::new("x"), FieldTy::mutable(Mono::int()))]);
        let b = Mono::record([(Label::new("x"), FieldTy::immutable(Mono::int()))]);
        assert!(is_internal_rep(&a, &a));
        assert!(!is_internal_rep(&a, &b));
    }
}

//! The compile tier: Ohori-style index-passing lowering.
//!
//! Consumes the per-node inference results recorded in a
//! [`TypeTable`] and rewrites field operations into offset-resolved
//! forms ("A polymorphic record calculus and its compilation", TOPLAS
//! 1995, adapted to this calculus's width-exact record types):
//!
//! * `e·l` whose operand type resolved to a concrete record type becomes
//!   `DotAt(e, l, Const i)` — `i` is the label's rank in canonical field
//!   order, which every runtime value of that type shares (record types
//!   never widen, so compile-time offsets are sound).
//! * A polymorphic binding `λ`/`fix` whose scheme quantifies record-kinded
//!   variables is rewritten into *index-abstracted* form: one extra λ
//!   parameter per `(variable, required label)` pair, in binder order.
//!   Field operations on values of that variable's type use the parameter
//!   (`DotAt(e, l, Var "#i…")`); use sites of the binding supply index
//!   *arguments* synthesized from the instantiation recorded at the
//!   `Var` node — a constant when the instantiation resolved to a record
//!   type, an enclosing index parameter when it resolved to a
//!   record-kinded variable, and the sentinel `-1` when unresolvable
//!   (the evaluator then falls back to dynamic lookup, counted).
//! * Record constructions always lower to `RecordAt` with a shared
//!   [`Layout`] — labels are syntactically known, no type needed.
//!
//! Index parameters are ordinary λ-bound variables named `#i{var}.{label}`
//! (`#`-prefixed names are unreachable from the parser, so capture is
//! impossible), and index application is ordinary application — no new
//! binding forms. The invariant that makes this sound: a binding is
//! index-abstracted *iff* this pass wrapped it, and then **every** `Var`
//! occurrence of that name immediately applies all its index arguments
//! (a monomorphic recursive occurrence inside `fix` re-passes the
//! enclosing parameters; an alias `val g = f` snapshots `f`'s value
//! into a `let`-bound `#src` binder at definition time and applies the
//! indices through the snapshot, so rebinding `f` never changes `g`).
//! Non-function values are never wrapped —
//! instantiating a wrapped record would mint a fresh identity and change
//! `eq` — so bindings whose right-hand side is not a `λ`, a `fix`-bound
//! `λ`, or an alias of an already-abstracted name keep their dynamic
//! field operations as documented residue.

use polyview_syntax::{visit, Expr, Idx, Kind, Label, Layout, Mono, Name, TyVar};
use polyview_types::table::{node_id, NodeId, TypeTable};
use std::collections::HashMap;
use std::rc::Rc;

/// The index signature of an abstracted binding: one entry per extra λ
/// parameter, in binder order — `(record-kinded scheme binder, label)`.
pub type IndexSig = Vec<(TyVar, Label)>;

/// Work counters for one lowering run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Field operations and index arguments resolved to a constant offset.
    pub offsets_resolved: u64,
    /// Field operations and index arguments routed through an index
    /// parameter of an enclosing abstraction.
    pub index_params_used: u64,
    /// Bindings rewritten into index-abstracted form.
    pub index_abstractions: u64,
    /// Field operations left dynamic and index arguments emitted as the
    /// unresolved sentinel — the residue the evaluator counts at runtime.
    pub dynamic_residue: u64,
    /// Record constructions given a compile-time layout.
    pub records_lowered: u64,
}

impl LowerStats {
    pub fn merged(&self, other: &LowerStats) -> LowerStats {
        LowerStats {
            offsets_resolved: self.offsets_resolved + other.offsets_resolved,
            index_params_used: self.index_params_used + other.index_params_used,
            index_abstractions: self.index_abstractions + other.index_abstractions,
            dynamic_residue: self.dynamic_residue + other.dynamic_residue,
            records_lowered: self.records_lowered + other.records_lowered,
        }
    }
}

/// Lower a statement expression that is not itself a polymorphic binding
/// (bare expressions, class declarations). `globals` maps the names of
/// already-abstracted top-level bindings to their index signatures.
pub fn lower_statement(
    e: &Expr,
    table: &TypeTable,
    globals: &HashMap<Name, Rc<IndexSig>>,
) -> (Expr, LowerStats) {
    let mut lw = Lowerer::new(table, globals);
    let out = lw.lower(e);
    (out, lw.stats)
}

/// Lower the right-hand side of a top-level binding whose generalized
/// scheme has the given binders, index-abstracting it when possible.
/// Returns the signature iff the binding was wrapped — the caller must
/// then register it so use sites apply index arguments.
pub fn lower_binding(
    rhs: &Expr,
    binders: &[(TyVar, Kind)],
    table: &TypeTable,
    globals: &HashMap<Name, Rc<IndexSig>>,
) -> (Expr, Option<Rc<IndexSig>>, LowerStats) {
    let mut lw = Lowerer::new(table, globals);
    let sig = sig_from_binders(binders);
    if !sig.is_empty() && lw.wrappable(rhs) {
        let sig = Rc::new(sig);
        let out = lw.wrap_and_lower(rhs, &sig);
        (out, Some(sig), lw.stats)
    } else {
        let out = lw.lower(rhs);
        (out, None, lw.stats)
    }
}

/// The index signature a scheme demands: one `(variable, label)` pair per
/// field requirement of each record-kinded binder, in binder order.
pub fn sig_from_binders(binders: &[(TyVar, Kind)]) -> IndexSig {
    let mut sig = Vec::new();
    for (v, k) in binders {
        if let Kind::Record(reqs) = k {
            for l in reqs.keys() {
                sig.push((*v, l.clone()));
            }
        }
    }
    sig
}

/// The reserved name of an index parameter.
fn param_name(v: TyVar, l: &Label) -> Name {
    Label::new(format!("#i{v}.{l}"))
}

struct Lowerer<'a> {
    table: &'a TypeTable,
    globals: &'a HashMap<Name, Rc<IndexSig>>,
    /// Local binders, innermost last. `Some(sig)` marks an
    /// index-abstracted binding; `None` is a plain binder (which shadows
    /// any outer signature of the same name).
    locals: Vec<(Name, Option<Rc<IndexSig>>)>,
    /// In-scope index parameters, innermost last.
    index_params: Vec<((TyVar, Label), Name)>,
    stats: LowerStats,
}

impl<'a> Lowerer<'a> {
    fn new(table: &'a TypeTable, globals: &'a HashMap<Name, Rc<IndexSig>>) -> Self {
        Lowerer {
            table,
            globals,
            locals: Vec::new(),
            index_params: Vec::new(),
            stats: LowerStats::default(),
        }
    }

    fn sig_of(&self, x: &Name) -> Option<Rc<IndexSig>> {
        for (n, s) in self.locals.iter().rev() {
            if n == x {
                return s.clone();
            }
        }
        self.globals.get(x).cloned()
    }

    fn index_param(&self, v: TyVar, l: &Label) -> Option<Name> {
        self.index_params
            .iter()
            .rev()
            .find(|((pv, pl), _)| *pv == v && pl == l)
            .map(|(_, n)| n.clone())
    }

    /// Can this right-hand side be index-abstracted? Only function values
    /// (and aliases of abstracted names, which snapshot the source value
    /// and η-expand around it): wrapping any other value would
    /// re-evaluate it per instantiation and mint fresh record/set
    /// identities.
    fn wrappable(&self, rhs: &Expr) -> bool {
        match rhs {
            Expr::Lam(..) => true,
            Expr::Fix(_, inner) => matches!(**inner, Expr::Lam(..)),
            Expr::Var(x) => self.sig_of(x).is_some(),
            _ => false,
        }
    }

    /// Lower `rhs` with the signature's index parameters in scope and wrap
    /// the result in the index λs. For `fix f => λ…` the index λs go
    /// *inside* the `fix` (so the fixpoint value is still a λ and
    /// recursive occurrences of `f` — which are in scope with the full
    /// signature — re-pass the parameters).
    fn wrap_and_lower(&mut self, rhs: &Expr, sig: &Rc<IndexSig>) -> Expr {
        self.stats.index_abstractions += 1;
        let depth = self.index_params.len();
        for (v, l) in sig.iter() {
            self.index_params.push(((*v, l.clone()), param_name(*v, l)));
        }
        let out = match rhs {
            Expr::Fix(f, inner) if matches!(**inner, Expr::Lam(..)) => {
                self.locals.push((f.clone(), Some(sig.clone())));
                let inner_low = self.lower(inner);
                self.locals.pop();
                Expr::fix(f.clone(), wrap_index_lams(sig, inner_low))
            }
            // Alias of an abstracted binding. Bare η-expansion
            // (`λ#i… x #i…`) would leave `x` a *name* in the closure body,
            // re-resolved against the global environment on every call —
            // late binding, while `val g = x` without the tier snapshots
            // x's value at definition time. Bind the source value once
            // (`let #src = x`) and re-apply the indices through the
            // snapshot, so rebinding `x` can never reach the alias.
            Expr::Var(x) => {
                let applied = self.lower(rhs);
                let src = snapshot_name(x);
                let body = replace_app_head(applied, x, &src);
                Expr::let_(src, Expr::Var(x.clone()), wrap_index_lams(sig, body))
            }
            _ => {
                let low = self.lower(rhs);
                wrap_index_lams(sig, low)
            }
        };
        self.index_params.truncate(depth);
        out
    }

    /// The index operand for a field operation on an operand whose type
    /// was recorded at `node`, or `None` when the operation must stay
    /// dynamic.
    fn idx_for(&mut self, node: NodeId, l: &Label) -> Option<Idx> {
        match self.table.operand_types.get(&node)? {
            Mono::Record(fs) => {
                let i = fs.keys().position(|k| k == l)?;
                self.stats.offsets_resolved += 1;
                Some(Idx::Const(i))
            }
            Mono::Var(w) => {
                let p = self.index_param(*w, l)?;
                self.stats.index_params_used += 1;
                Some(Idx::Var(p))
            }
            _ => None,
        }
    }

    /// The index *argument* supplied for `(binder, label)` of a callee's
    /// signature, given the instantiation type the use site gave that
    /// binder.
    fn index_arg(&mut self, ty: &Mono, l: &Label) -> Expr {
        match ty {
            Mono::Record(fs) => {
                if let Some(i) = fs.keys().position(|k| k == l) {
                    self.stats.offsets_resolved += 1;
                    return Expr::int(i as i64);
                }
                self.stats.dynamic_residue += 1;
                Expr::int(-1)
            }
            Mono::Var(w) => match self.index_param(*w, l) {
                Some(p) => {
                    self.stats.index_params_used += 1;
                    Expr::Var(p)
                }
                None => {
                    self.stats.dynamic_residue += 1;
                    Expr::int(-1)
                }
            },
            _ => {
                self.stats.dynamic_residue += 1;
                Expr::int(-1)
            }
        }
    }

    fn lower(&mut self, e: &Expr) -> Expr {
        match e {
            Expr::Lit(_) => e.clone(),
            Expr::Var(x) => {
                let Some(sig) = self.sig_of(x) else {
                    return e.clone();
                };
                // Apply every index argument of the callee's signature.
                // The instantiation recorded at this node says what each
                // scheme binder became here; a monomorphic occurrence
                // (e.g. a recursive call) has no entry and uses the
                // binder itself, picking up the enclosing parameters.
                let inst = self.table.instantiations.get(&node_id(e));
                let mut out = Expr::Var(x.clone());
                for (v, l) in sig.iter() {
                    let ty = inst
                        .and_then(|pairs| pairs.iter().find(|(b, _)| b == v))
                        .map(|(_, t)| t.clone())
                        .unwrap_or(Mono::Var(*v));
                    let arg = self.index_arg(&ty, l);
                    out = Expr::app(out, arg);
                }
                out
            }
            Expr::Record(fields) => {
                let layout = Rc::new(Layout::new(
                    fields.iter().map(|f| (f.label.clone(), f.mutable)),
                ));
                let entries = fields
                    .iter()
                    .map(|f| {
                        let off = layout
                            .offset_of(&f.label)
                            .expect("layout built from these labels");
                        (off, self.lower(&f.expr))
                    })
                    .collect();
                self.stats.records_lowered += 1;
                Expr::RecordAt(layout, entries)
            }
            Expr::Dot(obj, l) => {
                let low = Box::new(self.lower(obj));
                match self.idx_for(node_id(e), l) {
                    Some(idx) => Expr::DotAt(low, l.clone(), idx),
                    None => {
                        self.stats.dynamic_residue += 1;
                        Expr::Dot(low, l.clone())
                    }
                }
            }
            Expr::Extract(obj, l) => {
                let low = Box::new(self.lower(obj));
                match self.idx_for(node_id(e), l) {
                    Some(idx) => Expr::ExtractAt(low, l.clone(), idx),
                    None => {
                        self.stats.dynamic_residue += 1;
                        Expr::Extract(low, l.clone())
                    }
                }
            }
            Expr::Update(obj, l, v) => {
                let low = Box::new(self.lower(obj));
                let lv = Box::new(self.lower(v));
                match self.idx_for(node_id(e), l) {
                    Some(idx) => Expr::UpdateAt(low, l.clone(), idx, lv),
                    None => {
                        self.stats.dynamic_residue += 1;
                        Expr::Update(low, l.clone(), lv)
                    }
                }
            }
            Expr::Let(x, rhs, body) => {
                let sig = self
                    .table
                    .let_schemes
                    .get(&node_id(e))
                    .map(|bs| sig_from_binders(bs))
                    .filter(|s| !s.is_empty());
                match sig {
                    Some(sig) if self.wrappable(rhs) => {
                        let sig = Rc::new(sig);
                        let wrapped = self.wrap_and_lower(rhs, &sig);
                        self.locals.push((x.clone(), Some(sig)));
                        let b = self.lower(body);
                        self.locals.pop();
                        Expr::let_(x.clone(), wrapped, b)
                    }
                    _ => {
                        let r = self.lower(rhs);
                        self.locals.push((x.clone(), None));
                        let b = self.lower(body);
                        self.locals.pop();
                        Expr::let_(x.clone(), r, b)
                    }
                }
            }
            Expr::Lam(x, b) => {
                self.locals.push((x.clone(), None));
                let lb = self.lower(b);
                self.locals.pop();
                Expr::lam(x.clone(), lb)
            }
            Expr::Fix(x, b) => {
                self.locals.push((x.clone(), None));
                let lb = self.lower(b);
                self.locals.pop();
                Expr::fix(x.clone(), lb)
            }
            Expr::Eq(a, b) => Expr::eq(self.lower(a), self.lower(b)),
            Expr::App(f, a) => Expr::app(self.lower(f), self.lower(a)),
            Expr::If(c, t, e2) => Expr::if_(self.lower(c), self.lower(t), self.lower(e2)),
            Expr::SetLit(es) => Expr::SetLit(es.iter().map(|x| self.lower(x)).collect()),
            Expr::Union(a, b) => Expr::union(self.lower(a), self.lower(b)),
            Expr::Hom(s, f, op, z) => {
                Expr::hom(self.lower(s), self.lower(f), self.lower(op), self.lower(z))
            }
            Expr::IdView(b) => Expr::IdView(Box::new(self.lower(b))),
            Expr::AsView(a, b) => Expr::as_view(self.lower(a), self.lower(b)),
            Expr::Query(a, b) => Expr::query(self.lower(a), self.lower(b)),
            Expr::Fuse(a, b) => Expr::fuse(self.lower(a), self.lower(b)),
            Expr::RelObj(fs) => Expr::RelObj(
                fs.iter()
                    .map(|(l, fe)| (l.clone(), self.lower(fe)))
                    .collect(),
            ),
            Expr::ClassExpr(cd) => Expr::ClassExpr(self.lower_class(cd)),
            Expr::CQuery(a, b) => Expr::cquery(self.lower(a), self.lower(b)),
            Expr::Insert(a, b) => Expr::insert(self.lower(a), self.lower(b)),
            Expr::Delete(a, b) => Expr::delete(self.lower(a), self.lower(b)),
            Expr::LetClasses(binds, body) => {
                // Mirror inference: every class name is in scope for every
                // member definition and the body (all plain binders).
                let depth = self.locals.len();
                for (n, _) in binds {
                    self.locals.push((n.clone(), None));
                }
                let lowered_binds = binds
                    .iter()
                    .map(|(n, cd)| (n.clone(), self.lower_class(cd)))
                    .collect();
                let lb = self.lower(body);
                self.locals.truncate(depth);
                Expr::LetClasses(lowered_binds, Box::new(lb))
            }
            // Already lowered (idempotence guard; a second pass is a no-op
            // on these).
            Expr::DotAt(b, l, i) => Expr::DotAt(Box::new(self.lower(b)), l.clone(), i.clone()),
            Expr::ExtractAt(b, l, i) => {
                Expr::ExtractAt(Box::new(self.lower(b)), l.clone(), i.clone())
            }
            Expr::UpdateAt(b, l, i, v) => Expr::UpdateAt(
                Box::new(self.lower(b)),
                l.clone(),
                i.clone(),
                Box::new(self.lower(v)),
            ),
            Expr::RecordAt(layout, fs) => Expr::RecordAt(
                layout.clone(),
                fs.iter().map(|(off, fe)| (*off, self.lower(fe))).collect(),
            ),
        }
    }

    fn lower_class(&mut self, cd: &polyview_syntax::ClassDef) -> polyview_syntax::ClassDef {
        polyview_syntax::ClassDef {
            own: Box::new(self.lower(&cd.own)),
            includes: cd
                .includes
                .iter()
                .map(|inc| polyview_syntax::IncludeClause {
                    sources: inc.sources.iter().map(|s| self.lower(s)).collect(),
                    view: self.lower(&inc.view),
                    pred: self.lower(&inc.pred),
                })
                .collect(),
        }
    }
}

fn wrap_index_lams(sig: &IndexSig, body: Expr) -> Expr {
    sig.iter()
        .rev()
        .fold(body, |acc, (v, l)| Expr::lam(param_name(*v, l), acc))
}

/// The reserved name binding an alias's definition-time snapshot of its
/// source value.
fn snapshot_name(src: &Name) -> Name {
    Label::new(format!("#src.{src}"))
}

/// Replace the head variable of an application spine: `x a₁ … aₙ` with
/// head `from` becomes `to a₁ … aₙ`. Used to route an alias's index
/// application through its snapshot binder.
fn replace_app_head(e: Expr, from: &Name, to: &Name) -> Expr {
    match e {
        Expr::App(f, a) => Expr::app(replace_app_head(*f, from, to), *a),
        Expr::Var(x) if &x == from => Expr::Var(to.clone()),
        other => other,
    }
}

/// Human-readable rows describing every field operation of a compiled
/// statement — resolved offsets, index parameters, layouts, and dynamic
/// residue. Rendered by the REPL's `:explain`.
pub fn offset_report(e: &Expr) -> Vec<String> {
    let mut rows = Vec::new();
    visit::walk(e, &mut |n| match n {
        Expr::DotAt(_, l, idx) => rows.push(format!("dot .{l} {}", show_idx(idx))),
        Expr::ExtractAt(_, l, idx) => rows.push(format!("extract .{l} {}", show_idx(idx))),
        Expr::UpdateAt(_, l, idx, _) => rows.push(format!("update .{l} {}", show_idx(idx))),
        Expr::RecordAt(layout, _) => rows.push(format!("record {layout}")),
        Expr::Dot(_, l) => rows.push(format!("dot .{l} dynamic")),
        Expr::Extract(_, l) => rows.push(format!("extract .{l} dynamic")),
        Expr::Update(_, l, _) => rows.push(format!("update .{l} dynamic")),
        Expr::Record(fs) => rows.push(format!("record dynamic ({} fields)", fs.len())),
        _ => {}
    });
    rows
}

fn show_idx(i: &Idx) -> String {
    match i {
        Idx::Const(n) => format!("@{n}"),
        Idx::Var(x) => format!("@{x}"),
    }
}

/// Convenience used by tests and the differential harness: does the
/// expression still contain any un-lowered field operation?
pub fn has_dynamic_field_ops(e: &Expr) -> bool {
    let mut found = false;
    visit::walk(e, &mut |n| {
        if matches!(
            n,
            Expr::Dot(..) | Expr::Extract(..) | Expr::Update(..) | Expr::Record(_)
        ) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;
    use polyview_types::{builtins_sig, Infer};

    /// Run inference with recording on, as the engine does, and return
    /// the table (the expression must be kept alive by the caller).
    fn infer_table(e: &Expr) -> (polyview_syntax::Scheme, Box<TypeTable>) {
        let mut cx = Infer::new();
        cx.enable_table();
        let mut env = builtins_sig::builtin_env();
        let s = cx.infer_scheme(&mut env, e).expect("well-typed");
        (s, cx.take_table().expect("table enabled"))
    }

    fn no_globals() -> HashMap<Name, Rc<IndexSig>> {
        HashMap::new()
    }

    #[test]
    fn monomorphic_dot_gets_constant_offset() {
        // let joe = [Name = "J", Salary := 2] in joe.Salary end
        let e = b::let_(
            "joe",
            b::record([b::imm("Name", b::str("J")), b::mt("Salary", b::int(2))]),
            b::dot(b::v("joe"), "Salary"),
        );
        let (_, table) = infer_table(&e);
        let (low, stats) = lower_statement(&e, &table, &no_globals());
        assert!(!has_dynamic_field_ops(&low));
        assert_eq!(stats.offsets_resolved, 1);
        assert_eq!(stats.records_lowered, 1);
        assert_eq!(stats.dynamic_residue, 0);
        // Salary is rank 1 (after Name).
        let mut saw = false;
        visit::walk(&low, &mut |n| {
            if let Expr::DotAt(_, l, Idx::Const(i)) = n {
                assert_eq!(l.as_str(), "Salary");
                assert_eq!(*i, 1);
                saw = true;
            }
        });
        assert!(saw, "expected a DotAt in {low}");
    }

    #[test]
    fn polymorphic_binding_is_index_abstracted() {
        // λp. p.Income * 12 + p.Bonus : ∀t::[[Bonus, Income]]. t → int
        let f = b::lam(
            "p",
            b::add(
                b::mul(b::dot(b::v("p"), "Income"), b::int(12)),
                b::dot(b::v("p"), "Bonus"),
            ),
        );
        let (scheme, table) = infer_table(&f);
        let (low, sig, stats) = lower_binding(&f, &scheme.binders, &table, &no_globals());
        let sig = sig.expect("record-kinded scheme must abstract");
        // Two labels in the kind → two index parameters, and both dots go
        // through them (kind field order: Bonus before Income).
        assert_eq!(sig.len(), 2);
        assert_eq!(sig[0].1.as_str(), "Bonus");
        assert_eq!(sig[1].1.as_str(), "Income");
        assert_eq!(stats.index_params_used, 2);
        assert_eq!(stats.dynamic_residue, 0);
        assert!(stats.index_abstractions == 1);
        // Shape: λ#i.λ#i.λp. …
        match &low {
            Expr::Lam(p1, inner) => {
                assert!(p1.as_str().starts_with("#i"));
                assert!(matches!(**inner, Expr::Lam(..)));
            }
            other => panic!("expected index λ, got {other}"),
        }
        assert!(!has_dynamic_field_ops(&low));
    }

    #[test]
    fn use_site_supplies_constant_index_arguments() {
        // let f = λp. p.Bonus in f [Bonus = 7, Zed = 1] end
        let e = b::let_(
            "f",
            b::lam("p", b::dot(b::v("p"), "Bonus")),
            b::app(
                b::v("f"),
                b::record([b::imm("Bonus", b::int(7)), b::imm("Zed", b::int(1))]),
            ),
        );
        let (_, table) = infer_table(&e);
        let (low, stats) = lower_statement(&e, &table, &no_globals());
        assert!(!has_dynamic_field_ops(&low));
        assert_eq!(stats.dynamic_residue, 0);
        // The call must apply the constant 0 (Bonus's rank in the record)
        // before the real argument.
        let mut saw_const_arg = false;
        visit::walk(&low, &mut |n| {
            if let Expr::App(fun, arg) = n {
                if matches!(**fun, Expr::Var(ref x) if x.as_str() == "f")
                    && matches!(**arg, Expr::Lit(polyview_syntax::Lit::Int(0)))
                {
                    saw_const_arg = true;
                }
            }
        });
        assert!(saw_const_arg, "index argument not supplied in {low}");
    }

    #[test]
    fn recursive_function_repasses_its_index_parameters() {
        // fix go => λr. if r.Stop then 0 else go r
        let f = Expr::fix(
            "go",
            b::lam(
                "r",
                b::if_(
                    b::dot(b::v("r"), "Stop"),
                    b::int(0),
                    b::app(b::v("go"), b::v("r")),
                ),
            ),
        );
        let (scheme, table) = infer_table(&f);
        let (low, sig, stats) = lower_binding(&f, &scheme.binders, &table, &no_globals());
        assert!(sig.is_some());
        assert_eq!(stats.dynamic_residue, 0);
        // Index λs are inside the fix, and the recursive call re-passes
        // the parameter: (go #iN.Stop) r.
        match &low {
            Expr::Fix(_, inner) => match &**inner {
                Expr::Lam(p, _) => assert!(p.as_str().starts_with("#i")),
                other => panic!("expected index λ inside fix, got {other}"),
            },
            other => panic!("expected fix, got {other}"),
        }
        let mut rec_call_indexed = false;
        visit::walk(&low, &mut |n| {
            if let Expr::App(fun, arg) = n {
                if matches!(**fun, Expr::Var(ref x) if x.as_str() == "go")
                    && matches!(**arg, Expr::Var(ref a) if a.as_str().starts_with("#i"))
                {
                    rec_call_indexed = true;
                }
            }
        });
        assert!(
            rec_call_indexed,
            "recursive call not index-applied in {low}"
        );
    }

    #[test]
    fn unresolvable_instantiation_gets_the_sentinel() {
        // let f = λx. x.a in f end — the trailing use never fixes x's
        // type, so the index argument cannot be resolved.
        let e = b::let_("f", b::lam("x", b::dot(b::v("x"), "a")), b::v("f"));
        let (_, table) = infer_table(&e);
        let (low, stats) = lower_statement(&e, &table, &no_globals());
        assert!(stats.dynamic_residue >= 1);
        let mut saw_sentinel = false;
        visit::walk(&low, &mut |n| {
            if let Expr::App(_, arg) = n {
                if matches!(**arg, Expr::Lit(polyview_syntax::Lit::Int(-1))) {
                    saw_sentinel = true;
                }
            }
        });
        assert!(saw_sentinel, "expected sentinel arg in {low}");
    }

    #[test]
    fn alias_of_abstracted_binding_snapshots_and_eta_expands() {
        // Global f is abstracted over (t, Bonus); val g = f must become
        // let #src = f in λ#i. #src #i end — an index-taking function
        // again, but one that captured f's *value* at definition time
        // (referencing f by name in the λ body would late-bind: rebinding
        // f would change g's behaviour, which tier-off semantics forbid).
        let g_rhs = b::v("f");
        let mut cx = Infer::new();
        cx.enable_table();
        let mut env = builtins_sig::builtin_env();
        // f : ∀t::[[Bonus = int]]. t → int, as if previously declared.
        let f_scheme = polyview_syntax::Scheme::poly(
            vec![(77, Kind::has_field(Label::new("Bonus"), Mono::int()))],
            Mono::arrow(Mono::Var(77), Mono::int()),
        );
        env.push(Label::new("f"), f_scheme);
        let scheme = cx.infer_scheme(&mut env, &g_rhs).expect("well-typed");
        let table = cx.take_table().expect("table");
        let mut globals = HashMap::new();
        globals.insert(Label::new("f"), Rc::new(vec![(77, Label::new("Bonus"))]));
        let (low, sig, stats) = lower_binding(&g_rhs, &scheme.binders, &table, &globals);
        let sig = sig.expect("alias of abstracted binding must abstract");
        assert_eq!(sig.len(), 1);
        assert_eq!(stats.index_params_used, 1);
        assert_eq!(stats.dynamic_residue, 0);
        // let #src.f = f in λ#i. (#src.f #i) end
        match &low {
            Expr::Let(src, rhs, body) => {
                assert_eq!(src.as_str(), "#src.f");
                assert!(
                    matches!(**rhs, Expr::Var(ref x) if x.as_str() == "f"),
                    "snapshot must bind the bare source, got {rhs}"
                );
                match &**body {
                    Expr::Lam(p, inner) => {
                        assert!(p.as_str().starts_with("#i"));
                        match &**inner {
                            Expr::App(fun, arg) => {
                                assert!(
                                    matches!(**fun, Expr::Var(ref x) if x == src),
                                    "index application must go through the snapshot, got {fun}"
                                );
                                assert!(matches!(**arg, Expr::Var(ref a) if a == p));
                            }
                            other => panic!("expected application, got {other}"),
                        }
                    }
                    other => panic!("expected index λ, got {other}"),
                }
            }
            other => panic!("expected snapshot let, got {other}"),
        }
    }

    #[test]
    fn non_function_polymorphic_value_is_not_wrapped() {
        // A set of functions is nonexpansive and record-kinded, but must
        // not be wrapped (instantiation would rebuild the set).
        let e = b::set([b::lam("x", b::dot(b::v("x"), "a"))]);
        let (scheme, table) = infer_table(&e);
        assert!(!sig_from_binders(&scheme.binders).is_empty());
        let (low, sig, _) = lower_binding(&e, &scheme.binders, &table, &no_globals());
        assert!(sig.is_none());
        assert!(matches!(low, Expr::SetLit(_)));
    }

    #[test]
    fn offset_report_lists_resolved_and_dynamic_rows() {
        let e = b::let_(
            "joe",
            b::record([b::imm("Name", b::str("J"))]),
            b::dot(b::v("joe"), "Name"),
        );
        let (_, table) = infer_table(&e);
        let (low, _) = lower_statement(&e, &table, &no_globals());
        let rows = offset_report(&low);
        assert!(rows.iter().any(|r| r.contains("dot .Name @0")), "{rows:?}");
        assert!(
            rows.iter().any(|r| r.contains("record [Name@0]")),
            "{rows:?}"
        );
    }

    #[test]
    fn shadowing_disables_index_application() {
        // Global f abstracted; λf. f r must NOT index-apply the parameter.
        let e = b::lam("f", b::app(b::v("f"), b::int(1)));
        let (_, table) = infer_table(&e);
        let mut globals = HashMap::new();
        globals.insert(Label::new("f"), Rc::new(vec![(5u32, Label::new("a"))]));
        let (low, stats) = lower_statement(&e, &table, &globals);
        assert_eq!(stats.dynamic_residue, 0);
        // The body must be exactly (f 1) — no index args inserted.
        match &low {
            Expr::Lam(_, body) => match &**body {
                Expr::App(fun, _) => {
                    assert!(matches!(**fun, Expr::Var(_)), "got {low}")
                }
                other => panic!("unexpected body {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }
}

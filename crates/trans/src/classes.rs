//! Fig. 5 and Section 4.4: translation of classes into the object language.
//!
//! A class becomes a record `[OwnExt := S, Ext = λ().…]`. We realize the
//! mutable own extent with an indirection cell so that the delayed `Ext`
//! computation reads the *current* extent (the paper's own `extract`
//! L-value sharing makes this expressible in the language itself):
//!
//! ```text
//! tr(class S include C … as e where p … end) =
//!   let cell = [V := tr(S)] in
//!   let src  = tr(C) in … let view = tr(e) in let pred = tr(p) in …
//!   [OwnExt := extract(cell, V),
//!    Ext = λ().  cell·V ∪ₒ (select as view
//!                           from intersect((src·Ext)(), …)
//!                           where pred) ∪ₒ …]
//! ```
//!
//! where `∪ₒ` is the objeq-collapsing left-biased union of Section 3.1,
//! itself definable in the object language. Recursive groups build the
//! `f^i(L)` functions of Section 4.4 with `L` represented as a set of
//! integer class indices; `member`/`union` on `{int}` implement the
//! visited-set test, giving the termination argument of Prop. 5 its literal
//! executable form.

use crate::views::fresh;
use polyview_syntax::sugar;
use polyview_syntax::{ClassDef, Expr, Field, IncludeClause, Label, Name};
use std::collections::HashMap;

const OWN_EXT: &str = "OwnExt";
const EXT: &str = "Ext";
const CELL_FIELD: &str = "V";

/// `memberraw(x, S)` — does `S` contain an object with `x`'s raw object?
fn member_raw(x: Expr, s: Expr) -> Expr {
    let y = fresh("c_y");
    Expr::hom(
        s,
        Expr::lam(y.clone(), sugar::objeq(x, Expr::Var(y))),
        or2(),
        Expr::bool(false),
    )
}

fn or2() -> Expr {
    let a = fresh("c_oa");
    let b = fresh("c_ob");
    Expr::lam(
        a.clone(),
        Expr::lam(b.clone(), sugar::or(Expr::Var(a), Expr::Var(b))),
    )
}

fn union2() -> Expr {
    let a = fresh("c_ua");
    let b = fresh("c_ub");
    Expr::lam(
        a.clone(),
        Expr::lam(b.clone(), Expr::union(Expr::Var(a), Expr::Var(b))),
    )
}

/// Left-biased objeq-collapsing union on sets of objects:
/// `S1 ∪ { x ∈ S2 | raw(x) ∉ raws(S1) }`.
fn union_obj(s1: Expr, s2: Expr) -> Expr {
    let a = fresh("c_l");
    let x = fresh("c_x");
    Expr::let_(
        a.clone(),
        s1,
        Expr::union(
            Expr::Var(a.clone()),
            sugar::filter(
                Expr::lam(
                    x.clone(),
                    sugar::not(member_raw(Expr::Var(x), Expr::Var(a))),
                ),
                s2,
            ),
        ),
    )
}

/// n-ary flat fuse of object *expressions*: a set with the single fused
/// object carrying the flat `[1 = …, …, m = …]` tuple view when all raws
/// coincide, empty otherwise. For `m = 1`, the singleton of the object.
fn fuse_flat(objs: Vec<Expr>) -> Expr {
    let m = objs.len();
    assert!(m >= 1);
    if m == 1 {
        return Expr::set(objs);
    }
    let mut it = objs.into_iter();
    let first = it.next().expect("m >= 1");
    let second = it.next().expect("m >= 2");
    // Chain binary fuses: set of nested-pair-view objects.
    let mut acc = Expr::fuse(first, second);
    for o in it {
        let f = fresh("c_f");
        acc = Expr::hom(
            acc,
            Expr::lam(f.clone(), Expr::fuse(Expr::Var(f), o)),
            union2(),
            Expr::empty_set(),
        );
    }
    if m == 2 {
        // Binary fuse already presents the flat pair view.
        return acc;
    }
    // Flatten the left-nested pair view ((…(v1,v2)…),vm) into [1…m].
    let p = fresh("c_p");
    let fields: Vec<Field> = (1..=m)
        .map(|j| {
            let mut path = Expr::Var(p.clone());
            for _ in 0..(m - j) {
                path = Expr::proj(path, 1);
            }
            if j > 1 {
                path = Expr::proj(path, 2);
            }
            Field::immutable(Label::tuple(j), path)
        })
        .collect();
    let flat = Expr::lam(p, Expr::Record(fields));
    let o = fresh("c_o");
    sugar::map(Expr::lam(o.clone(), Expr::as_view(Expr::Var(o), flat)), acc)
}

/// The candidate set of an include clause: the n-ary intersection of the
/// source extents (each an expression of type `{obj(τ)}`).
fn intersect_exts(exts: Vec<Expr>) -> Expr {
    let m = exts.len();
    assert!(m >= 1);
    if m == 1 {
        return exts.into_iter().next().expect("m = 1");
    }
    let xx = fresh("c_X");
    let components: Vec<Expr> = (1..=m)
        .map(|j| Expr::proj(Expr::Var(xx.clone()), j))
        .collect();
    Expr::hom(
        sugar::prod(exts),
        Expr::lam(xx, fuse_flat(components)),
        union2(),
        Expr::empty_set(),
    )
}

/// How an include source's extent is computed inside `Ext`.
enum SourceExt {
    /// An external class value bound to this variable: `(src·Ext)()`.
    External(Name),
    /// Recursive sibling with this index: the `f^a(L ∪ {a})()` call.
    Recursive(usize),
}

struct IncludePlan {
    sources: Vec<SourceExt>,
    view_var: Name,
    pred_var: Name,
}

/// Build the body of `Ext` (after the λ()): own ∪ₒ select₁ ∪ₒ … ∪ₒ selectₙ.
/// `l_var` is the visited-set variable for recursive groups (`None` for
/// plain classes), `fn_names[i]` the recursive function bound for sibling
/// `i`.
fn ext_body(cell: &Name, plans: &[IncludePlan], l_var: Option<&Name>, fn_names: &[Name]) -> Expr {
    let mut acc = Expr::dot(Expr::Var(cell.clone()), CELL_FIELD);
    for plan in plans {
        let exts: Vec<Expr> = plan
            .sources
            .iter()
            .map(|s| match s {
                SourceExt::External(v) => {
                    Expr::app(Expr::dot(Expr::Var(v.clone()), EXT), Expr::unit())
                }
                SourceExt::Recursive(a) => {
                    let l = l_var.expect("recursive source outside a recursive group");
                    let idx = Expr::int(*a as i64 + 1);
                    Expr::if_(
                        sugar::member(idx.clone(), Expr::Var(l.clone())),
                        Expr::empty_set(),
                        Expr::app(
                            Expr::app(
                                Expr::Var(fn_names[*a].clone()),
                                Expr::union(Expr::Var(l.clone()), Expr::set([idx])),
                            ),
                            Expr::unit(),
                        ),
                    )
                }
            })
            .collect();
        let candidates = intersect_exts(exts);
        let selected = sugar::select_as_from_where(
            Expr::Var(plan.view_var.clone()),
            candidates,
            Expr::Var(plan.pred_var.clone()),
        );
        acc = union_obj(acc, selected);
    }
    acc
}

/// Translate one class definition into lets + the class record, for the
/// non-recursive form (`rec` empty) or as the body skeleton of a recursive
/// group member.
struct ClassParts {
    /// `let` bindings (name, rhs), innermost last.
    lets: Vec<(Name, Expr)>,
    cell: Name,
    plans: Vec<IncludePlan>,
}

fn lower_class_def(cd: &ClassDef, rec_index: &HashMap<Name, usize>) -> ClassParts {
    let cell = fresh("c_cell");
    let mut lets = vec![(
        cell.clone(),
        Expr::Record(vec![Field::mutable(
            Label::new(CELL_FIELD),
            translate_classes(&cd.own),
        )]),
    )];
    let mut plans = Vec::with_capacity(cd.includes.len());
    for IncludeClause {
        sources,
        view,
        pred,
    } in &cd.includes
    {
        let mut plan_sources = Vec::with_capacity(sources.len());
        for s in sources {
            if let Expr::Var(name) = s {
                if let Some(&i) = rec_index.get(name) {
                    plan_sources.push(SourceExt::Recursive(i));
                    continue;
                }
            }
            let v = fresh("c_src");
            lets.push((v.clone(), translate_classes(s)));
            plan_sources.push(SourceExt::External(v));
        }
        let view_var = fresh("c_view");
        lets.push((view_var.clone(), translate_classes(view)));
        let pred_var = fresh("c_pred");
        lets.push((pred_var.clone(), translate_classes(pred)));
        plans.push(IncludePlan {
            sources: plan_sources,
            view_var,
            pred_var,
        });
    }
    ClassParts { lets, cell, plans }
}

fn wrap_lets(lets: Vec<(Name, Expr)>, body: Expr) -> Expr {
    lets.into_iter()
        .rev()
        .fold(body, |acc, (n, rhs)| Expr::let_(n, rhs, acc))
}

/// The class record `[OwnExt := extract(cell, V), Ext = ext]`.
fn class_record(cell: &Name, ext: Expr) -> Expr {
    Expr::Record(vec![
        Field::mutable(
            Label::new(OWN_EXT),
            Expr::extract(Expr::Var(cell.clone()), CELL_FIELD),
        ),
        Field::immutable(Label::new(EXT), ext),
    ])
}

/// Eliminate all class constructs, producing an object-language term.
pub fn translate_classes(e: &Expr) -> Expr {
    match e {
        Expr::ClassExpr(cd) => {
            let parts = lower_class_def(cd, &HashMap::new());
            let ext = Expr::thunk(ext_body(&parts.cell, &parts.plans, None, &[]));
            let record = class_record(&parts.cell, ext);
            wrap_lets(parts.lets, record)
        }
        Expr::CQuery(f, c) => Expr::app(
            translate_classes(f),
            Expr::app(Expr::dot(translate_classes(c), EXT), Expr::unit()),
        ),
        Expr::Insert(c, obj) => {
            // tr: update(C, OwnExt, C·OwnExt ∪ₒ {tr(e)}).
            let cv = fresh("c_c");
            let pv = fresh("c_e");
            Expr::let_(
                cv.clone(),
                translate_classes(c),
                Expr::let_(
                    pv.clone(),
                    translate_classes(obj),
                    Expr::update(
                        Expr::Var(cv.clone()),
                        OWN_EXT,
                        union_obj(
                            Expr::dot(Expr::Var(cv), OWN_EXT),
                            Expr::set([Expr::Var(pv)]),
                        ),
                    ),
                ),
            )
        }
        Expr::Delete(c, obj) => {
            // remove by objeq: keep the own-extent members whose raw
            // differs from tr(e)'s.
            let cv = fresh("c_c");
            let pv = fresh("c_e");
            let x = fresh("c_x");
            Expr::let_(
                cv.clone(),
                translate_classes(c),
                Expr::let_(
                    pv.clone(),
                    translate_classes(obj),
                    Expr::update(
                        Expr::Var(cv.clone()),
                        OWN_EXT,
                        sugar::filter(
                            Expr::lam(
                                x.clone(),
                                sugar::not(sugar::objeq(Expr::Var(x), Expr::Var(pv))),
                            ),
                            Expr::dot(Expr::Var(cv), OWN_EXT),
                        ),
                    ),
                ),
            )
        }
        Expr::LetClasses(binds, body) => {
            let rec_index: HashMap<Name, usize> = binds
                .iter()
                .enumerate()
                .map(|(i, (n, _))| (n.clone(), i))
                .collect();
            let mut all_lets = Vec::new();
            let mut member_parts = Vec::with_capacity(binds.len());
            for (_, cd) in binds {
                let parts = lower_class_def(cd, &rec_index);
                all_lets.extend(parts.lets.clone());
                member_parts.push(parts);
            }
            // The mutually recursive f^i functions of Section 4.4.
            let fn_names: Vec<Name> = (0..binds.len()).map(|_| fresh("c_fn")).collect();
            let l_param = fresh("c_L");
            let defs: Vec<(Label, Label, Expr)> = member_parts
                .iter()
                .zip(&fn_names)
                .map(|(parts, fname)| {
                    let body = Expr::thunk(ext_body(
                        &parts.cell,
                        &parts.plans,
                        Some(&l_param),
                        &fn_names,
                    ));
                    (fname.clone(), l_param.clone(), body)
                })
                .collect();
            // Bind class records: c_i = [OwnExt := extract(cell_i, V),
            //                            Ext = (f_i {i})].
            let mut inner = translate_classes(body);
            for (i, ((name, _), parts)) in binds.iter().zip(&member_parts).enumerate().rev() {
                let ext = Expr::app(
                    Expr::Var(fn_names[i].clone()),
                    Expr::set([Expr::int(i as i64 + 1)]),
                );
                inner = Expr::let_(name.clone(), class_record(&parts.cell, ext), inner);
            }
            let with_funs = sugar::fun_and(defs, inner);
            wrap_lets(all_lets, with_funs)
        }

        // ----- homomorphic cases -----
        Expr::Lit(_) | Expr::Var(_) => e.clone(),
        Expr::Eq(a, b) => Expr::eq(translate_classes(a), translate_classes(b)),
        Expr::Lam(x, b) => Expr::lam(x.clone(), translate_classes(b)),
        Expr::App(f, a) => Expr::app(translate_classes(f), translate_classes(a)),
        Expr::Record(fs) => Expr::Record(
            fs.iter()
                .map(|f| Field {
                    label: f.label.clone(),
                    mutable: f.mutable,
                    expr: translate_classes(&f.expr),
                })
                .collect(),
        ),
        Expr::Dot(b, l) => Expr::Dot(Box::new(translate_classes(b)), l.clone()),
        Expr::Extract(b, l) => Expr::Extract(Box::new(translate_classes(b)), l.clone()),
        Expr::Update(b, l, v) => Expr::Update(
            Box::new(translate_classes(b)),
            l.clone(),
            Box::new(translate_classes(v)),
        ),
        Expr::SetLit(es) => Expr::SetLit(es.iter().map(translate_classes).collect()),
        Expr::Union(a, b) => Expr::union(translate_classes(a), translate_classes(b)),
        Expr::Hom(s, f, op, z) => Expr::hom(
            translate_classes(s),
            translate_classes(f),
            translate_classes(op),
            translate_classes(z),
        ),
        Expr::Fix(x, b) => Expr::fix(x.clone(), translate_classes(b)),
        Expr::Let(x, r, b) => Expr::Let(
            x.clone(),
            Box::new(translate_classes(r)),
            Box::new(translate_classes(b)),
        ),
        Expr::If(c, t, e2) => Expr::if_(
            translate_classes(c),
            translate_classes(t),
            translate_classes(e2),
        ),
        Expr::IdView(b) => Expr::IdView(Box::new(translate_classes(b))),
        Expr::AsView(a, b) => Expr::as_view(translate_classes(a), translate_classes(b)),
        Expr::Query(a, b) => Expr::query(translate_classes(a), translate_classes(b)),
        Expr::Fuse(a, b) => Expr::fuse(translate_classes(a), translate_classes(b)),
        Expr::RelObj(fs) => Expr::RelObj(
            fs.iter()
                .map(|(l, e)| (l.clone(), translate_classes(e)))
                .collect(),
        ),

        // ----- lowered forms (offset-resolved; structure-preserving) -----
        Expr::DotAt(b, l, i) => Expr::DotAt(Box::new(translate_classes(b)), l.clone(), i.clone()),
        Expr::ExtractAt(b, l, i) => {
            Expr::ExtractAt(Box::new(translate_classes(b)), l.clone(), i.clone())
        }
        Expr::UpdateAt(b, l, i, v) => Expr::UpdateAt(
            Box::new(translate_classes(b)),
            l.clone(),
            i.clone(),
            Box::new(translate_classes(v)),
        ),
        Expr::RecordAt(layout, fs) => Expr::RecordAt(
            layout.clone(),
            fs.iter()
                .map(|(off, fe)| (*off, translate_classes(fe)))
                .collect(),
        ),
    }
}

/// Does the expression still contain any class construct?
pub fn has_class_constructs(e: &Expr) -> bool {
    let mut found = false;
    polyview_syntax::visit::walk(e, &mut |n| {
        if matches!(
            n,
            Expr::ClassExpr(_)
                | Expr::CQuery(..)
                | Expr::Insert(..)
                | Expr::Delete(..)
                | Expr::LetClasses(..)
        ) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;

    fn simple_class() -> Expr {
        b::class(
            b::set([b::id_view(b::record([b::imm("Name", b::str("A"))]))]),
            vec![],
        )
    }

    #[test]
    fn class_translation_removes_class_constructs() {
        let t = translate_classes(&simple_class());
        assert!(!has_class_constructs(&t));
    }

    #[test]
    fn class_record_has_ownext_and_ext() {
        let t = translate_classes(&simple_class());
        let printed = t.to_string();
        assert!(printed.contains("OwnExt := extract("), "got: {printed}");
        assert!(printed.contains("Ext = fn _unit =>"), "got: {printed}");
    }

    #[test]
    fn cquery_translation_forces_ext() {
        let t = translate_classes(&b::cquery(b::lam("s", b::v("s")), simple_class()));
        assert!(!has_class_constructs(&t));
        let printed = t.to_string();
        assert!(printed.contains(".Ext ()"), "got: {printed}");
    }

    #[test]
    fn include_translation_mentions_sources_once() {
        let e = b::let_(
            "Src",
            simple_class(),
            b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Src")],
                    b::lam("x", b::v("x")),
                    b::lam("x", b::boolean(true)),
                )],
            ),
        );
        let t = translate_classes(&e);
        assert!(!has_class_constructs(&t));
    }

    #[test]
    fn recursive_group_builds_visited_set_functions() {
        let idv = || b::lam("x", b::v("x"));
        let tp = || b::lam("x", b::boolean(true));
        let e = b::let_classes(
            vec![
                (
                    "A",
                    b::class(b::empty(), vec![b::include(vec![b::v("B")], idv(), tp())]),
                ),
                (
                    "B",
                    b::class(b::empty(), vec![b::include(vec![b::v("A")], idv(), tp())]),
                ),
            ],
            b::cquery(b::lam("s", b::v("s")), b::v("A")),
        );
        let t = translate_classes(&e);
        assert!(!has_class_constructs(&t));
        // Translation must be closed: the class names were eliminated.
        assert!(polyview_syntax::visit::free_vars(&t).is_empty());
    }

    #[test]
    fn full_pipeline_is_pure_core() {
        let e = b::cquery(b::lam("s", b::v("s")), simple_class());
        let t = crate::translate(&e);
        assert!(!has_class_constructs(&t));
        assert!(!crate::views::has_view_constructs(&t));
    }

    #[test]
    fn fuse_flat_unary_is_singleton() {
        let t = fuse_flat(vec![b::v("o")]);
        assert_eq!(t, b::set([b::v("o")]));
    }

    #[test]
    fn fuse_flat_ternary_flattens() {
        let t = fuse_flat(vec![b::v("a"), b::v("b"), b::v("c")]);
        let printed = t.to_string();
        // Flattening view builds [1 = p.1.1, 2 = p.1.2, 3 = p.2].
        assert!(printed.contains("1 = "), "got: {printed}");
        assert!(printed.contains(".1.1"), "got: {printed}");
        assert!(printed.contains(".1.2"), "got: {printed}");
    }
}

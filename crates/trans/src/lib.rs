//! The paper's translation semantics.
//!
//! * [`views`] implements Fig. 3: objects become pairs
//!   `(raw object, viewing function)` and the object algebra becomes core
//!   record/function code.
//! * [`classes`] implements Fig. 5 and the recursive `f^i` construction of
//!   Section 4.4: classes become records
//!   `[OwnExt := S, Ext = λ().…]` in the *object* language.
//! * [`internal_rep`] implements the type-level relation of Prop. 3/4: is a
//!   translated type an internal representation of a source type?
//! * [`lower`] implements the compile tier: Ohori-style index-passing
//!   lowering that resolves field operations to integer offsets using the
//!   per-node results recorded during inference.
//!
//! The full pipeline `translate` composes the two stages (classes first,
//! then views), yielding a pure core-language term. Together with
//! re-typechecking, this demonstrates Props. 3 and 4 executably; running
//! translated programs against the native evaluator demonstrates semantic
//! agreement.
//!
//! One divergence from a naive reading of Fig. 3/5 is deliberate: where the
//! figures duplicate `tr(e)` syntactically (e.g. `tr(e1)·1 … tr(e1)·2`), we
//! bind `tr(e)` once with `let` — re-evaluating a record expression would
//! mint a fresh identity and break object equality. The class layer
//! likewise uses an *objeq-collapsing, left-biased* union (definable in the
//! object language) wherever the paper writes `union` over sets of objects,
//! which is exactly the set semantics chosen in Section 3.1.

pub mod classes;
pub mod internal_rep;
pub mod lower;
pub mod views;

pub use lower::{
    lower_binding, lower_statement, offset_report, sig_from_binders, IndexSig, LowerStats,
};

use polyview_syntax::{visit, Expr};

/// Node counts before and after translation. The translated size is the
/// honest cost of the Fig. 3/5 encoding (let-bound pairs, `f^i` closures),
/// surfaced per statement through the observability layer (DESIGN.md §9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransStats {
    /// AST nodes in the source term.
    pub source_size: u64,
    /// AST nodes in the fully translated core term.
    pub translated_size: u64,
}

/// Full translation: eliminate classes (Fig. 5), then objects (Fig. 3).
/// The result is a pure core-language term.
pub fn translate(e: &Expr) -> Expr {
    views::translate_views(&classes::translate_classes(e))
}

/// [`translate`], also reporting source/translated node counts.
pub fn translate_measured(e: &Expr) -> (Expr, TransStats) {
    let out = translate(e);
    let stats = TransStats {
        source_size: visit::term_size(e),
        translated_size: visit::term_size(&out),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;

    #[test]
    fn measured_translation_reports_growth() {
        // view(e) expands to a pair construction: output strictly larger.
        let e = b::id_view(b::record([b::imm("x", b::int(1))]));
        let (out, stats) = translate_measured(&e);
        assert_eq!(stats.source_size, visit::term_size(&e));
        assert_eq!(stats.translated_size, visit::term_size(&out));
        assert!(stats.translated_size > stats.source_size);
    }
}

//! Fig. 3: translation of objects and views into the core language.
//!
//! ```text
//! tr(IDView(e))        = (tr(e), λx.x)
//! tr(e1 as e2)         = (tr(e1)·1, λx.(tr(e2) (tr(e1)·2 x)))
//! tr(query(e1, e2))    = tr(e1) (tr(e2)·2 (tr(e2)·1))
//! tr(fuse(e1, e2))     = if eq(tr(e1)·1, tr(e2)·1)
//!                        then {(tr(e1)·1, λx.((tr(e1)·2 x), (tr(e2)·2 x)))}
//!                        else {}
//! tr(relobj(l1=e1,…))  = ([l1 = tr(e1)·1, …],
//!                         λx.[l1 = (tr(e1)·2 (x·l1)), …])
//! ```
//!
//! Each duplicated `tr(ei)` is bound once with a `let` so object identities
//! are not re-minted (see the crate docs).

use polyview_syntax::{Expr, Field, Label};
use std::cell::Cell;

thread_local! {
    static COUNTER: Cell<u64> = const { Cell::new(0) };
}

/// A fresh binder name; `#`-prefixed names are unreachable from the parser,
/// so capture is impossible for parsed programs.
pub(crate) fn fresh(base: &str) -> Label {
    COUNTER.with(|c| {
        let n = c.get();
        c.set(n + 1);
        Label::new(format!("#{base}{n}"))
    })
}

/// Eliminate all object/view constructs (the input must already be free of
/// class constructs; see [`crate::classes`]).
pub fn translate_views(e: &Expr) -> Expr {
    match e {
        // ----- the five rules of Fig. 3 (plus query) -----
        Expr::IdView(inner) => {
            let raw = translate_views(inner);
            let x = fresh("v_x");
            Expr::pair(raw, Expr::lam(x.clone(), Expr::Var(x)))
        }
        Expr::AsView(obj, f) => {
            let p = fresh("v_p");
            let g = fresh("v_g");
            let x = fresh("v_x");
            Expr::let_(
                p.clone(),
                translate_views(obj),
                Expr::let_(
                    g.clone(),
                    translate_views(f),
                    Expr::pair(
                        Expr::proj(Expr::Var(p.clone()), 1),
                        Expr::lam(
                            x.clone(),
                            Expr::app(
                                Expr::Var(g),
                                Expr::app(Expr::proj(Expr::Var(p), 2), Expr::Var(x)),
                            ),
                        ),
                    ),
                ),
            )
        }
        Expr::Query(f, obj) => {
            let p = fresh("v_p");
            Expr::let_(
                p.clone(),
                translate_views(obj),
                Expr::app(
                    translate_views(f),
                    Expr::app(
                        Expr::proj(Expr::Var(p.clone()), 2),
                        Expr::proj(Expr::Var(p), 1),
                    ),
                ),
            )
        }
        Expr::Fuse(a, b) => {
            let p1 = fresh("v_p");
            let p2 = fresh("v_q");
            let x = fresh("v_x");
            Expr::let_(
                p1.clone(),
                translate_views(a),
                Expr::let_(
                    p2.clone(),
                    translate_views(b),
                    Expr::if_(
                        Expr::eq(
                            Expr::proj(Expr::Var(p1.clone()), 1),
                            Expr::proj(Expr::Var(p2.clone()), 1),
                        ),
                        Expr::set([Expr::pair(
                            Expr::proj(Expr::Var(p1.clone()), 1),
                            Expr::lam(
                                x.clone(),
                                Expr::pair(
                                    Expr::app(Expr::proj(Expr::Var(p1), 2), Expr::Var(x.clone())),
                                    Expr::app(Expr::proj(Expr::Var(p2), 2), Expr::Var(x)),
                                ),
                            ),
                        )]),
                        Expr::empty_set(),
                    ),
                ),
            )
        }
        Expr::RelObj(fields) => {
            let bound: Vec<(Label, Label, Expr)> = fields
                .iter()
                .map(|(l, e)| (l.clone(), fresh("v_r"), translate_views(e)))
                .collect();
            let x = fresh("v_x");
            let raw = Expr::Record(
                bound
                    .iter()
                    .map(|(l, p, _)| {
                        Field::immutable(l.clone(), Expr::proj(Expr::Var(p.clone()), 1))
                    })
                    .collect(),
            );
            let view_body = Expr::Record(
                bound
                    .iter()
                    .map(|(l, p, _)| {
                        Field::immutable(
                            l.clone(),
                            Expr::app(
                                Expr::proj(Expr::Var(p.clone()), 2),
                                Expr::Dot(Box::new(Expr::Var(x.clone())), l.clone()),
                            ),
                        )
                    })
                    .collect(),
            );
            let mut out = Expr::pair(raw, Expr::lam(x, view_body));
            for (_, p, te) in bound.into_iter().rev() {
                out = Expr::let_(p, te, out);
            }
            out
        }

        // ----- classes must be gone already -----
        Expr::ClassExpr(_)
        | Expr::CQuery(..)
        | Expr::Insert(..)
        | Expr::Delete(..)
        | Expr::LetClasses(..) => {
            panic!("translate_views: class construct remains; run translate_classes first")
        }

        // ----- homomorphic cases -----
        Expr::Lit(_) | Expr::Var(_) => e.clone(),
        Expr::Eq(a, b) => Expr::eq(translate_views(a), translate_views(b)),
        Expr::Lam(x, b) => Expr::lam(x.clone(), translate_views(b)),
        Expr::App(f, a) => Expr::app(translate_views(f), translate_views(a)),
        Expr::Record(fs) => Expr::Record(
            fs.iter()
                .map(|f| Field {
                    label: f.label.clone(),
                    mutable: f.mutable,
                    expr: translate_views(&f.expr),
                })
                .collect(),
        ),
        Expr::Dot(b, l) => Expr::Dot(Box::new(translate_views(b)), l.clone()),
        Expr::Extract(b, l) => Expr::Extract(Box::new(translate_views(b)), l.clone()),
        Expr::Update(b, l, v) => Expr::Update(
            Box::new(translate_views(b)),
            l.clone(),
            Box::new(translate_views(v)),
        ),
        Expr::SetLit(es) => Expr::SetLit(es.iter().map(translate_views).collect()),
        Expr::Union(a, b) => Expr::union(translate_views(a), translate_views(b)),
        Expr::Hom(s, f, op, z) => Expr::hom(
            translate_views(s),
            translate_views(f),
            translate_views(op),
            translate_views(z),
        ),
        Expr::Fix(x, b) => Expr::fix(x.clone(), translate_views(b)),
        Expr::Let(x, r, b) => Expr::Let(
            x.clone(),
            Box::new(translate_views(r)),
            Box::new(translate_views(b)),
        ),
        Expr::If(c, t, e2) => {
            Expr::if_(translate_views(c), translate_views(t), translate_views(e2))
        }

        // ----- lowered forms (offset-resolved; structure-preserving) -----
        Expr::DotAt(b, l, i) => Expr::DotAt(Box::new(translate_views(b)), l.clone(), i.clone()),
        Expr::ExtractAt(b, l, i) => {
            Expr::ExtractAt(Box::new(translate_views(b)), l.clone(), i.clone())
        }
        Expr::UpdateAt(b, l, i, v) => Expr::UpdateAt(
            Box::new(translate_views(b)),
            l.clone(),
            i.clone(),
            Box::new(translate_views(v)),
        ),
        Expr::RecordAt(layout, fs) => Expr::RecordAt(
            layout.clone(),
            fs.iter()
                .map(|(off, fe)| (*off, translate_views(fe)))
                .collect(),
        ),
    }
}

/// Does the expression still contain any object/view construct?
pub fn has_view_constructs(e: &Expr) -> bool {
    let mut found = false;
    polyview_syntax::visit::walk(e, &mut |n| {
        if matches!(
            n,
            Expr::IdView(_) | Expr::AsView(..) | Expr::Query(..) | Expr::Fuse(..) | Expr::RelObj(_)
        ) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;

    #[test]
    fn idview_becomes_identity_pair() {
        let t = translate_views(&b::id_view(b::record([b::imm("a", b::int(1))])));
        assert!(!has_view_constructs(&t));
        // Shape: [1 = [a = 1], 2 = fn x => x]
        match &t {
            Expr::Record(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(matches!(fs[1].expr, Expr::Lam(..)));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn translation_removes_all_view_constructs() {
        let e = b::query(
            b::lam("x", b::dot(b::v("x"), "a")),
            b::as_view(
                b::id_view(b::record([b::imm("a", b::int(1))])),
                b::lam("r", b::v("r")),
            ),
        );
        let t = translate_views(&e);
        assert!(!has_view_constructs(&t));
    }

    #[test]
    fn fuse_translation_compares_raws() {
        let t = translate_views(&b::fuse(
            b::id_view(b::record([])),
            b::id_view(b::record([])),
        ));
        assert!(!has_view_constructs(&t));
        let printed = t.to_string();
        assert!(printed.contains("eq("), "got: {printed}");
        assert!(printed.contains("if"), "got: {printed}");
    }

    #[test]
    fn relobj_translation_builds_raw_record() {
        let t = translate_views(&b::relobj([
            ("x", b::id_view(b::record([b::imm("a", b::int(1))]))),
            ("y", b::id_view(b::record([b::imm("b", b::int(2))]))),
        ]));
        assert!(!has_view_constructs(&t));
    }

    #[test]
    fn homomorphic_on_core() {
        let e = b::let_(
            "f",
            b::lam("x", b::add(b::v("x"), b::int(1))),
            b::app(b::v("f"), b::int(1)),
        );
        assert_eq!(translate_views(&e), e);
    }

    #[test]
    #[should_panic(expected = "class construct remains")]
    fn class_constructs_rejected() {
        translate_views(&b::class(b::empty(), vec![]));
    }

    #[test]
    fn fresh_names_are_distinct() {
        assert_ne!(fresh("a"), fresh("a"));
    }
}

//! E7 (§1 motivation): general object sharing in the calculus (lazy,
//! shared extents) vs the IS-A/partial-order baseline (generated
//! intermediate classes with eagerly materialized copies), under mixed
//! update/query workloads.
//!
//! Expected shape: the calculus pays per *query* (lazy inclusion) and
//! nearly nothing per update; the eager baseline pays per *update*
//! (re-copying) and nearly nothing per query. As the update:query ratio
//! rises, the calculus wins by a growing factor; at query-heavy ratios the
//! eager baseline's pre-joined copies win — the trade-off the paper's lazy
//! design consciously accepts for consistency under sharing.

use criterion::{criterion_group, criterion_main, Criterion};
use polyview::Engine;
use polyview_bench::sharing_prelude;
use polyview_isa::{FieldVal, IsaStore, Refresh};
use std::hint::black_box;

const N: usize = 100;

fn polyview_engine() -> Engine {
    let mut engine = Engine::new();
    engine.exec(&sharing_prelude(N)).expect("prelude");
    engine
        .exec("fun countf c = cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), c);")
        .expect("countf");
    engine
}

fn isa_store(refresh: Refresh) -> IsaStore {
    let mut st = IsaStore::new(refresh);
    let staff = st.new_class("Staff", &[]);
    let student = st.new_class("Student", &[]);
    for i in 0..N {
        st.insert(
            staff,
            [
                ("Name".to_string(), FieldVal::str(format!("s{i}"))),
                ("Age".to_string(), FieldVal::Int(20 + (i % 50) as i64)),
                (
                    "Sex".to_string(),
                    FieldVal::str(if i % 2 == 0 { "female" } else { "male" }),
                ),
            ],
        );
        st.insert(
            student,
            [
                ("Name".to_string(), FieldVal::str(format!("t{i}"))),
                ("Age".to_string(), FieldVal::Int(18 + (i % 10) as i64)),
                (
                    "Sex".to_string(),
                    FieldVal::str(if i % 3 == 0 { "female" } else { "male" }),
                ),
            ],
        );
    }
    st.define_shared_class(
        "FemaleMember",
        &[staff, student],
        |r| r.get("Sex").and_then(FieldVal::as_str) == Some("female"),
        |r| r.project(&["Name", "Age"]),
    );
    st
}

/// A workload of `updates` age-bumps interleaved with `queries` counts of
/// the shared class, in round-robin order.
fn run_polyview(engine: &mut Engine, updates: usize, queries: usize) -> i64 {
    let mut total = 0i64;
    let rounds = updates.max(queries);
    for r in 0..rounds {
        if r < updates {
            engine
                .eval_expr(&format!(
                    "cquery(fn s => map(fn o => query(fn x => \
                       if x.Name = \"s{}\" then update(x, Age, x.Age + 1) else (), o), s), Staff)",
                    r % N
                ))
                .expect("update");
        }
        if r < queries {
            let n = engine
                .eval_to_string("countf FemaleMember")
                .expect("count");
            total += n.parse::<i64>().expect("int");
        }
    }
    total
}

fn run_isa(st: &mut IsaStore, updates: usize, queries: usize) -> i64 {
    let staff = st.class_id("Staff").expect("staff");
    let female = st.class_id("FemaleMember").expect("female");
    let mut total = 0i64;
    let rounds = updates.max(queries);
    for r in 0..rounds {
        if r < updates {
            let oid = (r % N) as u64;
            let current = st
                .extent(staff)
                .into_iter()
                .find(|row| row.oid == oid)
                .and_then(|row| row.get("Age").and_then(FieldVal::as_int))
                .unwrap_or(0);
            st.update(staff, oid, "Age", FieldVal::Int(current + 1));
        }
        if r < queries {
            total += st.count(female) as i64;
        }
    }
    total
}

fn bench_update_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_update_heavy_20u_2q");
    group.sample_size(10);
    group.bench_function("polyview_lazy", |bch| {
        let mut engine = polyview_engine();
        bch.iter(|| black_box(run_polyview(&mut engine, 20, 2)))
    });
    group.bench_function("isa_eager", |bch| {
        let mut st = isa_store(Refresh::Eager);
        bch.iter(|| black_box(run_isa(&mut st, 20, 2)))
    });
    group.bench_function("isa_onquery", |bch| {
        let mut st = isa_store(Refresh::OnQuery);
        bch.iter(|| black_box(run_isa(&mut st, 20, 2)))
    });
    group.finish();
}

fn bench_query_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_query_heavy_2u_20q");
    group.sample_size(10);
    group.bench_function("polyview_lazy", |bch| {
        let mut engine = polyview_engine();
        bch.iter(|| black_box(run_polyview(&mut engine, 2, 20)))
    });
    group.bench_function("isa_eager", |bch| {
        let mut st = isa_store(Refresh::Eager);
        bch.iter(|| black_box(run_isa(&mut st, 2, 20)))
    });
    group.bench_function("isa_onquery", |bch| {
        let mut st = isa_store(Refresh::OnQuery);
        bch.iter(|| black_box(run_isa(&mut st, 2, 20)))
    });
    group.finish();
}

fn bench_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_balanced_10u_10q");
    group.sample_size(10);
    group.bench_function("polyview_lazy", |bch| {
        let mut engine = polyview_engine();
        bch.iter(|| black_box(run_polyview(&mut engine, 10, 10)))
    });
    group.bench_function("isa_eager", |bch| {
        let mut st = isa_store(Refresh::Eager);
        bch.iter(|| black_box(run_isa(&mut st, 10, 10)))
    });
    group.bench_function("isa_onquery", |bch| {
        let mut st = isa_store(Refresh::OnQuery);
        bch.iter(|| black_box(run_isa(&mut st, 10, 10)))
    });
    group.finish();
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_update_heavy, bench_query_heavy, bench_balanced
}
criterion_main!(benches);

//! E2 (Fig. 1 kinds): kinded unification micro-benchmarks — the var–var
//! kind merge and the var–record discharge, swept over field counts.
//!
//! Expected shape: both grow with the number of constrained fields; the
//! merge additionally pays map-union costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_syntax::{FieldReq, FieldTy, Kind, Label, Mono};
use polyview_types::Infer;
use std::collections::BTreeMap;
use std::hint::black_box;

fn record_kind(cx: &mut Infer, fields: usize) -> Kind {
    Kind::Record(
        (0..fields)
            .map(|i| (Label::new(format!("f{i}")), FieldReq::any(cx.fresh())))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn record_type(fields: usize) -> Mono {
    Mono::Record(
        (0..fields)
            .map(|i| (Label::new(format!("f{i}")), FieldTy::immutable(Mono::int())))
            .collect(),
    )
}

fn bench_var_var_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_unify_var_var_merge");
    for fields in [2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(fields), &fields, |bch, &n| {
            bch.iter(|| {
                let mut cx = Infer::new();
                let ka = record_kind(&mut cx, n);
                let kb = record_kind(&mut cx, n);
                let a = cx.fresh_with_kind(ka);
                let b = cx.fresh_with_kind(kb);
                cx.unify(black_box(&a), black_box(&b)).expect("merges");
                black_box(cx.vars_minted())
            })
        });
    }
    group.finish();
}

fn bench_var_record_discharge(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_unify_var_record_discharge");
    for fields in [2usize, 8, 32, 128] {
        let record = record_type(fields);
        group.bench_with_input(
            BenchmarkId::from_parameter(fields),
            &record,
            |bch, record| {
                bch.iter(|| {
                    let mut cx = Infer::new();
                    let k = record_kind(&mut cx, fields);
                    let a = cx.fresh_with_kind(k);
                    cx.unify(black_box(&a), black_box(record)).expect("discharges");
                    black_box(cx.resolve(&a))
                })
            },
        );
    }
    group.finish();
}

fn bench_deep_congruence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_unify_deep_congruence");
    for depth in [4usize, 16, 64, 256] {
        let mut t = Mono::int();
        for _ in 0..depth {
            t = Mono::set(Mono::arrow(t.clone(), Mono::bool()));
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &t, |bch, t| {
            bch.iter(|| {
                let mut cx = Infer::new();
                let a = cx.fresh();
                cx.unify(&a, black_box(t)).expect("binds");
                cx.unify(black_box(t), black_box(t)).expect("reflexive");
                black_box(cx.resolve(&a))
            })
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_var_var_merge,
    bench_var_record_discharge,
    bench_deep_congruence

}
criterion_main!(benches);

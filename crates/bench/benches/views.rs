//! E3 (Fig. 3 / §3.3): query cost through view-composition chains, lazy
//! views vs a materialized snapshot, and update cost through views.
//!
//! Expected shape: lazy query cost grows linearly with composition depth
//! (O(d) view applications per query) while a materialized snapshot pays
//! O(d) once and O(1) per re-read — the crossover as the re-read count
//! grows is the cost model behind the paper's lazy-evaluation choice
//! (updates through any view stay visible, which snapshots cannot offer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_bench::{employee_record, employee_view_fn, view_chain_program};
use polyview_eval::Machine;
use polyview_syntax::builder as b;
use std::hint::black_box;

fn bench_query_through_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_view_chain_query");
    for depth in [1usize, 4, 16, 64, 256] {
        let program = view_chain_program(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("runs"))
            })
        });
    }
    group.finish();
}

fn bench_repeated_queries_lazy_vs_materialized(c: &mut Criterion) {
    // Build the chained object once; then compare (a) querying through the
    // live views k times vs (b) materializing once and re-reading.
    let mut group = c.benchmark_group("E3_repeat_queries");
    let depth = 32;
    let reads = 64;
    let mut m = Machine::new();
    let mut obj = m
        .eval(&b::id_view(b::record([b::imm("v0", b::int(42))])))
        .expect("object");
    for k in 0..depth {
        let src = format!("v{k}");
        let dst = format!("v{}", k + 1);
        let view = m
            .eval(&b::lam(
                "x",
                b::record([b::imm(dst.as_str(), b::dot(b::v("x"), src.as_str()))]),
            ))
            .expect("view fn");
        m.define_global("tmp_o", obj.clone());
        m.define_global("tmp_f", view);
        obj = m
            .eval(&b::as_view(b::v("tmp_o"), b::v("tmp_f")))
            .expect("composed");
    }
    m.define_global("chained", obj);
    let leaf = format!("v{depth}");

    let lazy_query = b::query(
        b::lam("x", b::dot(b::v("x"), leaf.as_str())),
        b::v("chained"),
    );
    group.bench_function(format!("lazy_d{depth}_x{reads}"), |bch| {
        bch.iter(|| {
            for _ in 0..reads {
                black_box(m.eval(&lazy_query).expect("runs"));
            }
        })
    });

    let materialize_then_read = {
        let read = b::dot(b::v("snap"), leaf.as_str());
        let mut body = read.clone();
        for _ in 1..reads {
            body = b::let_("_", read.clone(), body);
        }
        b::let_(
            "snap",
            b::query(b::lam("x", b::v("x")), b::v("chained")),
            body,
        )
    };
    group.bench_function(format!("materialized_d{depth}_x{reads}"), |bch| {
        bch.iter(|| black_box(m.eval(&materialize_then_read).expect("runs")))
    });
    group.finish();
}

fn bench_view_update_propagation(c: &mut Criterion) {
    // §3.3's adjustBonus: update through a view, then read through both
    // the view and the raw object.
    let mut m = Machine::new();
    let obj = m.eval(&b::id_view(employee_record(1))).expect("object");
    m.define_global("emp", obj);
    let viewed = m
        .eval(&b::as_view(b::v("emp"), employee_view_fn()))
        .expect("view");
    m.define_global("empv", viewed);
    let update_and_read = b::let_(
        "_",
        b::query(
            b::lam(
                "x",
                b::update(b::v("x"), "Bonus", b::dot(b::v("x"), "Income")),
            ),
            b::v("empv"),
        ),
        b::pair(
            b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("empv")),
            b::query(b::lam("x", b::dot(b::v("x"), "Bonus")), b::v("emp")),
        ),
    );
    c.bench_function("E3_view_update_roundtrip", |bch| {
        bch.iter(|| black_box(m.eval(&update_and_read).expect("runs")))
    });
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_query_through_chain,
    bench_repeated_queries_lazy_vs_materialized,
    bench_view_update_propagation

}
criterion_main!(benches);

//! E10: the index-passing compile tier (DESIGN.md §13). Field access,
//! destructive update, and record construction in a hot loop, executed
//! through the offset-resolved backend (`compile_tier` on, the default)
//! versus pure dynamic label lookup (`set_compile_tier(false)`).
//!
//! Expected shape: the offset backend wins on every record-heavy loop —
//! a resolved access is an integer slot read where the dynamic path
//! binary-searches the layout per operation — and the gap widens with
//! record width. The E8 extension at the bottom reruns the prepared-run
//! hot path on both backends: prepared statements store the *lowered*
//! code, so the tier's advantage survives compile-once/run-many.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview::Engine;
use std::hint::black_box;

/// An engine with the tier chosen *before* any declaration: lowering
/// happens at declaration/prepare time, so the toggle must precede the
/// whole session.
fn engine(compile_tier: bool) -> Engine {
    let mut e = Engine::new();
    e.set_compile_tier(compile_tier);
    e
}

/// A record literal of `width` immutable fields plus one mutable `M`.
fn wide_record(width: usize) -> String {
    let mut fields: Vec<String> = (0..width).map(|i| format!("F{i} = {i}")).collect();
    fields.push("M := 0".to_string());
    format!("[{}]", fields.join(", "))
}

fn bench_dot_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_dot");
    for width in [4usize, 16, 64] {
        // Sum one field over a recursive loop: every iteration is a
        // field access plus arithmetic, the minimal dot-dominated load.
        let setup = format!(
            "val r = {};\n\
             fun go n = if n = 0 then 0 else r.F1 + go (n - 1);",
            wide_record(width)
        );
        for (label, tier) in [("offset", true), ("dynamic", false)] {
            let mut e = engine(tier);
            e.exec(&setup).expect("setup");
            let p = e.prepare("go 200").expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(label, width),
                &p,
                |bch, p| bch.iter(|| black_box(e.run(black_box(p)).expect("runs"))),
            );
        }
    }
    group.finish();
}

fn bench_update_hot_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_update");
    for width in [4usize, 16, 64] {
        let setup = format!(
            "val r = {};\n\
             fun go n = if n = 0 then r.M \
                        else let u = update(r, M, r.M + 1) in go (n - 1) end;",
            wide_record(width)
        );
        for (label, tier) in [("offset", true), ("dynamic", false)] {
            let mut e = engine(tier);
            e.exec(&setup).expect("setup");
            let p = e.prepare("go 200").expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(label, width),
                &p,
                |bch, p| bch.iter(|| black_box(e.run(black_box(p)).expect("runs"))),
            );
        }
    }
    group.finish();
}

fn bench_record_construction(c: &mut Criterion) {
    // Record construction always lowers (labels are syntactically known):
    // the offset backend writes slots by position into the shared layout,
    // the dynamic backend assembles the layout per construction.
    let mut group = c.benchmark_group("E10_construct");
    for width in [4usize, 16, 64] {
        let src = format!(
            "hom({{1, 2, 3, 4}}, fn x => query(fn q => q.F1, IDView({})), \
             fn a => fn b => a + b, 0)",
            wide_record(width)
        );
        for (label, tier) in [("offset", true), ("dynamic", false)] {
            let mut e = engine(tier);
            let p = e.prepare(&src).expect("compiles");
            group.bench_with_input(
                BenchmarkId::new(label, width),
                &p,
                |bch, p| bch.iter(|| black_box(e.run(black_box(p)).expect("runs"))),
            );
        }
    }
    group.finish();
}

fn bench_polymorphic_call(c: &mut Criterion) {
    // An index-abstracted function called monomorphically: the caller
    // passes constant offsets, so the body's accesses are slot reads.
    // The dynamic backend re-searches the label on every call.
    let mut group = c.benchmark_group("E10_index_passing");
    let setup = "fun name x = x.Name;\n\
                 fun go n = if n = 0 then \"\" else let v = name [Name = \"a\", \
                 A = 1, B = 2, C = 3, D = 4, E = 5] in go (n - 1) end;";
    for (label, tier) in [("offset", true), ("dynamic", false)] {
        let mut e = engine(tier);
        e.exec(setup).expect("setup");
        let p = e.prepare("go 200").expect("compiles");
        group.bench_function(label, |bch| {
            bch.iter(|| black_box(e.run(black_box(&p)).expect("runs")))
        });
    }
    group.finish();
}

fn bench_prepared_backends(c: &mut Criterion) {
    // E8 extension: the compile-once/run-many pipeline on both backends.
    // `prepare` stores the lowered code, so the offset tier's advantage
    // is a property of `run`, not of recompilation.
    let mut group = c.benchmark_group("E8_prepared_by_backend");
    let src = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";
    for (label, tier) in [("offset", true), ("dynamic", false)] {
        let mut e = engine(tier);
        e.exec("class Staff = class {} end;").expect("class");
        for i in 0..32 {
            e.exec(&format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]));",
                20 + (i % 50)
            ))
            .expect("insert");
        }
        let p = e.prepare(src).expect("compiles");
        group.bench_function(label, |bch| {
            bch.iter(|| black_box(e.run(black_box(&p)).expect("runs")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_dot_hot_loop, bench_update_hot_loop,
        bench_record_construction, bench_polymorphic_call,
        bench_prepared_backends
}
criterion_main!(benches);

//! E4 (Fig. 5 / §4.3): class extent materialization — sweep own-extent
//! size, number of include clauses, and `where` selectivity.
//!
//! Expected shape: extent cost is linear in (sources × their sizes); the
//! predicate and view applications dominate; selectivity changes the
//! surviving set size but not the scan cost (every candidate is tested).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polyview_bench::{class_extent_program, count_fn, employee_set};
use polyview_eval::Machine;
use polyview_syntax::builder as b;
use std::hint::black_box;

fn bench_extent_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_extent_size");
    group.sample_size(20);
    for n in [10usize, 100, 1000] {
        let program = class_extent_program(n, 1, 50);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("runs"))
            })
        });
    }
    group.finish();
}

fn bench_extent_by_includes(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_extent_includes");
    group.sample_size(20);
    for includes in [1usize, 2, 4, 8] {
        let program = class_extent_program(100, includes, 50);
        group.bench_with_input(
            BenchmarkId::from_parameter(includes),
            &program,
            |bch, p| {
                bch.iter(|| {
                    let mut m = Machine::new();
                    black_box(m.eval(black_box(p)).expect("runs"))
                })
            },
        );
    }
    group.finish();
}

fn bench_extent_by_selectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_extent_selectivity");
    group.sample_size(20);
    for pct in [0i64, 25, 50, 100] {
        let program = class_extent_program(200, 1, pct);
        group.bench_with_input(BenchmarkId::from_parameter(pct), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("runs"))
            })
        });
    }
    group.finish();
}

fn bench_lazy_insert_vs_query_cost(c: &mut Criterion) {
    // The design choice of §4.1/§4.3: inclusion is delayed until query.
    // Insert cost must be O(1)-ish (a union into the own extent) while the
    // query pays the inclusion computation.
    let mut group = c.benchmark_group("E4_lazy_split");
    let mut m = Machine::new();
    let class = m
        .eval(&polyview_syntax::Expr::ClassExpr(polyview_syntax::ClassDef {
            own: Box::new(employee_set(500)),
            includes: vec![],
        }))
        .expect("class");
    m.define_global("C", class);

    let fresh_obj = b::id_view(b::record([b::imm("Name", b::str("new"))]));
    // Note: objects of a different record type would be ill-typed through
    // the engine; the raw machine accepts them, and we only measure cost.
    let insert = b::insert(b::v("C"), fresh_obj);
    group.bench_function("insert_into_500", |bch| {
        bch.iter(|| black_box(m.eval(&insert).expect("runs")))
    });

    let query = b::cquery(count_fn(), b::v("C"));
    group.bench_function("count_query_500", |bch| {
        bch.iter(|| black_box(m.eval(&query).expect("runs")))
    });
    group.finish();
}

fn bench_extent_cache_ablation(c: &mut Criterion) {
    // Ablation of the opt-in extent cache (an extension over the paper's
    // always-recompute semantics): repeated queries with no intervening
    // updates are where caching pays. The class has two selective include
    // clauses so the extent computation is the dominant cost, and the
    // query ignores the set (`fn s => 0`) to isolate extent work from the
    // consumer's own scan.
    let mut group = c.benchmark_group("E4_cache_ablation");
    group.sample_size(10);
    for cache in [false, true] {
        let label = if cache { "cached" } else { "recompute" };
        let mut m = Machine::new();
        m.enable_extent_cache(cache);
        // Two source classes of 200 employees, 50% selectivity.
        let src = |m: &mut Machine| {
            m.eval(&polyview_syntax::Expr::ClassExpr(polyview_syntax::ClassDef {
                own: Box::new(employee_set(200)),
                includes: vec![],
            }))
            .expect("source class")
        };
        let s0 = src(&mut m);
        let s1 = src(&mut m);
        m.define_global("S0", s0);
        m.define_global("S1", s1);
        let pred = b::lam(
            "o",
            b::query(
                b::lam(
                    "x",
                    b::lt(
                        b::app2(b::v("imod"), b::dot(b::v("x"), "Salary"), b::int(100)),
                        b::int(50),
                    ),
                ),
                b::v("o"),
            ),
        );
        let include = |srcname: &str| polyview_syntax::IncludeClause {
            sources: vec![b::v(srcname)],
            view: b::lam("s", b::record([b::imm("Name", b::dot(b::v("s"), "Name"))])),
            pred: pred.clone(),
        };
        let class = m
            .eval(&polyview_syntax::Expr::ClassExpr(polyview_syntax::ClassDef {
                own: Box::new(b::empty()),
                includes: vec![include("S0"), include("S1")],
            }))
            .expect("sharing class");
        m.define_global("C", class);
        let query = b::cquery(b::lam("s", b::int(0)), b::v("C"));
        group.bench_function(format!("repeat_query_{label}"), |bch| {
            bch.iter(|| black_box(m.eval(&query).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_extent_by_size,
    bench_extent_by_includes,
    bench_extent_by_selectivity,
    bench_lazy_insert_vs_query_cost,
    bench_extent_cache_ablation

}
criterion_main!(benches);

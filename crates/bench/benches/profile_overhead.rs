//! E11: profiler overhead (DESIGN.md §14). What does the attribution
//! profiler cost, and does the zero-cost-when-off claim hold under load?
//!
//! Two workload shapes, three sampling settings each:
//!
//! * **single engine** — `Engine::profile` vs a plain `eval_to_string` of
//!   the same statement. The profiled path recompiles (it bypasses the
//!   statement cache to keep `:explain` honest) and wraps every eval node
//!   in two clock reads, so this measures the *worst-case* per-statement
//!   cost of `:profile`.
//! * **pool 90/10 mix** — the E9 unrelated-rebind mix on 4 workers with
//!   `profile_sample_every` off / 100 / 1. `off` must match
//!   `E9_pool_mixed_90_10/pool/4` (the only added per-request cost is a
//!   `None` check in the worker loop); `every_100` is the continuous-
//!   profiling production setting and should sit within noise of `off`;
//!   `every_1` profiles every request — the ceiling.
//!
//! Expected shape: off ≈ every_100 ≪ every_1, and the single-engine
//! profiled/plain ratio bounds the per-sample cost (two monotonic clock
//! reads + a frame push/pop per eval node, plus the recompile).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polyview_pool::{Pool, PoolConfig, Submit};
use std::hint::black_box;

const BATCH: u64 = 256;
const QUERY: &str = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";

fn seeded_engine() -> polyview::Engine {
    let mut e = polyview::Engine::new();
    e.exec("class Staff = class {} end;").expect("class");
    for i in 0..64 {
        e.exec(&format!(
            "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]))",
            20 + i % 50
        ))
        .expect("insert");
    }
    e.eval_to_string(QUERY).expect("warm-up");
    e
}

fn seeded_pool(cfg: PoolConfig) -> Pool {
    let mut pool = Pool::new(cfg);
    pool.run(0, "class Staff = class {} end;").expect("class");
    for i in 0..64 {
        pool.run(
            0,
            &format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]))",
                20 + i % 50
            ),
        )
        .expect("insert");
    }
    pool.barrier().expect("seeded");
    pool
}

fn bench_single_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_profile_single");
    let mut engine = seeded_engine();
    group.bench_function("plain_eval", |bch| {
        bch.iter(|| black_box(engine.eval_to_string(QUERY).expect("read")))
    });
    group.bench_function("profiled", |bch| {
        bch.iter(|| black_box(engine.profile(QUERY).expect("profiled").eval_ns))
    });
    // Rendering on top of profiling: the full `:profile` experience.
    group.bench_function("profiled_rendered", |bch| {
        bch.iter(|| {
            let r = engine.profile(QUERY).expect("profiled");
            black_box((r.to_string().len(), r.to_json_lines().len()))
        })
    });
    group.finish();
}

/// The E9 90/10 unrelated-rebind mix (reads of `QUERY`, every tenth
/// request rebinds `val tick`), pipelined through the pool.
fn mixed_batch(pool: &mut Pool, sessions: u64) {
    let mut tickets = Vec::with_capacity(BATCH as usize);
    for i in 0..BATCH {
        let src = if i % 10 == 9 {
            format!("val tick = {i};")
        } else {
            QUERY.to_string()
        };
        loop {
            match pool.submit(i % sessions, &src).expect("classified") {
                Submit::Queued(t) => break tickets.push(t),
                Submit::Full => std::thread::yield_now(),
            }
        }
    }
    for t in tickets {
        black_box(t.wait().expect("statement"));
    }
}

fn bench_pool_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_profile_overhead");
    group.throughput(Throughput::Elements(BATCH));
    const WORKERS: usize = 4;
    let sessions = WORKERS as u64 * 4;
    let base = || PoolConfig::default().workers(WORKERS).queue_capacity(64);

    for (name, cfg) in [
        ("off", base()),
        ("every_100", base().profile_sample_every(100)),
        ("every_1", base().profile_sample_every(1)),
    ] {
        let mut pool = seeded_pool(cfg);
        mixed_batch(&mut pool, sessions); // warm replica caches
        group.bench_with_input(BenchmarkId::new("mixed_90_10", name), &(), |bch, _| {
            bch.iter(|| mixed_batch(&mut pool, sessions))
        });
        // The sampled profile really accrued (every_* variants only).
        let stats = pool.stats();
        if name != "off" {
            assert!(stats.per_worker.iter().any(|w| w.profile_samples > 0));
        }
        pool.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_single_engine, bench_pool_sampling
}
criterion_main!(benches);

//! Introspection-plane overhead on the wire (DESIGN.md §16). What does
//! serving `stats`/`health`/`watch` cost a loaded server?
//!
//! The workload is the E9 90/10 mix from `pool_scaling.rs` carried over
//! real loopback TCP (the PR 8 front door): four client connections,
//! each pinned to a session, issuing 90% view reads to 10%
//! unrelated-`val` rebinds with blocking calls. Variants:
//!
//!   - `window_off`: stats window disabled — the production default when
//!     nobody introspects. Windowing is pull-driven, so this must match
//!     `window_on` (enabling the ring costs nothing until someone polls:
//!     the zero-clock-reads-when-idle claim, asserted in the pool's
//!     tier-1 tests, shown here as a throughput non-regression).
//!   - `window_on`: ring configured, no consumer attached.
//!   - `stats_poll_per_batch`: a fifth connection issues one `stats`
//!     call per batch — the load-balancer-scrape shape. The poll ticks
//!     the window, locks the pool once, and serializes the full
//!     snapshot; its cost is amortized over the batch.
//!   - `watch_25ms`: a fifth connection holds a `watch` subscription at
//!     25ms while the mix runs — the push path through the writer
//!     thread, with a drain thread consuming pushes off the socket.
//!
//! A second group measures the introspection ops themselves round-trip
//! on an otherwise idle server, with `ping` as the wire-RTT baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use polyview_net::{NetClient, NetConfig, NetServer};
use polyview_pool::{PoolConfig, WindowConfig};
use std::hint::black_box;

const BATCH: u64 = 128;
const CLIENTS: u64 = 4;
const QUERY: &str = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";

/// Bind a loopback server (4 workers, E9 shape) and seed the same
/// Staff extent `pool_scaling.rs` uses, over the wire.
fn seeded_server(window: bool) -> NetServer {
    let mut pool_cfg = PoolConfig::default().workers(4).queue_capacity(64);
    if window {
        pool_cfg = pool_cfg.stats_window(WindowConfig {
            capacity: 16,
            interval_ns: 25_000_000,
        });
    }
    let cfg = NetConfig::default()
        .pool(pool_cfg)
        .max_conns(8)
        .max_in_flight(16);
    let server = NetServer::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let mut setup = NetClient::connect(server.local_addr()).expect("setup conn");
    setup.call("class Staff = class {} end;").expect("class");
    for i in 0..64 {
        setup
            .call(&format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]))",
                20 + i % 50
            ))
            .expect("insert");
    }
    server
}

/// One session-pinned client connection per pool worker.
fn connect_clients(server: &NetServer) -> Vec<NetClient> {
    (0..CLIENTS)
        .map(|c| {
            let mut conn = NetClient::connect(server.local_addr()).expect("client conn");
            conn.hello(100 + c).expect("hello");
            conn
        })
        .collect()
}

/// The wire-level E9 mix: `BATCH` blocking calls round-robined over the
/// client connections, every tenth an unrelated-`val` rebind (replicas
/// replay it; per-name invalidation keeps the cached read warm, so the
/// extent — and thus the read cost — stays constant across iterations).
fn wire_mix(conns: &mut [NetClient]) {
    for i in 0..BATCH {
        let conn = &mut conns[(i % CLIENTS) as usize];
        if i % 10 == 9 {
            black_box(conn.call(&format!("val tick = {i};")).expect("write"));
        } else {
            black_box(conn.call(QUERY).expect("read"));
        }
    }
}

fn teardown(server: NetServer) {
    let mut pool = server.drain();
    pool.shutdown();
}

fn bench_mix_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_net_stats_overhead");
    group.throughput(Throughput::Elements(BATCH));

    let server = seeded_server(false);
    let mut conns = connect_clients(&server);
    wire_mix(&mut conns); // warm every replica's statement cache
    group.bench_function("window_off", |b| b.iter(|| wire_mix(&mut conns)));
    drop(conns);
    teardown(server);

    let server = seeded_server(true);
    let mut conns = connect_clients(&server);
    wire_mix(&mut conns);
    group.bench_function("window_on", |b| b.iter(|| wire_mix(&mut conns)));
    drop(conns);
    teardown(server);

    let server = seeded_server(true);
    let mut conns = connect_clients(&server);
    let mut poller = NetClient::connect(server.local_addr()).expect("poller conn");
    wire_mix(&mut conns);
    group.bench_function("stats_poll_per_batch", |b| {
        b.iter(|| {
            wire_mix(&mut conns);
            black_box(poller.stats().expect("stats").len());
        })
    });
    drop(poller);
    drop(conns);
    teardown(server);

    let server = seeded_server(true);
    let mut conns = connect_clients(&server);
    let mut watcher = NetClient::connect(server.local_addr()).expect("watcher conn");
    watcher.watch(25).expect("watch");
    // Drain pushes off the watcher's socket so the server's writer never
    // backs up; the thread exits when teardown closes the connection.
    let drain = std::thread::spawn(move || {
        let mut pushes = 0u64;
        while watcher.recv().is_ok() {
            pushes += 1;
        }
        pushes
    });
    wire_mix(&mut conns);
    group.bench_function("watch_25ms", |b| b.iter(|| wire_mix(&mut conns)));
    drop(conns);
    teardown(server);
    let pushes = drain.join().expect("drain thread");
    eprintln!("watch_25ms variant: {pushes} pushes drained");
    group.finish();
}

fn bench_op_latency(c: &mut Criterion) {
    // The ops themselves, round-trip on an idle server: `ping` is the
    // bare wire RTT (read -> decode -> writer -> write), `health` adds
    // the lock-free verdict fold, `stats` adds the window tick, the
    // pool lock, and serializing the full snapshot object.
    let mut group = c.benchmark_group("E9_stats_op_latency");
    let server = seeded_server(true);
    let mut conn = NetClient::connect(server.local_addr()).expect("conn");

    group.bench_function("ping", |b| {
        b.iter(|| {
            conn.send_ping().expect("ping");
            black_box(conn.recv().expect("pong"));
        })
    });
    group.bench_function("health", |b| {
        b.iter(|| black_box(conn.health().expect("health")))
    });
    group.bench_function("stats", |b| {
        b.iter(|| black_box(conn.stats().expect("stats").len()))
    });
    drop(conn);
    teardown(server);
    group.finish();
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_mix_overhead, bench_op_latency
}
criterion_main!(benches);

//! E8: the compile-once/run-many split. Cold evaluation (parse + infer +
//! eval on every call) vs a prepared statement (`Engine::prepare` once,
//! `Engine::run` per call) vs the engine's LRU statement cache
//! (`eval_to_string` with a warm cache).
//!
//! Expected shape: cold cost is dominated by the compilation phases, so
//! prepared/cached execution should win by well over 2x on any statement
//! whose compiled form is non-trivial — the acceptance bar for the
//! prepared-statement pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview::{Database, Engine};
use std::hint::black_box;

/// A query with enough type structure that inference is a visible cost:
/// map a field projection over a class extent via the paper's `query`.
const SET_FN: &str = "fn s => map(fn o => query(fn x => x.Name, o), s)";

fn staff_engine(n: usize) -> Engine {
    let mut e = Engine::new();
    e.exec("class Staff = class {} end;").expect("class");
    for i in 0..n {
        e.exec(&format!(
            "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]));",
            20 + (i % 50)
        ))
        .expect("insert");
    }
    e
}

fn bench_cold_vs_prepared(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_cold_vs_prepared");
    for n in [8usize, 64] {
        let src = format!("cquery({SET_FN}, Staff)");

        // Cold: parse + infer + eval every iteration (cache disabled).
        let mut cold = staff_engine(n);
        cold.set_stmt_cache_capacity(0);
        group.bench_with_input(BenchmarkId::new("cold", n), &src, |bch, s| {
            bch.iter(|| black_box(cold.eval_to_string(black_box(s)).expect("runs")))
        });

        // Prepared: compile once outside the loop, run many.
        let mut warm = staff_engine(n);
        let p = warm.prepare(&src).expect("compiles");
        group.bench_with_input(BenchmarkId::new("prepared", n), &p, |bch, p| {
            bch.iter(|| black_box(warm.run(black_box(p)).expect("runs")))
        });

        // Statement cache: same API as cold, but the compiled form is
        // served from the engine's LRU cache after the first call.
        let mut cached = staff_engine(n);
        cached.eval_to_string(&src).expect("warm-up");
        group.bench_with_input(BenchmarkId::new("stmt_cache", n), &src, |bch, s| {
            bch.iter(|| black_box(cached.eval_to_string(black_box(s)).expect("runs")))
        });
    }
    group.finish();
}

fn bench_database_facade(c: &mut Criterion) {
    // The Database facade builds its statements as ASTs and keys them in
    // the statement cache, so repeated calls with the same (class, set_fn)
    // pair never reparse or re-infer.
    let mut group = c.benchmark_group("E8_database_query");
    let mut db = Database::new();
    db.exec("class Staff = class {} end;").expect("class");
    for i in 0..32 {
        db.exec(&format!(
            "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]));",
            20 + (i % 50)
        ))
        .expect("insert");
    }
    db.query("Staff", SET_FN).expect("warm-up");
    group.bench_function("warm", |bch| {
        bch.iter(|| black_box(db.query("Staff", SET_FN).expect("runs")))
    });
    group.bench_function("cold", |bch| {
        bch.iter(|| {
            db.engine().clear_stmt_cache();
            black_box(db.query("Staff", SET_FN).expect("runs"))
        })
    });
    group.finish();
}

fn bench_observability_overhead(c: &mut Criterion) {
    // The acceptance bar for the observability layer (DESIGN.md §9): with
    // spans enabled against a NullSink, the prepared-run hot path must stay
    // within 5% of the untraced baseline. Counters are always on — the
    // baseline already pays for them — so this isolates the span machinery
    // (clock reads + attr bookkeeping) alone.
    let mut group = c.benchmark_group("E8_obs_overhead");
    let src = format!("cquery({SET_FN}, Staff)");
    for n in [8usize, 64] {
        let mut base = staff_engine(n);
        let p = base.prepare(&src).expect("compiles");
        group.bench_with_input(BenchmarkId::new("untraced", n), &p, |bch, p| {
            bch.iter(|| black_box(base.run(black_box(p)).expect("runs")))
        });

        let mut traced = staff_engine(n);
        let p = traced.prepare(&src).expect("compiles");
        traced.set_trace_sink(std::rc::Rc::new(polyview::obs::NullSink));
        group.bench_with_input(BenchmarkId::new("null_sink", n), &p, |bch, p| {
            bch.iter(|| black_box(traced.run(black_box(p)).expect("runs")))
        });
    }
    group.finish();
}

fn bench_rebind_invalidation(c: &mut Criterion) {
    // The payoff of per-name dependency invalidation: interleave the
    // cached query with a `val` rebind each iteration. An *unrelated*
    // rebind leaves the cached compilation valid (the rebind itself plus a
    // cache hit), while rebinding a name the query *depends on* forces a
    // drop + full recompile. The gap between the two variants is exactly
    // the compilation work the old global-epoch scheme paid on every
    // declaration.
    let mut group = c.benchmark_group("E8_rebind_invalidation");
    let query = format!("cquery({SET_FN}, Staff)");

    let mut unrelated = staff_engine(32);
    unrelated.exec("val tick = 0;").expect("seed");
    unrelated.eval_to_string(&query).expect("warm-up");
    group.bench_function("unrelated_rebind", |bch| {
        bch.iter(|| {
            unrelated.exec("val tick = 1;").expect("rebind");
            black_box(unrelated.eval_to_string(black_box(&query)).expect("runs"))
        })
    });

    let mut related = staff_engine(32);
    related
        .exec("val sel = fn o => query(fn x => x.Name, o);")
        .expect("seed");
    let dep_query = "cquery(fn s => map(sel, s), Staff)";
    related.eval_to_string(dep_query).expect("warm-up");
    group.bench_function("related_rebind", |bch| {
        bch.iter(|| {
            related
                .exec("val sel = fn o => query(fn x => x.Name, o);")
                .expect("rebind");
            black_box(related.eval_to_string(black_box(dep_query)).expect("runs"))
        })
    });
    group.finish();
}

fn bench_compile_phase_alone(c: &mut Criterion) {
    // What `prepare` actually saves per call: the parse + inference cost
    // of the statement, isolated from evaluation.
    let mut e = staff_engine(8);
    let src = format!("cquery({SET_FN}, Staff)");
    c.bench_function("E8_prepare_only", |bch| {
        bch.iter(|| black_box(e.prepare(black_box(&src)).expect("compiles")))
    });
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_cold_vs_prepared, bench_database_facade,
        bench_observability_overhead, bench_rebind_invalidation,
        bench_compile_phase_alone
}
criterion_main!(benches);

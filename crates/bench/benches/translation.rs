//! E6 (Props. 3–4): the translation path (Figs. 3/5 into pure core, then
//! core evaluation) vs the native object/class interpreter, on identical
//! programs — an ablation of the paper's "effective implementation
//! algorithm".
//!
//! Expected shape: the translated path is slower by a constant-ish factor
//! (it re-executes the object plumbing as ordinary closures and encodes
//! the objeq-collapsing union as nested `hom`s, which is quadratic where
//! the native path uses keyed maps), growing with extent size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_bench::{class_extent_program, view_chain_program};
use polyview_eval::Machine;
use polyview_trans::translate;
use std::hint::black_box;

fn bench_view_chain_native_vs_translated(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_view_chain");
    for depth in [4usize, 16, 64] {
        let program = view_chain_program(depth);
        let translated = translate(&program);
        group.bench_with_input(
            BenchmarkId::new("native", depth),
            &program,
            |bch, p| {
                bch.iter(|| {
                    let mut m = Machine::new();
                    black_box(m.eval(black_box(p)).expect("runs"))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("translated", depth),
            &translated,
            |bch, p| {
                bch.iter(|| {
                    let mut m = Machine::new();
                    black_box(m.eval(black_box(p)).expect("runs"))
                })
            },
        );
    }
    group.finish();
}

fn bench_class_extent_native_vs_translated(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_class_extent");
    group.sample_size(10);
    for n in [10usize, 40, 160] {
        let program = class_extent_program(n, 1, 50);
        let translated = translate(&program);
        group.bench_with_input(BenchmarkId::new("native", n), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("runs"))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("translated", n),
            &translated,
            |bch, p| {
                bch.iter(|| {
                    let mut m = Machine::new();
                    black_box(m.eval(black_box(p)).expect("runs"))
                })
            },
        );
    }
    group.finish();
}

fn bench_translation_itself(c: &mut Criterion) {
    // Cost of running tr(·): linear in program size.
    let mut group = c.benchmark_group("E6_translate_cost");
    for n in [10usize, 100, 400] {
        let program = class_extent_program(n, 2, 50);
        group.bench_with_input(
            BenchmarkId::from_parameter(program.size()),
            &program,
            |bch, p| bch.iter(|| black_box(translate(black_box(p)))),
        );
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_view_chain_native_vs_translated,
    bench_class_extent_native_vs_translated,
    bench_translation_itself

}
criterion_main!(benches);

//! E10: bounded recovery (DESIGN.md §17). Latency of a worker respawn —
//! crash injection through the replacement's convergence barrier — as a
//! function of declaration-log length, with checkpointing off vs on.
//!
//! Without checkpointing a respawn replays the *entire* log, so recovery
//! latency grows linearly with history: this is the unbounded
//! respawn-replay path the checkpoint tier exists to fix. With
//! `checkpoint_every(32)` the replacement bootstraps from the newest
//! in-memory engine snapshot and replays only the tail above it, so
//! recovery latency stays flat no matter how long the pool has lived.
//!
//! Expected shape: `replay_full` scales ~linearly in the log length;
//! `from_checkpoint` is roughly constant (decode one snapshot + replay
//! < 32 entries), with the gap widening as history grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_pool::{Pool, PoolConfig};

/// A two-worker pool whose log holds `writes` sequenced statements.
fn pool_with_history(writes: u64, checkpoint_every: Option<u64>) -> Pool {
    let mut cfg = PoolConfig::default().workers(2).queue_capacity(64);
    if let Some(n) = checkpoint_every {
        cfg = cfg.checkpoint_every(n);
    }
    let mut pool = Pool::new(cfg);
    pool.run(0, "class Staff = class {} end;").expect("class");
    for i in 1..writes {
        pool.run(
            0,
            &format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Salary := {}]))",
                1000 + i % 100
            ),
        )
        .expect("insert");
    }
    pool.barrier().expect("seeded");
    pool
}

/// One recovery: kill worker 1, then wait until its replacement has
/// caught up with every sequenced write (the barrier round-trips through
/// all replicas, so it returns only once the respawn has converged).
fn respawn(pool: &mut Pool) {
    pool.inject_worker_panic(1);
    pool.barrier().expect("converged after respawn");
}

fn bench_respawn(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_respawn_latency");
    for writes in [64u64, 256, 1024] {
        let mut pool = pool_with_history(writes, None);
        respawn(&mut pool); // warm-up + sanity: full-log replay
        let replayed = pool.stats().per_worker[1].respawn_replayed;
        assert_eq!(replayed, writes, "no checkpoint: the whole log replays");
        group.bench_with_input(
            BenchmarkId::new("replay_full", writes),
            &writes,
            |bch, _| bch.iter(|| respawn(&mut pool)),
        );
        pool.shutdown();

        let mut pool = pool_with_history(writes, Some(32));
        respawn(&mut pool);
        let replayed = pool.stats().per_worker[1].respawn_replayed;
        assert!(
            replayed < 32,
            "checkpointed respawn must replay only the tail, got {replayed}"
        );
        group.bench_with_input(
            BenchmarkId::new("from_checkpoint", writes),
            &writes,
            |bch, _| bch.iter(|| respawn(&mut pool)),
        );
        pool.shutdown();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_respawn
}
criterion_main!(benches);

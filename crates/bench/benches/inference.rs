//! E1 (Fig. 1 / Prop. 2): type inference cost over record-polymorphic
//! programs — sweep term size and record width.
//!
//! Expected shape: near-linear growth in term size; record width adds a
//! logarithmic-ish factor through field-map operations in kinded
//! unification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_bench::inference_workload;
use polyview_types::{builtins_sig, infer, Infer};
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_inference");
    for size in [10usize, 50, 250, 1000] {
        for width in [2usize, 8, 32] {
            let e = inference_workload(size, width);
            let nodes = e.size();
            group.bench_with_input(
                BenchmarkId::new(format!("w{width}"), format!("n{size}_{nodes}nodes")),
                &e,
                |bch, e| {
                    bch.iter(|| {
                        let mut cx = Infer::new();
                        let mut env = builtins_sig::builtin_env();
                        let t = infer::infer(&mut cx, &mut env, black_box(e))
                            .expect("well-typed");
                        black_box(cx.resolve(&t))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_paper_examples_inference(c: &mut Criterion) {
    // The paper's own examples as a fixed end-to-end pipeline workload
    // (parse → infer → evaluate).
    let src = r#"
        val joe = IDView([Name = "Joe", BirthYear = 1955,
                          Salary := 2000, Bonus := 5000]);
        val joe_view = joe as fn x => [Name = x.Name,
                                       Age = this_year() - x.BirthYear,
                                       Income = x.Salary,
                                       Bonus := extract(x, Bonus)];
        fun Annual_Income p = p.Income * 12 + p.Bonus;
        fun wealthy S = select as fn x => [Name = x.Name, Age = x.Age]
                        from S where fn x => query(Annual_Income, x) > 100000;
    "#;
    c.bench_function("E1_paper_s33_pipeline", |bch| {
        bch.iter(|| {
            let mut engine = polyview::Engine::new();
            black_box(engine.exec(black_box(src)).expect("runs"))
        })
    });
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_inference, bench_paper_examples_inference
}
criterion_main!(benches);

//! E9: pool scaling (DESIGN.md §10). Read throughput of the replicated
//! serving layer at 1/2/4/8 workers against the single-engine baseline,
//! plus two 90/10 read/write mixes that bracket the statement cache's
//! behavior under per-name dependency invalidation (DESIGN.md §12): the
//! default mix rebinds a `val` the query never mentions (replicas replay
//! the write but keep their cached compilation), and the `related_write`
//! variant rebinds a name the query depends on (every replica drops and
//! recompiles — the worst realistic case for the log/replay protocol,
//! and what *every* write cost before per-name invalidation).
//!
//! Expected shape: a read-only batch scales near-linearly with workers
//! until the single-threaded router saturates (classification + channel
//! hops are the per-request overhead vs a bare `eval_to_string`); the
//! related-write mix scales sub-linearly because each write is applied on
//! every replica and re-compiles the next read on each of them, while the
//! unrelated mix should track the read-only shape much more closely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use polyview_pool::{CollectingEventSink, NullEventSink, Pool, PoolConfig, Submit};
use std::hint::black_box;
use std::sync::Arc;

const BATCH: u64 = 256;
const QUERY: &str = "cquery(fn s => map(fn o => query(fn x => x.Name, o), s), Staff)";

fn seeded_pool(workers: usize) -> Pool {
    seeded_pool_with(PoolConfig::default().workers(workers).queue_capacity(64))
}

fn seeded_pool_with(cfg: PoolConfig) -> Pool {
    let mut pool = Pool::new(cfg);
    pool.run(0, "class Staff = class {} end;").expect("class");
    for i in 0..64 {
        pool.run(
            0,
            &format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]))",
                20 + i % 50
            ),
        )
        .expect("insert");
    }
    pool.barrier().expect("seeded");
    pool
}

/// Submit one read per session round-robin (spreading affinity over every
/// worker), retrying on backpressure, then wait for all replies — the
/// pool's natural pipelined usage: queues fill, replicas drain in
/// parallel, the router never blocks on evaluation.
fn read_batch(pool: &mut Pool, sessions: u64) {
    let mut tickets = Vec::with_capacity(BATCH as usize);
    for i in 0..BATCH {
        loop {
            match pool.submit_read(i % sessions, QUERY).expect("classified") {
                Submit::Queued(t) => break tickets.push(t),
                Submit::Full => std::thread::yield_now(),
            }
        }
    }
    for t in tickets {
        black_box(t.wait().expect("read"));
    }
}

fn bench_read_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_pool_read_scaling");
    group.throughput(Throughput::Elements(BATCH));

    // Baseline: one engine, same statements, no channels — what a worker
    // does once the request reaches it (warm statement cache).
    let mut single = polyview::Engine::new();
    single.exec("class Staff = class {} end;").expect("class");
    for i in 0..64 {
        single
            .exec(&format!(
                "insert(Staff, IDView([Name = \"emp{i}\", Age = {}]))",
                20 + i % 50
            ))
            .expect("insert");
    }
    single.eval_to_string(QUERY).expect("warm-up");
    group.bench_function("single_engine", |bch| {
        bch.iter(|| {
            for _ in 0..BATCH {
                black_box(single.eval_to_string(QUERY).expect("read"));
            }
        })
    });

    for workers in [1usize, 2, 4, 8] {
        let mut pool = seeded_pool(workers);
        // Warm every replica's statement cache before measuring.
        read_batch(&mut pool, workers as u64 * 4);
        group.bench_with_input(BenchmarkId::new("pool", workers), &workers, |bch, &w| {
            bch.iter(|| read_batch(&mut pool, w as u64 * 4))
        });
        pool.shutdown();
    }
    group.finish();
}

/// One 90/10 batch with a caller-chosen read statement and write source:
/// the knob that separates the unrelated-rebind mix (cached compilations
/// survive every write) from the related-rebind one (every write
/// invalidates every replica's cached read).
fn mixed_batch_of(pool: &mut Pool, sessions: u64, read: &str, write: &dyn Fn(u64) -> String) {
    let mut tickets = Vec::with_capacity(BATCH as usize);
    for i in 0..BATCH {
        let (session, src) = if i % 10 == 9 {
            (i % sessions, write(i))
        } else {
            (i % sessions, read.to_string())
        };
        loop {
            match pool.submit(session, &src).expect("classified") {
                Submit::Queued(t) => break tickets.push(t),
                Submit::Full => std::thread::yield_now(),
            }
        }
    }
    for t in tickets {
        black_box(t.wait().expect("statement"));
    }
}

fn bench_mixed_workload(c: &mut Criterion) {
    // 90% reads / 10% writes, two flavors per worker count:
    //   - `pool` (unrelated): the write rebinds `val tick`, a name the
    //     read never mentions — replicas replay it, but per-name
    //     invalidation keeps every replica's cached compilation warm.
    //   - `related_write`: the write rebinds `sel`, which the read
    //     depends on — every replica drops its cached read and
    //     recompiles, so writes cost O(workers) compilations. This is
    //     what *every* write in the mix cost under global-epoch
    //     invalidation.
    let mut group = c.benchmark_group("E9_pool_mixed_90_10");
    group.throughput(Throughput::Elements(BATCH));
    const SEL_DECL: &str = "val sel = fn o => query(fn x => x.Name, o);";
    const SEL_QUERY: &str = "cquery(fn s => map(sel, s), Staff)";
    for workers in [1usize, 2, 4, 8] {
        let sessions = workers as u64 * 4;

        let mut pool = seeded_pool(workers);
        group.bench_with_input(BenchmarkId::new("pool", workers), &workers, |bch, _| {
            bch.iter(|| mixed_batch_of(&mut pool, sessions, QUERY, &|i| format!("val tick = {i};")))
        });
        pool.shutdown();

        let mut pool = seeded_pool(workers);
        pool.run(0, SEL_DECL).expect("sel");
        pool.barrier().expect("seeded");
        group.bench_with_input(
            BenchmarkId::new("related_write", workers),
            &workers,
            |bch, _| {
                bch.iter(|| {
                    mixed_batch_of(&mut pool, sessions, SEL_QUERY, &|_| SEL_DECL.to_string())
                })
            },
        );
        pool.shutdown();
    }
    group.finish();
}

/// One 90/10 unrelated-rebind batch (same shape as
/// `E9_pool_mixed_90_10/pool`), reusable across the telemetry-overhead
/// variants.
fn mixed_batch(pool: &mut Pool, sessions: u64) {
    mixed_batch_of(pool, sessions, QUERY, &|i| format!("val tick = {i};"))
}

fn bench_trace_overhead(c: &mut Criterion) {
    // What does request telemetry (DESIGN.md §11) cost on the hot path?
    // Three variants of the 4-worker 90/10 mix:
    //   - `off`: telemetry disabled — the production default; the flag
    //     check is the only per-request cost, so this must match
    //     E9_pool_mixed_90_10/pool/4.
    //   - `null_sink`: full instrumentation (clock reads, histogram
    //     observations, event construction) with events discarded — the
    //     intrinsic tracing overhead.
    //   - `collecting_sink`: events retained in memory — adds one mutex
    //     push per event, the worst in-process sink. The sink is drained
    //     between iterations so the Vec never grows unboundedly.
    let mut group = c.benchmark_group("E9_trace_overhead");
    group.throughput(Throughput::Elements(BATCH));
    const WORKERS: usize = 4;
    let sessions = WORKERS as u64 * 4;
    let base = || PoolConfig::default().workers(WORKERS).queue_capacity(64);

    let mut pool = seeded_pool_with(base());
    group.bench_function("off", |bch| bch.iter(|| mixed_batch(&mut pool, sessions)));
    pool.shutdown();

    let mut pool = seeded_pool_with(base().event_sink(Arc::new(NullEventSink)));
    group.bench_function("null_sink", |bch| {
        bch.iter(|| mixed_batch(&mut pool, sessions))
    });
    pool.shutdown();

    let sink = Arc::new(CollectingEventSink::new());
    let mut pool = seeded_pool_with(base().event_sink(sink.clone()));
    group.bench_function("collecting_sink", |bch| {
        bch.iter(|| {
            mixed_batch(&mut pool, sessions);
            black_box(sink.take().len());
        })
    });
    pool.shutdown();
    group.finish();
}

criterion_group! {
    name = benches;
    config = polyview_bench::quick();
    targets = bench_read_scaling, bench_mixed_workload, bench_trace_overhead
}
criterion_main!(benches);

//! E5 (Fig. 6/7, Prop. 5): recursive extent computation over cyclic class
//! graphs — rings and cliques of k classes.
//!
//! Expected shape: the visited-set (`L`) mechanism bounds every call chain
//! by the number of classes, so ring cost grows polynomially in k (each
//! class recomputes its successors' extents along the path — the
//! memoization-free semantics of §4.4), and never diverges. Cliques grow
//! steeply (k! path structure is cut to k·2^k-ish by L) — the bench
//! documents the real cost envelope of the paper's semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use polyview_bench::{clique_program, ring_program};
use polyview_eval::Machine;
use std::hint::black_box;

fn bench_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_ring");
    group.sample_size(20);
    for k in [2usize, 4, 8, 16] {
        let program = ring_program(k, 5);
        group.bench_with_input(BenchmarkId::from_parameter(k), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("terminates (Prop. 5)"))
            })
        });
    }
    group.finish();
}

fn bench_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_clique");
    group.sample_size(10);
    for k in [2usize, 3, 4, 5] {
        let program = clique_program(k, 3);
        group.bench_with_input(BenchmarkId::from_parameter(k), &program, |bch, p| {
            bch.iter(|| {
                let mut m = Machine::new();
                black_box(m.eval(black_box(p)).expect("terminates (Prop. 5)"))
            })
        });
    }
    group.finish();
}

fn bench_ring_vs_extent_size(c: &mut Criterion) {
    // Fixed topology, growing per-class extents: cost should scale with
    // the number of objects flowing around the ring.
    let mut group = c.benchmark_group("E5_ring4_by_extent");
    group.sample_size(10);
    for per_class in [1usize, 5, 25, 125] {
        let program = ring_program(4, per_class);
        group.bench_with_input(
            BenchmarkId::from_parameter(per_class),
            &program,
            |bch, p| {
                bch.iter(|| {
                    let mut m = Machine::new();
                    black_box(m.eval(black_box(p)).expect("runs"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = polyview_bench::quick();
    targets = bench_rings, bench_cliques, bench_ring_vs_extent_size
}
criterion_main!(benches);

//! Shared workload generators for the benchmark targets (one per
//! experiment in DESIGN.md §5).
//!
//! All builders are deterministic so Criterion compares like with like
//! across runs. Programs are built as ASTs (no parsing on the hot path).

use criterion::Criterion;
use polyview_syntax::builder as b;
use std::time::Duration;

/// Criterion configuration for the whole harness: short warm-up and
/// measurement windows so the complete suite regenerates every experiment
/// in minutes. Override with Criterion's CLI flags when precision matters.
pub fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200))
        .sample_size(12)
        .configure_from_args()
}

use polyview_syntax::{ClassDef, Expr, Field, IncludeClause, Label};

/// An employee raw record with deterministic field values.
pub fn employee_record(i: usize) -> Expr {
    b::record([
        b::imm("Name", b::str(&format!("emp{i}"))),
        b::imm("BirthYear", b::int(1950 + (i % 40) as i64)),
        b::mt("Salary", b::int(1000 + (i % 100) as i64 * 10)),
        b::mt("Bonus", b::int((i % 10) as i64 * 100)),
        b::imm("Sex", b::str(if i.is_multiple_of(2) { "female" } else { "male" })),
    ])
}

/// A set of `n` employee objects (identity views).
pub fn employee_set(n: usize) -> Expr {
    b::set((0..n).map(|i| b::id_view(employee_record(i))))
}

/// The §3.3 viewing function (rename/hide/compute/extract).
pub fn employee_view_fn() -> Expr {
    b::lam(
        "x",
        b::record([
            b::imm("Name", b::dot(b::v("x"), "Name")),
            b::imm(
                "Age",
                b::sub(
                    b::app(b::v("this_year"), b::unit()),
                    b::dot(b::v("x"), "BirthYear"),
                ),
            ),
            b::imm("Income", b::dot(b::v("x"), "Salary")),
            b::mt("Bonus", b::extract(b::v("x"), "Bonus")),
        ]),
    )
}

/// E3: an object under `depth` stacked views (each renames `v{k}` →
/// `v{k+1}`), finished with a query projecting the innermost field.
pub fn view_chain_program(depth: usize) -> Expr {
    let mut obj = b::id_view(b::record([b::imm("v0", b::int(42))]));
    for k in 0..depth {
        let src = format!("v{k}");
        let dst = format!("v{}", k + 1);
        obj = b::as_view(
            obj,
            Expr::lam(
                "x",
                Expr::Record(vec![Field::immutable(
                    Label::new(dst),
                    Expr::dot(b::v("x"), src.as_str()),
                )]),
            ),
        );
    }
    let leaf = format!("v{depth}");
    b::query(
        Expr::lam("x", Expr::dot(b::v("x"), Label::new(leaf))),
        obj,
    )
}

/// E3 comparator: materialize the same chain once per *construction* and
/// query the resulting plain record (what an eager implementation does).
pub fn view_chain_materialized_program(depth: usize) -> Expr {
    let q = view_chain_program(depth);
    // Bind the materialized result and read it twice to simulate reuse.
    b::let_("m", q, b::v("m"))
}

/// A set-level counting query function.
pub fn count_fn() -> Expr {
    b::lam(
        "s",
        b::hom(
            b::v("s"),
            b::lam("x", b::int(1)),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        ),
    )
}

/// E4: a class over `n` employees with `includes` include clauses, each
/// selecting ~`selectivity_pct`% of a source class of the same size.
pub fn class_extent_program(n: usize, includes: usize, selectivity_pct: i64) -> Expr {
    let pred = b::lam(
        "o",
        b::query(
            b::lam(
                "x",
                b::lt(
                    b::app2(
                        b::v("imod"),
                        b::dot(b::v("x"), "Salary"),
                        b::int(100),
                    ),
                    b::int(selectivity_pct),
                ),
            ),
            b::v("o"),
        ),
    );
    let include = |src: &str| IncludeClause {
        sources: vec![b::v(src)],
        view: b::lam(
            "s",
            b::record([
                b::imm("Name", b::dot(b::v("s"), "Name")),
                b::imm("Sex", b::dot(b::v("s"), "Sex")),
            ]),
        ),
        pred: pred.clone(),
    };
    let target = Expr::ClassExpr(ClassDef {
        own: Box::new(b::empty()),
        includes: (0..includes)
            .map(|k| include(&format!("Src{k}")))
            .collect(),
    });
    let mut program = b::cquery(count_fn(), target);
    for k in (0..includes).rev() {
        program = b::let_(
            format!("Src{k}").as_str(),
            Expr::ClassExpr(ClassDef {
                own: Box::new(employee_set(n)),
                includes: vec![],
            }),
            program,
        );
    }
    program
}

/// E5: a ring of `k` mutually recursive classes, each owning `per_class`
/// objects and including the next class; count class 0's extent.
pub fn ring_program(k: usize, per_class: usize) -> Expr {
    let binds: Vec<(Label, ClassDef)> = (0..k)
        .map(|i| {
            let own = b::set(
                (0..per_class).map(|j| b::id_view(employee_record(i * per_class + j))),
            );
            (
                Label::new(format!("RC{i}")),
                ClassDef {
                    own: Box::new(own),
                    includes: vec![IncludeClause {
                        sources: vec![b::v(&format!("RC{}", (i + 1) % k))],
                        view: b::lam("x", b::v("x")),
                        pred: b::lam("x", b::boolean(true)),
                    }],
                },
            )
        })
        .collect();
    Expr::LetClasses(
        binds,
        Box::new(b::cquery(count_fn(), b::v("RC0"))),
    )
}

/// E5 variant: a complete graph ("clique") of `k` classes.
pub fn clique_program(k: usize, per_class: usize) -> Expr {
    let binds: Vec<(Label, ClassDef)> = (0..k)
        .map(|i| {
            let own = b::set(
                (0..per_class).map(|j| b::id_view(employee_record(i * per_class + j))),
            );
            let includes = (0..k)
                .filter(|&j| j != i)
                .map(|j| IncludeClause {
                    sources: vec![b::v(&format!("RC{j}"))],
                    view: b::lam("x", b::v("x")),
                    pred: b::lam("x", b::boolean(true)),
                })
                .collect();
            (
                Label::new(format!("RC{i}")),
                ClassDef {
                    own: Box::new(own),
                    includes,
                },
            )
        })
        .collect();
    Expr::LetClasses(
        binds,
        Box::new(b::cquery(count_fn(), b::v("RC0"))),
    )
}

/// E1: a record-polymorphism-heavy program of roughly `size` nodes over
/// records of `width` fields: a chain of field-projection lets ending in a
/// sum, exercising kinded unification at every step.
pub fn inference_workload(size: usize, width: usize) -> Expr {
    let rec = Expr::Record(
        (0..width)
            .map(|i| Field::immutable(Label::new(format!("f{i}")), b::int(i as i64)))
            .collect(),
    );
    // fun g r = r.f0 + r.f1 … (polymorphic in the record)
    let mut acc = b::dot(b::v("r"), "f0");
    for i in 1..width.min(4) {
        acc = b::add(acc, b::dot(b::v("r"), format!("f{i}").as_str()));
    }
    let g = b::lam("r", acc);
    let steps = (size / (width.max(1) + 6)).max(1);
    let mut body = b::int(0);
    for k in 0..steps {
        body = b::let_(
            format!("x{k}").as_str(),
            b::app(b::v("g"), rec.clone()),
            b::add(b::v(&format!("x{k}")), body),
        );
    }
    b::let_("g", g, body)
}

/// The FemaleMember-style sharing workload used by E7 (polyview side):
/// defines source classes of `n` employees each and a sharing class over
/// both; returns the program prelude to execute once.
pub fn sharing_prelude(n: usize) -> String {
    let mut src = String::new();
    src.push_str("class Staff = class {");
    for i in 0..n {
        if i > 0 {
            src.push_str(", ");
        }
        src.push_str(&format!(
            "IDView([Name = \"s{i}\", Age := {}, Sex = \"{}\"])",
            20 + (i % 50),
            if i % 2 == 0 { "female" } else { "male" }
        ));
    }
    src.push_str("} end;\n");
    src.push_str("class Student = class {");
    for i in 0..n {
        if i > 0 {
            src.push_str(", ");
        }
        src.push_str(&format!(
            "IDView([Name = \"t{i}\", Age := {}, Sex = \"{}\"])",
            18 + (i % 10),
            if i % 3 == 0 { "female" } else { "male" }
        ));
    }
    src.push_str("} end;\n");
    src.push_str(
        "class FemaleMember = class {}\n\
         include Staff as fn s => [Name = s.Name, Category = \"staff\"]\n\
         where fn s => query(fn x => x.Sex = \"female\", s)\n\
         include Student as fn s => [Name = s.Name, Category = \"student\"]\n\
         where fn s => query(fn x => x.Sex = \"female\", s)\n\
         end;\n",
    );
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_eval::Machine;
    use polyview_types::infer::infer_closed;

    #[test]
    fn view_chain_evaluates_to_42() {
        for d in [0, 1, 8] {
            let mut m = Machine::new();
            let v = m.eval(&view_chain_program(d)).expect("runs");
            assert_eq!(m.show(&v), "42", "depth {d}");
        }
    }

    #[test]
    fn class_extent_counts_selectivity() {
        let mut m = Machine::new();
        // 100% selectivity, one include over 10 employees → 10.
        let v = m.eval(&class_extent_program(10, 1, 100)).expect("runs");
        assert_eq!(m.show(&v), "10");
        // 0% selectivity → 0.
        let v = m.eval(&class_extent_program(10, 1, 0)).expect("runs");
        assert_eq!(m.show(&v), "0");
    }

    #[test]
    fn ring_and_clique_count_all_objects() {
        let mut m = Machine::new();
        let v = m.eval(&ring_program(4, 3)).expect("runs");
        assert_eq!(m.show(&v), "12");
        let v = m.eval(&clique_program(3, 2)).expect("runs");
        assert_eq!(m.show(&v), "6");
    }

    #[test]
    fn inference_workload_is_well_typed() {
        for (size, width) in [(50, 2), (200, 8)] {
            let e = inference_workload(size, width);
            infer_closed(&e).expect("well-typed");
        }
    }

    #[test]
    fn sharing_prelude_parses_and_runs() {
        let mut engine = polyview::Engine::new();
        engine.exec(&sharing_prelude(6)).expect("runs");
        let n = engine
            .eval_to_string(
                "cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), FemaleMember)",
            )
            .expect("counts");
        assert_eq!(n, "5"); // 3 female staff + 2 female students
    }
}

//! Monotypes of the calculus (paper Section 2, extended in Sections 3–4):
//!
//! ```text
//! τ ::= b | unit | t | τ→τ | {τ} | L(τ) | [F, …, F] | obj(τ) | class(τ)
//! ```
//!
//! where `F` is `l = τ` for immutable fields or `l := τ` for mutable fields.

use crate::label::Label;
use std::collections::{BTreeMap, BTreeSet};

/// A type variable, `t` in the paper. Fresh variables are minted by the
/// inference engine; the syntax crate only carries the identifier.
pub type TyVar = u32;

/// Base types `b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BaseTy {
    Int,
    Bool,
    Str,
}

/// A record field type: mutability flag plus the field's type.
///
/// `[Name = string, Salary := int]` has an immutable `Name` and a mutable
/// `Salary`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldTy {
    pub mutable: bool,
    pub ty: Mono,
}

impl FieldTy {
    pub fn immutable(ty: Mono) -> Self {
        FieldTy { mutable: false, ty }
    }
    pub fn mutable(ty: Mono) -> Self {
        FieldTy { mutable: true, ty }
    }
}

/// A record type: a canonical (label-ordered) map from labels to field types.
pub type RecordTy = BTreeMap<Label, FieldTy>;

/// Monotypes `τ`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mono {
    Base(BaseTy),
    Unit,
    Var(TyVar),
    /// `τ1 → τ2`.
    Arrow(Box<Mono>, Box<Mono>),
    /// `{τ}` — the set type with element type `τ`.
    Set(Box<Mono>),
    /// `L(τ)` — the type of L-values of a mutable field of type `τ`
    /// (produced by `extract`, consumable only as a record field value).
    LVal(Box<Mono>),
    /// `[l1 @ τ1, …, ln @ τn]` where each `@` is `=` or `:=`.
    Record(RecordTy),
    /// `obj(τ)` — objects whose view presents type `τ` (Section 3.2).
    Obj(Box<Mono>),
    /// `class(τ)` — classes of objects of type `obj(τ)` (Section 4.1).
    Class(Box<Mono>),
}

impl Mono {
    pub fn int() -> Mono {
        Mono::Base(BaseTy::Int)
    }
    pub fn bool() -> Mono {
        Mono::Base(BaseTy::Bool)
    }
    pub fn str() -> Mono {
        Mono::Base(BaseTy::Str)
    }

    pub fn arrow(a: Mono, b: Mono) -> Mono {
        Mono::Arrow(Box::new(a), Box::new(b))
    }

    /// Curried n-ary arrow `a1 → … → an → r`.
    pub fn arrows(args: impl IntoIterator<Item = Mono>, r: Mono) -> Mono {
        let args: Vec<_> = args.into_iter().collect();
        args.into_iter().rev().fold(r, |acc, a| Mono::arrow(a, acc))
    }

    pub fn set(t: Mono) -> Mono {
        Mono::Set(Box::new(t))
    }

    pub fn lval(t: Mono) -> Mono {
        Mono::LVal(Box::new(t))
    }

    pub fn obj(t: Mono) -> Mono {
        Mono::Obj(Box::new(t))
    }

    pub fn class(t: Mono) -> Mono {
        Mono::Class(Box::new(t))
    }

    pub fn record(fields: impl IntoIterator<Item = (Label, FieldTy)>) -> Mono {
        Mono::Record(fields.into_iter().collect())
    }

    /// Record type with all fields immutable.
    pub fn record_imm(fields: impl IntoIterator<Item = (Label, Mono)>) -> Mono {
        Mono::Record(
            fields
                .into_iter()
                .map(|(l, t)| (l, FieldTy::immutable(t)))
                .collect(),
        )
    }

    /// The pair type `τ1 × τ2`, i.e. `[1 = τ1, 2 = τ2]`.
    pub fn pair(a: Mono, b: Mono) -> Mono {
        Mono::tuple([a, b])
    }

    /// The n-tuple type `[1 = τ1, …, n = τn]`.
    pub fn tuple(ts: impl IntoIterator<Item = Mono>) -> Mono {
        Mono::Record(
            ts.into_iter()
                .enumerate()
                .map(|(i, t)| (Label::tuple(i + 1), FieldTy::immutable(t)))
                .collect(),
        )
    }

    /// The product type used by the `(class)` typing rule for an `include`
    /// clause with `m` sources: the type itself for `m = 1`, the flat
    /// `m`-tuple for `m ≥ 2`.
    pub fn include_product(ts: Vec<Mono>) -> Mono {
        if ts.len() == 1 {
            ts.into_iter().next().expect("len checked")
        } else {
            Mono::tuple(ts)
        }
    }

    /// Free type variables, in depth-first order of first occurrence.
    pub fn free_vars(&self) -> Vec<TyVar> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        self.collect_free_vars(&mut seen, &mut out);
        out
    }

    fn collect_free_vars(&self, seen: &mut BTreeSet<TyVar>, out: &mut Vec<TyVar>) {
        match self {
            Mono::Base(_) | Mono::Unit => {}
            Mono::Var(v) => {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
            Mono::Arrow(a, b) => {
                a.collect_free_vars(seen, out);
                b.collect_free_vars(seen, out);
            }
            Mono::Set(t) | Mono::LVal(t) | Mono::Obj(t) | Mono::Class(t) => {
                t.collect_free_vars(seen, out)
            }
            Mono::Record(fs) => {
                for f in fs.values() {
                    f.ty.collect_free_vars(seen, out);
                }
            }
        }
    }

    /// True when the type contains no type variables — "ground". The paper
    /// requires mutable field types to be ground monotypes for soundness.
    pub fn is_ground(&self) -> bool {
        match self {
            Mono::Base(_) | Mono::Unit => true,
            Mono::Var(_) => false,
            Mono::Arrow(a, b) => a.is_ground() && b.is_ground(),
            Mono::Set(t) | Mono::LVal(t) | Mono::Obj(t) | Mono::Class(t) => t.is_ground(),
            Mono::Record(fs) => fs.values().all(|f| f.ty.is_ground()),
        }
    }

    /// Structural size (number of constructors); used by benches and by
    /// generators to bound growth.
    pub fn size(&self) -> usize {
        match self {
            Mono::Base(_) | Mono::Unit | Mono::Var(_) => 1,
            Mono::Arrow(a, b) => 1 + a.size() + b.size(),
            Mono::Set(t) | Mono::LVal(t) | Mono::Obj(t) | Mono::Class(t) => 1 + t.size(),
            Mono::Record(fs) => 1 + fs.values().map(|f| f.ty.size()).sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_types_are_canonical_in_field_order() {
        let a = Mono::record_imm([
            (Label::new("x"), Mono::int()),
            (Label::new("y"), Mono::bool()),
        ]);
        let b = Mono::record_imm([
            (Label::new("y"), Mono::bool()),
            (Label::new("x"), Mono::int()),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn mutability_distinguishes_record_types() {
        let imm = Mono::record([(Label::new("x"), FieldTy::immutable(Mono::int()))]);
        let mt = Mono::record([(Label::new("x"), FieldTy::mutable(Mono::int()))]);
        assert_ne!(imm, mt);
    }

    #[test]
    fn pair_is_numeric_record() {
        let p = Mono::pair(Mono::int(), Mono::bool());
        match &p {
            Mono::Record(fs) => {
                assert_eq!(fs.len(), 2);
                assert!(fs.contains_key(&Label::tuple(1)));
                assert!(fs.contains_key(&Label::tuple(2)));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn include_product_unary_passthrough() {
        assert_eq!(Mono::include_product(vec![Mono::int()]), Mono::int());
        assert_eq!(
            Mono::include_product(vec![Mono::int(), Mono::bool()]),
            Mono::tuple([Mono::int(), Mono::bool()])
        );
    }

    #[test]
    fn free_vars_in_first_occurrence_order() {
        let t = Mono::arrow(
            Mono::Var(3),
            Mono::pair(Mono::Var(1), Mono::set(Mono::Var(3))),
        );
        assert_eq!(t.free_vars(), vec![3, 1]);
    }

    #[test]
    fn groundness() {
        assert!(Mono::arrow(Mono::int(), Mono::set(Mono::str())).is_ground());
        assert!(!Mono::set(Mono::Var(0)).is_ground());
        assert!(!Mono::record([(Label::new("a"), FieldTy::mutable(Mono::Var(7)))]).is_ground());
    }

    #[test]
    fn arrows_currying() {
        let t = Mono::arrows([Mono::int(), Mono::bool()], Mono::str());
        assert_eq!(
            t,
            Mono::arrow(Mono::int(), Mono::arrow(Mono::bool(), Mono::str()))
        );
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Mono::int().size(), 1);
        assert_eq!(Mono::arrow(Mono::int(), Mono::bool()).size(), 3);
        assert_eq!(Mono::obj(Mono::Unit).size(), 2);
    }
}

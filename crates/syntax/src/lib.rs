//! Abstract syntax for the polymorphic calculus of views and object sharing
//! (Ohori & Tajima, PODS 1994).
//!
//! This crate defines the three syntactic layers of the paper:
//!
//! * the **core language** of Section 2 — records with mutable and immutable
//!   fields, sets, lambda terms, `fix`, `let`, `eq`, `hom` and `union`;
//! * the **view extension** of Section 3 — `IDView`, view composition
//!   (`as`), `query`, `fuse` and `relobj`;
//! * the **class extension** of Section 4 — class definitions with `include
//!   … as … where …` clauses, `c-query`, `insert`, `delete`, and mutually
//!   recursive class groups.
//!
//! It also defines the type language (monotypes, record kinds, and polytypes
//! `∀t::K.σ`), pretty-printers that follow the paper's notation, the derived
//! forms of Section 3.1 (`objeq`, `select … as … from … where …`,
//! `intersect`, `member`, `map`, `filter`, `prod`) as syntactic sugar, and a
//! builder DSL for constructing terms programmatically.

pub mod builder;
pub mod display;
pub mod kind;
pub mod label;
pub mod layout;
pub mod scheme;
pub mod sugar;
pub mod term;
pub mod types;
pub mod visit;
pub mod wire;

pub use kind::{FieldReq, Kind, MutReq};
pub use label::{Label, Name};
pub use layout::Layout;
pub use scheme::Scheme;
pub use term::{ClassDef, Expr, Field, Idx, IncludeClause, Lit};
pub use types::{BaseTy, FieldTy, Mono, RecordTy, TyVar};

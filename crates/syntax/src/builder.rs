//! A small builder DSL for constructing terms programmatically, used by
//! tests, benchmarks and embedded applications that bypass the parser.
//!
//! ```
//! use polyview_syntax::builder::*;
//!
//! // let joe = IDView([Name = "Joe", Salary := 2000]) in joe·… queries
//! let joe = id_view(record([imm("Name", str("Joe")), mt("Salary", int(2000))]));
//! let program = let_("joe", joe, query(lam("x", v("x")), v("joe")));
//! assert!(program.to_string().contains("IDView"));
//! ```

use crate::label::Label;
use crate::term::{ClassDef, Expr, Field, IncludeClause};

pub fn v(name: &str) -> Expr {
    Expr::var(name)
}

pub fn int(n: i64) -> Expr {
    Expr::int(n)
}

pub fn str(s: &str) -> Expr {
    Expr::str(s)
}

pub fn boolean(b: bool) -> Expr {
    Expr::bool(b)
}

pub fn unit() -> Expr {
    Expr::unit()
}

pub fn lam(x: &str, body: Expr) -> Expr {
    Expr::lam(x, body)
}

pub fn app(f: Expr, a: Expr) -> Expr {
    Expr::app(f, a)
}

pub fn app2(f: Expr, a: Expr, b: Expr) -> Expr {
    Expr::apps(f, [a, b])
}

pub fn let_(x: &str, rhs: Expr, body: Expr) -> Expr {
    Expr::let_(x, rhs, body)
}

pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::if_(c, t, e)
}

pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::eq(a, b)
}

/// An immutable record field `l = e`.
pub fn imm(l: &str, e: Expr) -> Field {
    Field::immutable(l, e)
}

/// A mutable record field `l := e`.
pub fn mt(l: &str, e: Expr) -> Field {
    Field::mutable(l, e)
}

pub fn record(fields: impl IntoIterator<Item = Field>) -> Expr {
    Expr::record(fields)
}

pub fn dot(e: Expr, l: &str) -> Expr {
    Expr::dot(e, l)
}

pub fn extract(e: Expr, l: &str) -> Expr {
    Expr::extract(e, l)
}

pub fn update(e: Expr, l: &str, val: Expr) -> Expr {
    Expr::update(e, l, val)
}

pub fn set(es: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::set(es)
}

pub fn empty() -> Expr {
    Expr::empty_set()
}

pub fn union(a: Expr, b: Expr) -> Expr {
    Expr::union(a, b)
}

pub fn hom(s: Expr, f: Expr, op: Expr, z: Expr) -> Expr {
    Expr::hom(s, f, op, z)
}

pub fn id_view(e: Expr) -> Expr {
    Expr::id_view(e)
}

pub fn as_view(e: Expr, f: Expr) -> Expr {
    Expr::as_view(e, f)
}

pub fn query(f: Expr, o: Expr) -> Expr {
    Expr::query(f, o)
}

pub fn fuse(a: Expr, b: Expr) -> Expr {
    Expr::fuse(a, b)
}

pub fn relobj(fields: impl IntoIterator<Item = (&'static str, Expr)>) -> Expr {
    Expr::relobj(fields.into_iter().map(|(l, e)| (Label::new(l), e)))
}

pub fn cquery(f: Expr, c: Expr) -> Expr {
    Expr::cquery(f, c)
}

pub fn insert(c: Expr, e: Expr) -> Expr {
    Expr::insert(c, e)
}

pub fn delete(c: Expr, e: Expr) -> Expr {
    Expr::delete(c, e)
}

/// An `include sources as view where pred` clause.
pub fn include(sources: Vec<Expr>, view: Expr, pred: Expr) -> IncludeClause {
    IncludeClause {
        sources,
        view,
        pred,
    }
}

/// `class own include … end` as an expression.
pub fn class(own: Expr, includes: Vec<IncludeClause>) -> Expr {
    Expr::ClassExpr(ClassDef {
        own: Box::new(own),
        includes,
    })
}

/// `let c1 = class … and … in body end`.
pub fn let_classes(binds: Vec<(&str, Expr)>, body: Expr) -> Expr {
    let binds = binds
        .into_iter()
        .map(|(n, e)| match e {
            Expr::ClassExpr(cd) => (Label::new(n), cd),
            other => panic!("let_classes binding {n} must be a class expression, got {other}"),
        })
        .collect();
    Expr::LetClasses(binds, Box::new(body))
}

pub fn pair(a: Expr, b: Expr) -> Expr {
    Expr::pair(a, b)
}

pub fn proj(e: Expr, i: usize) -> Expr {
    Expr::proj(e, i)
}

/// Integer addition via the builtin `add`.
pub fn add(a: Expr, b: Expr) -> Expr {
    app2(v("add"), a, b)
}

/// Integer multiplication via the builtin `mul`.
pub fn mul(a: Expr, b: Expr) -> Expr {
    app2(v("mul"), a, b)
}

/// Integer subtraction via the builtin `sub`.
pub fn sub(a: Expr, b: Expr) -> Expr {
    app2(v("sub"), a, b)
}

/// Integer comparison via the builtin `gt`.
pub fn gt(a: Expr, b: Expr) -> Expr {
    app2(v("gt"), a, b)
}

/// Integer comparison via the builtin `lt`.
pub fn lt(a: Expr, b: Expr) -> Expr {
    app2(v("lt"), a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = let_(
            "joe",
            id_view(record([imm("Name", str("Joe")), mt("Salary", int(2000))])),
            query(lam("x", dot(v("x"), "Salary")), v("joe")),
        );
        assert_eq!(e.size(), 10);
    }

    #[test]
    #[should_panic(expected = "must be a class expression")]
    fn let_classes_rejects_non_class() {
        let_classes(vec![("C", int(1))], v("C"));
    }

    #[test]
    fn class_builder_shape() {
        let c = class(
            empty(),
            vec![include(
                vec![v("Staff")],
                lam("s", v("s")),
                lam("s", boolean(true)),
            )],
        );
        assert!(matches!(c, Expr::ClassExpr(_)));
    }
}

//! Pretty-printing of terms, types, kinds and schemes in the paper's
//! notation.
//!
//! Types print as e.g. `[Name = string, Salary := int]`,
//! `{obj([Name = string])}`, and schemes as
//! `∀t1::[[Income = int]]. t1 → int` with binders renamed to `t1, t2, …` in
//! order of appearance, so two alpha-equivalent schemes print identically.

use crate::kind::{Kind, MutReq};
use crate::scheme::Scheme;
use crate::term::{ClassDef, Expr, Lit};
use crate::types::{BaseTy, Mono, TyVar};
use std::collections::HashMap;
use std::fmt;

impl fmt::Display for BaseTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseTy::Int => write!(f, "int"),
            BaseTy::Bool => write!(f, "bool"),
            BaseTy::Str => write!(f, "string"),
        }
    }
}

/// Renaming of type variables for display.
struct VarNames {
    map: HashMap<TyVar, usize>,
    rename: bool,
}

impl VarNames {
    fn raw() -> Self {
        VarNames {
            map: HashMap::new(),
            rename: false,
        }
    }
    fn renamed() -> Self {
        VarNames {
            map: HashMap::new(),
            rename: true,
        }
    }
    fn name(&mut self, v: TyVar) -> String {
        if self.rename {
            let n = self.map.len() + 1;
            let idx = *self.map.entry(v).or_insert(n);
            format!("t{idx}")
        } else {
            format!("t{v}")
        }
    }
}

fn fmt_mono(t: &Mono, names: &mut VarNames, out: &mut String) {
    match t {
        Mono::Base(b) => out.push_str(&b.to_string()),
        Mono::Unit => out.push_str("unit"),
        Mono::Var(v) => out.push_str(&names.name(*v)),
        Mono::Arrow(a, b) => {
            let needs_parens = matches!(**a, Mono::Arrow(..));
            if needs_parens {
                out.push('(');
            }
            fmt_mono(a, names, out);
            if needs_parens {
                out.push(')');
            }
            out.push_str(" -> ");
            fmt_mono(b, names, out);
        }
        Mono::Set(e) => {
            out.push('{');
            fmt_mono(e, names, out);
            out.push('}');
        }
        Mono::LVal(e) => {
            out.push_str("L(");
            fmt_mono(e, names, out);
            out.push(')');
        }
        Mono::Record(fs) => {
            out.push('[');
            for (i, (l, ft)) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(l.as_str());
                out.push_str(if ft.mutable { " := " } else { " = " });
                fmt_mono(&ft.ty, names, out);
            }
            out.push(']');
        }
        Mono::Obj(e) => {
            out.push_str("obj(");
            fmt_mono(e, names, out);
            out.push(')');
        }
        Mono::Class(e) => {
            out.push_str("class(");
            fmt_mono(e, names, out);
            out.push(')');
        }
    }
}

fn fmt_kind(k: &Kind, names: &mut VarNames, out: &mut String) {
    match k {
        Kind::Univ => out.push('U'),
        Kind::Record(reqs) => {
            out.push_str("[[");
            for (i, (l, r)) in reqs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(l.as_str());
                out.push_str(match r.req {
                    MutReq::Any => " = ",
                    MutReq::Mutable => " := ",
                });
                fmt_mono(&r.ty, names, out);
            }
            out.push_str("]]");
        }
    }
}

impl fmt::Display for Mono {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        fmt_mono(self, &mut VarNames::raw(), &mut s);
        f.write_str(&s)
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        fmt_kind(self, &mut VarNames::raw(), &mut s);
        f.write_str(&s)
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = VarNames::renamed();
        let mut s = String::new();
        for (v, k) in &self.binders {
            s.push('∀');
            let nm = names.name(*v);
            s.push_str(&nm);
            s.push_str("::");
            fmt_kind(k, &mut names, &mut s);
            s.push('.');
        }
        if !self.binders.is_empty() {
            s.push(' ');
        }
        fmt_mono(&self.body, &mut names, &mut s);
        f.write_str(&s)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Unit => write!(f, "()"),
            Lit::Int(n) => write!(f, "{n}"),
            Lit::Bool(b) => write!(f, "{b}"),
            Lit::Str(s) => write!(f, "{s:?}"),
        }
    }
}

fn fmt_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Lit(l) => out.push_str(&l.to_string()),
        Expr::Var(x) => out.push_str(x.as_str()),
        Expr::Eq(a, b) => fmt_call(out, "eq", [a.as_ref(), b.as_ref()]),
        Expr::Lam(x, b) => {
            out.push_str("fn ");
            out.push_str(x.as_str());
            out.push_str(" => ");
            fmt_expr(b, out);
        }
        Expr::App(f, a) => {
            out.push('(');
            fmt_app_operand(f, out);
            out.push(' ');
            fmt_app_operand(a, out);
            out.push(')');
        }
        Expr::Record(fs) => {
            out.push('[');
            for (i, fld) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(fld.label.as_str());
                out.push_str(if fld.mutable { " := " } else { " = " });
                fmt_expr(&fld.expr, out);
            }
            out.push(']');
        }
        Expr::Dot(e, l) => {
            fmt_expr(e, out);
            out.push('.');
            out.push_str(l.as_str());
        }
        Expr::Extract(e, l) => {
            out.push_str("extract(");
            fmt_expr(e, out);
            out.push_str(", ");
            out.push_str(l.as_str());
            out.push(')');
        }
        Expr::Update(e, l, v) => {
            out.push_str("update(");
            fmt_expr(e, out);
            out.push_str(", ");
            out.push_str(l.as_str());
            out.push_str(", ");
            fmt_expr(v, out);
            out.push(')');
        }
        Expr::SetLit(es) => {
            out.push('{');
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_expr(e, out);
            }
            out.push('}');
        }
        Expr::Union(a, b) => fmt_call(out, "union", [a.as_ref(), b.as_ref()]),
        Expr::Hom(s, f, op, z) => fmt_call(
            out,
            "hom",
            [s.as_ref(), f.as_ref(), op.as_ref(), z.as_ref()],
        ),
        Expr::Fix(x, b) => {
            out.push_str("fix ");
            out.push_str(x.as_str());
            out.push_str(" => ");
            fmt_expr(b, out);
        }
        Expr::Let(x, rhs, body) => {
            out.push_str("let ");
            out.push_str(x.as_str());
            out.push_str(" = ");
            fmt_expr(rhs, out);
            out.push_str(" in ");
            fmt_expr(body, out);
            out.push_str(" end");
        }
        Expr::If(c, t, e2) => {
            out.push_str("if ");
            fmt_expr(c, out);
            out.push_str(" then ");
            fmt_expr(t, out);
            out.push_str(" else ");
            fmt_expr(e2, out);
        }
        Expr::IdView(e) => fmt_call(out, "IDView", [e.as_ref()]),
        Expr::AsView(e, f) => {
            out.push('(');
            fmt_expr(e, out);
            out.push_str(" as ");
            fmt_expr(f, out);
            out.push(')');
        }
        Expr::Query(f, o) => fmt_call(out, "query", [f.as_ref(), o.as_ref()]),
        Expr::Fuse(a, b) => fmt_call(out, "fuse", [a.as_ref(), b.as_ref()]),
        Expr::RelObj(fs) => {
            out.push_str("relobj(");
            for (i, (l, e)) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(l.as_str());
                out.push_str(" = ");
                fmt_expr(e, out);
            }
            out.push(')');
        }
        Expr::ClassExpr(cd) => fmt_class(cd, out),
        Expr::CQuery(f, c) => fmt_call(out, "cquery", [f.as_ref(), c.as_ref()]),
        Expr::Insert(c, e) => fmt_call(out, "insert", [c.as_ref(), e.as_ref()]),
        Expr::Delete(c, e) => fmt_call(out, "delete", [c.as_ref(), e.as_ref()]),
        // Lowered forms (never produced by the parser): render the source
        // label together with the resolved offset so `:explain` output and
        // debug dumps show exactly what the compile tier decided.
        Expr::DotAt(e, l, idx) => {
            fmt_expr(e, out);
            out.push('.');
            out.push_str(l.as_str());
            fmt_idx(idx, out);
        }
        Expr::ExtractAt(e, l, idx) => {
            out.push_str("extract");
            fmt_idx(idx, out);
            out.push('(');
            fmt_expr(e, out);
            out.push_str(", ");
            out.push_str(l.as_str());
            out.push(')');
        }
        Expr::UpdateAt(e, l, idx, v) => {
            out.push_str("update");
            fmt_idx(idx, out);
            out.push('(');
            fmt_expr(e, out);
            out.push_str(", ");
            out.push_str(l.as_str());
            out.push_str(", ");
            fmt_expr(v, out);
            out.push(')');
        }
        Expr::RecordAt(layout, fs) => {
            // Entries are in source (evaluation) order, each tagged with
            // its target slot; print label from the layout at that slot.
            out.push('[');
            for (i, (slot, e)) in fs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(layout.label_at(*slot).as_str());
                out.push('@');
                out.push_str(&slot.to_string());
                out.push_str(if layout.is_mutable(*slot) {
                    " := "
                } else {
                    " = "
                });
                fmt_expr(e, out);
            }
            out.push(']');
        }
        Expr::LetClasses(binds, body) => {
            out.push_str("let class ");
            for (i, (c, cd)) in binds.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                out.push_str(c.as_str());
                out.push_str(" = ");
                fmt_class(cd, out);
            }
            out.push_str(" in ");
            fmt_expr(body, out);
            out.push_str(" end");
        }
    }
}

/// `@3` for a resolved constant offset, `@?x` for an index parameter.
fn fmt_idx(idx: &crate::term::Idx, out: &mut String) {
    match idx {
        crate::term::Idx::Const(n) => {
            out.push('@');
            out.push_str(&n.to_string());
        }
        crate::term::Idx::Var(x) => {
            out.push_str("@?");
            out.push_str(x.as_str());
        }
    }
}

fn fmt_class(cd: &ClassDef, out: &mut String) {
    out.push_str("class ");
    fmt_expr(&cd.own, out);
    for inc in &cd.includes {
        out.push_str(" include ");
        for (i, s) in inc.sources.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            fmt_expr(s, out);
        }
        out.push_str(" as ");
        fmt_expr(&inc.view, out);
        out.push_str(" where ");
        fmt_expr(&inc.pred, out);
    }
    out.push_str(" end");
}

/// Operands of an application: prefix forms and negative literals need
/// parentheses to re-parse in juxtaposition position.
fn fmt_app_operand(e: &Expr, out: &mut String) {
    let needs_parens = matches!(
        e,
        Expr::If(..) | Expr::Let(..) | Expr::Lam(..) | Expr::Fix(..) | Expr::LetClasses(..)
    ) || matches!(e, Expr::Lit(Lit::Int(n)) if *n < 0);
    if needs_parens {
        out.push('(');
        fmt_expr(e, out);
        out.push(')');
    } else {
        fmt_expr(e, out);
    }
}

fn fmt_call<'a>(out: &mut String, name: &str, args: impl IntoIterator<Item = &'a Expr>) {
    out.push_str(name);
    out.push('(');
    for (i, a) in args.into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        fmt_expr(a, out);
    }
    out.push(')');
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        fmt_expr(self, &mut s);
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::term::Field;
    use crate::types::FieldTy;

    #[test]
    fn record_type_display() {
        let t = Mono::record([
            (Label::new("Name"), FieldTy::immutable(Mono::str())),
            (Label::new("Salary"), FieldTy::mutable(Mono::int())),
        ]);
        assert_eq!(t.to_string(), "[Name = string, Salary := int]");
    }

    #[test]
    fn obj_and_set_display() {
        let t = Mono::set(Mono::obj(Mono::record_imm([(
            Label::new("Name"),
            Mono::str(),
        )])));
        assert_eq!(t.to_string(), "{obj([Name = string])}");
    }

    #[test]
    fn arrow_display_parenthesizes_domain() {
        let t = Mono::arrow(Mono::arrow(Mono::int(), Mono::int()), Mono::bool());
        assert_eq!(t.to_string(), "(int -> int) -> bool");
        let t2 = Mono::arrow(Mono::int(), Mono::arrow(Mono::int(), Mono::bool()));
        assert_eq!(t2.to_string(), "int -> int -> bool");
    }

    #[test]
    fn scheme_display_renames_binders() {
        // The Annual_Income type from the paper:
        // ∀t::[[Income = int, Bonus = int]]. t → int
        let s = Scheme::poly(
            vec![(
                42,
                Kind::Record(
                    [
                        (Label::new("Bonus"), crate::kind::FieldReq::any(Mono::int())),
                        (
                            Label::new("Income"),
                            crate::kind::FieldReq::any(Mono::int()),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                ),
            )],
            Mono::arrow(Mono::Var(42), Mono::int()),
        );
        assert_eq!(
            s.to_string(),
            "∀t1::[[Bonus = int, Income = int]]. t1 -> int"
        );
    }

    #[test]
    fn alpha_equivalent_schemes_print_identically() {
        let mk = |v: TyVar| {
            Scheme::poly(
                vec![(v, Kind::Univ)],
                Mono::arrow(Mono::Var(v), Mono::Var(v)),
            )
        };
        assert_eq!(mk(3).to_string(), mk(77).to_string());
    }

    #[test]
    fn mutable_kind_display() {
        let k = Kind::has_mutable_field(Label::new("Bonus"), Mono::int());
        assert_eq!(k.to_string(), "[[Bonus := int]]");
    }

    #[test]
    fn expr_display_roundtrips_shape() {
        let e = Expr::let_(
            "joe",
            Expr::id_view(Expr::record([
                Field::immutable("Name", Expr::str("Joe")),
                Field::mutable("Salary", Expr::int(2000)),
            ])),
            Expr::query(Expr::lam("x", Expr::var("x")), Expr::var("joe")),
        );
        assert_eq!(
            e.to_string(),
            "let joe = IDView([Name = \"Joe\", Salary := 2000]) in \
             query(fn x => x, joe) end"
        );
    }

    #[test]
    fn class_display() {
        let cd = ClassDef {
            own: Box::new(Expr::empty_set()),
            includes: vec![crate::term::IncludeClause {
                sources: vec![Expr::var("Staff")],
                view: Expr::lam("s", Expr::var("s")),
                pred: Expr::lam("s", Expr::bool(true)),
            }],
        };
        assert_eq!(
            Expr::ClassExpr(cd).to_string(),
            "class {} include Staff as fn s => s where fn s => true end"
        );
    }
}

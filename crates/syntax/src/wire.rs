//! A hand-rolled binary codec for the syntax layer, following the
//! no-serde discipline of `obs::jsonl`: fixed-width little-endian
//! integers, length-prefixed UTF-8 strings, one `u8` tag per enum
//! variant. The engine snapshot tier (DESIGN.md §17) builds on these
//! primitives: `polyview-eval` encodes closure bodies and layouts with
//! them, `polyview-core` encodes schemes and kinds.
//!
//! The format is intentionally dumb — no varints, no compression, no
//! self-description — because snapshots are versioned at the envelope
//! level (the eval/core headers carry magic + version) and decoded only
//! by the same build that defines these tags. Every decode path returns
//! a [`WireError`] instead of panicking: a truncated or corrupt snapshot
//! must surface loudly to the caller, never produce a half-decoded
//! value.
//!
//! `Expr` trees are encoded structurally (the parser produces trees, not
//! DAGs); sharing of `Rc<Expr>` closure *bodies* across values is
//! preserved one level up, by the evaluator's node table
//! (`polyview_eval::snapshot`), which memoizes whole bodies by pointer
//! before delegating to [`write_expr`] for their contents.

use crate::kind::{FieldReq, Kind, MutReq};
use crate::label::{Label, Name};
use crate::layout::Layout;
use crate::scheme::Scheme;
use crate::term::{ClassDef, Expr, Field, Idx, IncludeClause, Lit};
use crate::types::{BaseTy, FieldTy, Mono};
use std::fmt;

/// A decode failure. Encoding is infallible; decoding anything that was
/// not produced by the matching encoder is not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated { what: &'static str },
    /// An enum tag byte outside the known range.
    BadTag { what: &'static str, tag: u8 },
    /// A length-prefixed string that is not UTF-8.
    BadUtf8,
    /// Anything else (bad magic, unsupported version, dangling node
    /// reference, …) — the message says what.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "snapshot truncated while reading {what}"),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in snapshot string"),
            WireError::Malformed(m) => write!(f, "malformed snapshot: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte sink. All integers are little-endian fixed width.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        ByteWriter::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` stored as `u64` (offsets, lengths, slot ids).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Raw bytes with a length prefix (nested sections).
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over an encoded buffer. Every read checks bounds and returns
/// [`WireError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    pub fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("len checked")))
    }

    pub fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("len checked")))
    }

    pub fn i64(&mut self, what: &'static str) -> Result<i64, WireError> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("len checked")))
    }

    pub fn usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        let v = self.u64(what)?;
        usize::try_from(v).map_err(|_| WireError::Malformed(format!("{what}: {v} overflows usize")))
    }

    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let n = self.u32(what)? as usize;
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// A length-prefixed nested section written by [`ByteWriter::bytes`].
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let n = self.usize(what)?;
        self.take(n, what)
    }

    /// Bounded element count for a collection about to be decoded: a
    /// corrupt length prefix must not become a huge allocation.
    pub fn count(&mut self, what: &'static str) -> Result<usize, WireError> {
        let n = self.usize(what)?;
        if n > self.remaining() {
            return Err(WireError::Malformed(format!(
                "{what}: count {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Labels and literals
// ---------------------------------------------------------------------

pub fn write_label(w: &mut ByteWriter, l: &Label) {
    w.str(l.as_str());
}

pub fn read_label(r: &mut ByteReader) -> Result<Label, WireError> {
    Ok(Label::new(r.str("label")?))
}

pub fn write_lit(w: &mut ByteWriter, l: &Lit) {
    match l {
        Lit::Unit => w.u8(0),
        Lit::Int(n) => {
            w.u8(1);
            w.i64(*n);
        }
        Lit::Bool(b) => {
            w.u8(2);
            w.bool(*b);
        }
        Lit::Str(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

pub fn read_lit(r: &mut ByteReader) -> Result<Lit, WireError> {
    Ok(match r.u8("lit tag")? {
        0 => Lit::Unit,
        1 => Lit::Int(r.i64("int lit")?),
        2 => Lit::Bool(r.bool("bool lit")?),
        3 => Lit::Str(r.str("str lit")?),
        tag => return Err(WireError::BadTag { what: "lit", tag }),
    })
}

// ---------------------------------------------------------------------
// Layouts
// ---------------------------------------------------------------------

pub fn write_layout(w: &mut ByteWriter, l: &Layout) {
    w.usize(l.len());
    for (label, mutable) in l.iter() {
        write_label(w, label);
        w.bool(mutable);
    }
}

pub fn read_layout(r: &mut ByteReader) -> Result<Layout, WireError> {
    let n = r.count("layout fields")?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let label = read_label(r)?;
        let mutable = r.bool("layout mutability")?;
        fields.push((label, mutable));
    }
    Ok(Layout::new(fields))
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

fn write_idx(w: &mut ByteWriter, i: &Idx) {
    match i {
        Idx::Const(n) => {
            w.u8(0);
            w.usize(*n);
        }
        Idx::Var(name) => {
            w.u8(1);
            write_label(w, name);
        }
    }
}

fn read_idx(r: &mut ByteReader) -> Result<Idx, WireError> {
    Ok(match r.u8("idx tag")? {
        0 => Idx::Const(r.usize("const idx")?),
        1 => Idx::Var(read_label(r)?),
        tag => return Err(WireError::BadTag { what: "idx", tag }),
    })
}

fn write_class_def(w: &mut ByteWriter, c: &ClassDef) {
    write_expr(w, &c.own);
    w.usize(c.includes.len());
    for inc in &c.includes {
        w.usize(inc.sources.len());
        for s in &inc.sources {
            write_expr(w, s);
        }
        write_expr(w, &inc.view);
        write_expr(w, &inc.pred);
    }
}

fn read_class_def(r: &mut ByteReader) -> Result<ClassDef, WireError> {
    let own = Box::new(read_expr(r)?);
    let n = r.count("include clauses")?;
    let mut includes = Vec::with_capacity(n);
    for _ in 0..n {
        let m = r.count("include sources")?;
        let mut sources = Vec::with_capacity(m);
        for _ in 0..m {
            sources.push(read_expr(r)?);
        }
        let view = read_expr(r)?;
        let pred = read_expr(r)?;
        includes.push(IncludeClause {
            sources,
            view,
            pred,
        });
    }
    Ok(ClassDef { own, includes })
}

/// Encode an expression tree. Covers every variant, including the
/// offset-resolved compile-tier forms (`DotAt`/…/`RecordAt`) — a closure
/// captured from lowered code must restore to the same lowered body.
pub fn write_expr(w: &mut ByteWriter, e: &Expr) {
    match e {
        Expr::Lit(l) => {
            w.u8(0);
            write_lit(w, l);
        }
        Expr::Var(x) => {
            w.u8(1);
            write_label(w, x);
        }
        Expr::Eq(a, b) => {
            w.u8(2);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expr::Lam(x, body) => {
            w.u8(3);
            write_label(w, x);
            write_expr(w, body);
        }
        Expr::App(f, a) => {
            w.u8(4);
            write_expr(w, f);
            write_expr(w, a);
        }
        Expr::Record(fields) => {
            w.u8(5);
            w.usize(fields.len());
            for f in fields {
                write_label(w, &f.label);
                w.bool(f.mutable);
                write_expr(w, &f.expr);
            }
        }
        Expr::Dot(e, l) => {
            w.u8(6);
            write_expr(w, e);
            write_label(w, l);
        }
        Expr::Extract(e, l) => {
            w.u8(7);
            write_expr(w, e);
            write_label(w, l);
        }
        Expr::Update(e, l, v) => {
            w.u8(8);
            write_expr(w, e);
            write_label(w, l);
            write_expr(w, v);
        }
        Expr::SetLit(es) => {
            w.u8(9);
            w.usize(es.len());
            for e in es {
                write_expr(w, e);
            }
        }
        Expr::Union(a, b) => {
            w.u8(10);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expr::Hom(s, f, op, z) => {
            w.u8(11);
            write_expr(w, s);
            write_expr(w, f);
            write_expr(w, op);
            write_expr(w, z);
        }
        Expr::Fix(x, body) => {
            w.u8(12);
            write_label(w, x);
            write_expr(w, body);
        }
        Expr::Let(x, rhs, body) => {
            w.u8(13);
            write_label(w, x);
            write_expr(w, rhs);
            write_expr(w, body);
        }
        Expr::If(c, t, e) => {
            w.u8(14);
            write_expr(w, c);
            write_expr(w, t);
            write_expr(w, e);
        }
        Expr::IdView(e) => {
            w.u8(15);
            write_expr(w, e);
        }
        Expr::AsView(e, v) => {
            w.u8(16);
            write_expr(w, e);
            write_expr(w, v);
        }
        Expr::Query(f, o) => {
            w.u8(17);
            write_expr(w, f);
            write_expr(w, o);
        }
        Expr::Fuse(a, b) => {
            w.u8(18);
            write_expr(w, a);
            write_expr(w, b);
        }
        Expr::RelObj(fields) => {
            w.u8(19);
            w.usize(fields.len());
            for (l, e) in fields {
                write_label(w, l);
                write_expr(w, e);
            }
        }
        Expr::ClassExpr(c) => {
            w.u8(20);
            write_class_def(w, c);
        }
        Expr::CQuery(f, c) => {
            w.u8(21);
            write_expr(w, f);
            write_expr(w, c);
        }
        Expr::Insert(c, e) => {
            w.u8(22);
            write_expr(w, c);
            write_expr(w, e);
        }
        Expr::Delete(c, e) => {
            w.u8(23);
            write_expr(w, c);
            write_expr(w, e);
        }
        Expr::LetClasses(defs, body) => {
            w.u8(24);
            w.usize(defs.len());
            for (n, c) in defs {
                write_label(w, n);
                write_class_def(w, c);
            }
            write_expr(w, body);
        }
        Expr::DotAt(e, l, i) => {
            w.u8(25);
            write_expr(w, e);
            write_label(w, l);
            write_idx(w, i);
        }
        Expr::ExtractAt(e, l, i) => {
            w.u8(26);
            write_expr(w, e);
            write_label(w, l);
            write_idx(w, i);
        }
        Expr::UpdateAt(e, l, i, v) => {
            w.u8(27);
            write_expr(w, e);
            write_label(w, l);
            write_idx(w, i);
            write_expr(w, v);
        }
        Expr::RecordAt(layout, entries) => {
            w.u8(28);
            write_layout(w, layout);
            w.usize(entries.len());
            for (off, e) in entries {
                w.usize(*off);
                write_expr(w, e);
            }
        }
    }
}

/// Decode an expression tree written by [`write_expr`].
pub fn read_expr(r: &mut ByteReader) -> Result<Expr, WireError> {
    Ok(match r.u8("expr tag")? {
        0 => Expr::Lit(read_lit(r)?),
        1 => Expr::Var(read_label(r)?),
        2 => Expr::eq(read_expr(r)?, read_expr(r)?),
        3 => {
            let x = read_label(r)?;
            Expr::lam(x, read_expr(r)?)
        }
        4 => Expr::app(read_expr(r)?, read_expr(r)?),
        5 => {
            let n = r.count("record fields")?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let label = read_label(r)?;
                let mutable = r.bool("field mutability")?;
                let expr = read_expr(r)?;
                fields.push(Field {
                    label,
                    mutable,
                    expr,
                });
            }
            Expr::Record(fields)
        }
        6 => {
            let e = read_expr(r)?;
            Expr::dot(e, read_label(r)?)
        }
        7 => {
            let e = read_expr(r)?;
            Expr::extract(e, read_label(r)?)
        }
        8 => {
            let e = read_expr(r)?;
            let l = read_label(r)?;
            Expr::update(e, l, read_expr(r)?)
        }
        9 => {
            let n = r.count("set elements")?;
            let mut es = Vec::with_capacity(n);
            for _ in 0..n {
                es.push(read_expr(r)?);
            }
            Expr::SetLit(es)
        }
        10 => Expr::union(read_expr(r)?, read_expr(r)?),
        11 => Expr::hom(read_expr(r)?, read_expr(r)?, read_expr(r)?, read_expr(r)?),
        12 => {
            let x = read_label(r)?;
            Expr::fix(x, read_expr(r)?)
        }
        13 => {
            let x = read_label(r)?;
            let rhs = read_expr(r)?;
            Expr::let_(x, rhs, read_expr(r)?)
        }
        14 => Expr::if_(read_expr(r)?, read_expr(r)?, read_expr(r)?),
        15 => Expr::id_view(read_expr(r)?),
        16 => Expr::as_view(read_expr(r)?, read_expr(r)?),
        17 => Expr::query(read_expr(r)?, read_expr(r)?),
        18 => Expr::fuse(read_expr(r)?, read_expr(r)?),
        19 => {
            let n = r.count("relobj fields")?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let l = read_label(r)?;
                fields.push((l, read_expr(r)?));
            }
            Expr::RelObj(fields)
        }
        20 => Expr::ClassExpr(read_class_def(r)?),
        21 => Expr::cquery(read_expr(r)?, read_expr(r)?),
        22 => Expr::insert(read_expr(r)?, read_expr(r)?),
        23 => Expr::delete(read_expr(r)?, read_expr(r)?),
        24 => {
            let n = r.count("class group")?;
            let mut defs = Vec::with_capacity(n);
            for _ in 0..n {
                let name = read_label(r)?;
                defs.push((name, read_class_def(r)?));
            }
            Expr::LetClasses(defs, Box::new(read_expr(r)?))
        }
        25 => {
            let e = read_expr(r)?;
            let l = read_label(r)?;
            Expr::dot_at(e, l, read_idx(r)?)
        }
        26 => {
            let e = read_expr(r)?;
            let l = read_label(r)?;
            Expr::extract_at(e, l, read_idx(r)?)
        }
        27 => {
            let e = read_expr(r)?;
            let l = read_label(r)?;
            let i = read_idx(r)?;
            Expr::update_at(e, l, i, read_expr(r)?)
        }
        28 => {
            let layout = read_layout(r)?;
            let n = r.count("record-at entries")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let off = r.usize("slot offset")?;
                entries.push((off, read_expr(r)?));
            }
            Expr::RecordAt(std::rc::Rc::new(layout), entries)
        }
        tag => return Err(WireError::BadTag { what: "expr", tag }),
    })
}

// ---------------------------------------------------------------------
// Types, kinds, schemes
// ---------------------------------------------------------------------

pub fn write_mono(w: &mut ByteWriter, t: &Mono) {
    match t {
        Mono::Base(BaseTy::Int) => w.u8(0),
        Mono::Base(BaseTy::Bool) => w.u8(1),
        Mono::Base(BaseTy::Str) => w.u8(2),
        Mono::Unit => w.u8(3),
        Mono::Var(v) => {
            w.u8(4);
            w.u32(*v);
        }
        Mono::Arrow(a, b) => {
            w.u8(5);
            write_mono(w, a);
            write_mono(w, b);
        }
        Mono::Set(t) => {
            w.u8(6);
            write_mono(w, t);
        }
        Mono::LVal(t) => {
            w.u8(7);
            write_mono(w, t);
        }
        Mono::Record(fields) => {
            w.u8(8);
            w.usize(fields.len());
            for (l, f) in fields {
                write_label(w, l);
                w.bool(f.mutable);
                write_mono(w, &f.ty);
            }
        }
        Mono::Obj(t) => {
            w.u8(9);
            write_mono(w, t);
        }
        Mono::Class(t) => {
            w.u8(10);
            write_mono(w, t);
        }
    }
}

pub fn read_mono(r: &mut ByteReader) -> Result<Mono, WireError> {
    Ok(match r.u8("mono tag")? {
        0 => Mono::int(),
        1 => Mono::bool(),
        2 => Mono::str(),
        3 => Mono::Unit,
        4 => Mono::Var(r.u32("type var")?),
        5 => Mono::arrow(read_mono(r)?, read_mono(r)?),
        6 => Mono::set(read_mono(r)?),
        7 => Mono::lval(read_mono(r)?),
        8 => {
            let n = r.count("record type fields")?;
            let mut fields = Vec::with_capacity(n);
            for _ in 0..n {
                let l = read_label(r)?;
                let mutable = r.bool("field-ty mutability")?;
                let ty = read_mono(r)?;
                fields.push((l, FieldTy { mutable, ty }));
            }
            Mono::record(fields)
        }
        9 => Mono::obj(read_mono(r)?),
        10 => Mono::class(read_mono(r)?),
        tag => return Err(WireError::BadTag { what: "mono", tag }),
    })
}

pub fn write_kind(w: &mut ByteWriter, k: &Kind) {
    match k {
        Kind::Univ => w.u8(0),
        Kind::Record(reqs) => {
            w.u8(1);
            w.usize(reqs.len());
            for (l, req) in reqs {
                write_label(w, l);
                w.bool(req.req == MutReq::Mutable);
                write_mono(w, &req.ty);
            }
        }
    }
}

pub fn read_kind(r: &mut ByteReader) -> Result<Kind, WireError> {
    Ok(match r.u8("kind tag")? {
        0 => Kind::Univ,
        1 => {
            let n = r.count("kind fields")?;
            let mut reqs = std::collections::BTreeMap::new();
            for _ in 0..n {
                let l = read_label(r)?;
                let mutable = r.bool("kind mutability")?;
                let ty = read_mono(r)?;
                let req = if mutable {
                    FieldReq::mutable(ty)
                } else {
                    FieldReq::any(ty)
                };
                reqs.insert(l, req);
            }
            Kind::Record(reqs)
        }
        tag => return Err(WireError::BadTag { what: "kind", tag }),
    })
}

pub fn write_scheme(w: &mut ByteWriter, s: &Scheme) {
    w.usize(s.binders.len());
    for (v, k) in &s.binders {
        w.u32(*v);
        write_kind(w, k);
    }
    write_mono(w, &s.body);
}

pub fn read_scheme(r: &mut ByteReader) -> Result<Scheme, WireError> {
    let n = r.count("scheme binders")?;
    let mut binders = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.u32("binder var")?;
        binders.push((v, read_kind(r)?));
    }
    Ok(Scheme::poly(binders, read_mono(r)?))
}

/// Encode a name used as a map key (same representation as a label).
pub fn write_name(w: &mut ByteWriter, n: &Name) {
    write_label(w, n);
}

pub fn read_name(r: &mut ByteReader) -> Result<Name, WireError> {
    read_label(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Field;

    fn roundtrip_expr(e: &Expr) -> Expr {
        let mut w = ByteWriter::new();
        write_expr(&mut w, e);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = read_expr(&mut r).expect("decodes");
        assert!(r.finished(), "undrained bytes after expr");
        back
    }

    #[test]
    fn primitive_roundtrips() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.bool(true);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.i64(-42);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert!(r.bool("b").unwrap());
        assert_eq!(r.u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("d").unwrap(), u64::MAX);
        assert_eq!(r.i64("e").unwrap(), -42);
        assert_eq!(r.str("f").unwrap(), "héllo");
        assert_eq!(r.bytes("g").unwrap(), &[1, 2, 3]);
        assert!(r.finished());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(123);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..4]);
        assert!(matches!(
            r.u64("x"),
            Err(WireError::Truncated { what: "x" })
        ));
    }

    #[test]
    fn oversized_count_is_rejected() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.count("huge").is_err());
    }

    #[test]
    fn expr_roundtrip_covers_core_and_views() {
        let e = Expr::let_(
            "x",
            Expr::record([
                Field::immutable("Name", Expr::str("Joe")),
                Field::mutable("Salary", Expr::int(2000)),
            ]),
            Expr::if_(
                Expr::eq(Expr::dot(Expr::var("x"), "Name"), Expr::str("Joe")),
                Expr::query(
                    Expr::lam("p", Expr::dot(Expr::var("p"), "Salary")),
                    Expr::id_view(Expr::var("x")),
                ),
                Expr::int(0),
            ),
        );
        assert_eq!(roundtrip_expr(&e), e);
    }

    #[test]
    fn expr_roundtrip_covers_classes_and_lowered_forms() {
        let cd = ClassDef {
            own: Box::new(Expr::empty_set()),
            includes: vec![IncludeClause {
                sources: vec![Expr::var("Staff")],
                view: Expr::lam("x", Expr::var("x")),
                pred: Expr::lam("x", Expr::bool(true)),
            }],
        };
        let layout = Layout::new([(Label::new("a"), false), (Label::new("b"), true)]);
        let e = Expr::LetClasses(
            vec![(Label::new("C"), cd)],
            Box::new(Expr::RecordAt(
                std::rc::Rc::new(layout),
                vec![
                    (0, Expr::int(1)),
                    (
                        1,
                        Expr::dot_at(Expr::var("r"), "b", Idx::Var(Label::new("#i0"))),
                    ),
                ],
            )),
        );
        assert_eq!(roundtrip_expr(&e), e);
        let e2 = Expr::insert(
            Expr::var("C"),
            Expr::update_at(Expr::var("r"), "b", Idx::Const(1), Expr::int(9)),
        );
        assert_eq!(roundtrip_expr(&e2), e2);
    }

    #[test]
    fn scheme_roundtrip_with_kinded_binders() {
        let s = Scheme::poly(
            vec![
                (1, Kind::Univ),
                (
                    2,
                    Kind::has_mutable_field(Label::new("Salary"), Mono::int()),
                ),
            ],
            Mono::arrow(Mono::Var(2), Mono::set(Mono::Var(1))),
        );
        let mut w = ByteWriter::new();
        write_scheme(&mut w, &s);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_scheme(&mut r).unwrap(), s);
        assert!(r.finished());
    }

    #[test]
    fn mono_roundtrip_covers_every_constructor() {
        let t = Mono::arrows(
            [
                Mono::int(),
                Mono::bool(),
                Mono::str(),
                Mono::Unit,
                Mono::Var(9),
                Mono::set(Mono::lval(Mono::int())),
                Mono::obj(Mono::record([
                    (Label::new("x"), FieldTy::immutable(Mono::int())),
                    (Label::new("y"), FieldTy::mutable(Mono::bool())),
                ])),
            ],
            Mono::class(Mono::Unit),
        );
        let mut w = ByteWriter::new();
        write_mono(&mut w, &t);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_mono(&mut r).unwrap(), t);
        assert!(r.finished());
    }

    #[test]
    fn layout_roundtrip_preserves_offsets() {
        let l = Layout::new([(Label::new("Salary"), true), (Label::new("Name"), false)]);
        let mut w = ByteWriter::new();
        write_layout(&mut w, &l);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_layout(&mut r).unwrap(), l);
    }
}

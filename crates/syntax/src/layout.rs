//! Canonical record layouts for the offset-resolved execution tier.
//!
//! A [`Layout`] fixes the slot order of a record value: its labels in
//! canonical (sorted) order, each with its mutability. The offset of a
//! field is its rank in that order — the same index Ohori's compilation of
//! the record calculus assigns (`idx(l, τ)` in "A polymorphic record
//! calculus and its compilation", TOPLAS 1995). Because record types in
//! this calculus are width-exact (unification never widens a record), a
//! layout computed from a record *type* agrees with the layout of every
//! value of that type, which is what makes compile-time offsets sound.
//!
//! Layouts are produced by the lowering pass (`polyview-trans`) for
//! lowered record constructions and by the evaluator for records built
//! from un-lowered code; both sides share this type so the offset
//! contract cannot drift.

use crate::label::Label;
use std::fmt;

/// The slot order of a record: labels sorted canonically, with per-field
/// mutability. Immutable once built; shared via `Rc` between the lowered
/// IR and every record value using it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    labels: Vec<Label>,
    mutables: Vec<bool>,
}

impl Layout {
    /// Build a layout from `(label, mutable)` pairs in any order; the
    /// fields are sorted into canonical label order.
    ///
    /// Labels must be distinct (record fields are — enforced upstream by
    /// the parser and the record typing rule).
    pub fn new(fields: impl IntoIterator<Item = (Label, bool)>) -> Self {
        let mut fs: Vec<(Label, bool)> = fields.into_iter().collect();
        fs.sort_by(|a, b| a.0.cmp(&b.0));
        Layout {
            labels: fs.iter().map(|(l, _)| l.clone()).collect(),
            mutables: fs.into_iter().map(|(_, m)| m).collect(),
        }
    }

    /// The offset of `l`: its rank in canonical order. `None` when the
    /// layout has no such field (the dynamic-fallback "no such field"
    /// path).
    pub fn offset_of(&self, l: &Label) -> Option<usize> {
        self.labels.binary_search(l).ok()
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label at `offset` (canonical order).
    pub fn label_at(&self, offset: usize) -> &Label {
        &self.labels[offset]
    }

    /// Is the field at `offset` mutable?
    pub fn is_mutable(&self, offset: usize) -> bool {
        self.mutables[offset]
    }

    /// Labels in canonical (slot) order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// `(label, mutable)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, bool)> + '_ {
        self.labels.iter().zip(self.mutables.iter().copied())
    }
}

impl fmt::Display for Layout {
    /// `[Name@0, Salary@1:=]` — each label with its offset, mutable fields
    /// marked `:=`. This is the rendering the `:explain` layout report
    /// uses.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (l, m)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}@{i}{}", if m { ":=" } else { "" })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(fields: &[(&str, bool)]) -> Layout {
        Layout::new(fields.iter().map(|(l, m)| (Label::new(l), *m)))
    }

    #[test]
    fn offsets_follow_canonical_label_order() {
        // Construction order is irrelevant: offsets rank by label text.
        let a = layout(&[("Salary", true), ("Name", false)]);
        let b = layout(&[("Name", false), ("Salary", true)]);
        assert_eq!(a, b);
        assert_eq!(a.offset_of(&Label::new("Name")), Some(0));
        assert_eq!(a.offset_of(&Label::new("Salary")), Some(1));
        assert_eq!(a.offset_of(&Label::new("Bonus")), None);
    }

    #[test]
    fn numeric_tuple_labels_sort_as_text() {
        // Tuple labels are text: "10" < "2" — the type side orders record
        // fields the same way (BTreeMap<Label, _>), so both agree.
        let l = layout(&[("1", false), ("2", false), ("10", false)]);
        assert_eq!(l.offset_of(&Label::new("1")), Some(0));
        assert_eq!(l.offset_of(&Label::new("10")), Some(1));
        assert_eq!(l.offset_of(&Label::new("2")), Some(2));
    }

    #[test]
    fn mutability_travels_with_the_sorted_field() {
        let l = layout(&[("z", true), ("a", false)]);
        assert!(!l.is_mutable(0));
        assert!(l.is_mutable(1));
        assert_eq!(l.label_at(1), &Label::new("z"));
    }

    #[test]
    fn display_reports_offsets_and_mutability() {
        let l = layout(&[("Salary", true), ("Name", false)]);
        assert_eq!(l.to_string(), "[Name@0, Salary@1:=]");
        assert_eq!(layout(&[]).to_string(), "[]");
    }
}

//! Derived forms (paper Sections 2 and 3.1).
//!
//! The paper defines `member`, `prod`, `map`, `filter` in terms of `union`
//! and `hom`, and `objeq`, `select … as … from … where …`, `intersect`, and
//! relation-style queries in terms of the object algebra. Each function here
//! produces exactly the paper's encoding, so desugared programs remain
//! well-typed core/object terms.
//!
//! Binder names are generated with a `#` prefix, which the parser never
//! produces, so capture is impossible for parsed programs; programmatically
//! built terms should avoid `#`-prefixed names.

use crate::label::Label;
use crate::term::Expr;

fn fresh(base: &str, salt: usize) -> Label {
    Label::new(format!("#{base}{salt}"))
}

/// `not(e)` via `if e then false else true` (definable; kept as sugar).
pub fn not(e: Expr) -> Expr {
    Expr::if_(e, Expr::bool(false), Expr::bool(true))
}

/// `e1 andalso e2` — short-circuit conjunction.
pub fn and(a: Expr, b: Expr) -> Expr {
    Expr::if_(a, b, Expr::bool(false))
}

/// `e1 orelse e2` — short-circuit disjunction.
pub fn or(a: Expr, b: Expr) -> Expr {
    Expr::if_(a, Expr::bool(true), b)
}

/// `member(x, S)` — `hom(S, λy.eq(x, y), orelse, false)`.
///
/// `x` is evaluated once via a `let` so the encoding does not duplicate
/// effects.
pub fn member(x: Expr, s: Expr) -> Expr {
    let xv = fresh("m_x", 0);
    let y = fresh("m_y", 0);
    Expr::let_(
        xv.clone(),
        x,
        Expr::hom(
            s,
            Expr::lam(y.clone(), Expr::eq(Expr::Var(xv), Expr::Var(y))),
            or2(),
            Expr::bool(false),
        ),
    )
}

/// The curried boolean-or operator `λa.λb. a orelse b`.
fn or2() -> Expr {
    let a = fresh("or_a", 0);
    let b = fresh("or_b", 0);
    Expr::lam(
        a.clone(),
        Expr::lam(b.clone(), or(Expr::Var(a), Expr::Var(b))),
    )
}

/// The curried set-union operator `λa.λb. union(a, b)`.
pub fn union2() -> Expr {
    let a = fresh("u_a", 0);
    let b = fresh("u_b", 0);
    Expr::lam(
        a.clone(),
        Expr::lam(b.clone(), Expr::union(Expr::Var(a), Expr::Var(b))),
    )
}

/// `map(f, S)` — `hom(S, λx.{f x}, union, {})`.
pub fn map(f: Expr, s: Expr) -> Expr {
    let x = fresh("map_x", 0);
    let fv = fresh("map_f", 0);
    Expr::let_(
        fv.clone(),
        f,
        Expr::hom(
            s,
            Expr::lam(
                x.clone(),
                Expr::set([Expr::app(Expr::Var(fv), Expr::Var(x))]),
            ),
            union2(),
            Expr::empty_set(),
        ),
    )
}

/// `filter(p, S)` — `hom(S, λx. if p x then {x} else {}, union, {})`.
pub fn filter(p: Expr, s: Expr) -> Expr {
    let x = fresh("flt_x", 0);
    let pv = fresh("flt_p", 0);
    Expr::let_(
        pv.clone(),
        p,
        Expr::hom(
            s,
            Expr::lam(
                x.clone(),
                Expr::if_(
                    Expr::app(Expr::Var(pv), Expr::Var(x.clone())),
                    Expr::set([Expr::Var(x)]),
                    Expr::empty_set(),
                ),
            ),
            union2(),
            Expr::empty_set(),
        ),
    )
}

/// Binary `prod(S1, S2)` — the set of pairs, via nested `hom`s.
pub fn prod2(s1: Expr, s2: Expr) -> Expr {
    let x = fresh("pr_x", 0);
    let y = fresh("pr_y", 0);
    let s2v = fresh("pr_s", 0);
    Expr::let_(
        s2v.clone(),
        s2,
        Expr::hom(
            s1,
            Expr::lam(
                x.clone(),
                map(
                    Expr::lam(y.clone(), Expr::pair(Expr::Var(x), Expr::Var(y))),
                    Expr::Var(s2v),
                ),
            ),
            union2(),
            Expr::empty_set(),
        ),
    )
}

/// n-ary `prod(S1, …, Sn)` — the set of flat n-tuples
/// `[1 = x1, …, n = xn]`. Defined by nesting `hom`s; `n = 1` maps elements
/// into 1-tuples so projections stay uniform.
pub fn prod(sets: Vec<Expr>) -> Expr {
    assert!(!sets.is_empty(), "prod of zero sets");
    let n = sets.len();
    // Bind each set once, then build nested homs collecting xs.
    let set_vars: Vec<Label> = (0..n).map(|i| fresh("prn_s", i)).collect();
    let elem_vars: Vec<Label> = (0..n).map(|i| fresh("prn_x", i)).collect();
    let tuple = Expr::Record(
        elem_vars
            .iter()
            .enumerate()
            .map(|(i, v)| crate::term::Field::immutable(Label::tuple(i + 1), Expr::Var(v.clone())))
            .collect(),
    );
    let mut body = Expr::set([tuple]);
    for i in (0..n).rev() {
        body = Expr::hom(
            Expr::Var(set_vars[i].clone()),
            Expr::lam(elem_vars[i].clone(), body),
            union2(),
            Expr::empty_set(),
        );
    }
    for (i, s) in sets.into_iter().enumerate().rev() {
        body = Expr::let_(set_vars[i].clone(), s, body);
    }
    body
}

/// `objeq(e1, e2)` — `not(eq(fuse(e1, e2), {}))` (paper Section 3.1).
pub fn objeq(a: Expr, b: Expr) -> Expr {
    not(Expr::eq(Expr::fuse(a, b), Expr::empty_set()))
}

/// `select as e from S where p` — `map(λx.(x as e), filter(p, S))`.
pub fn select_as_from_where(view: Expr, s: Expr, pred: Expr) -> Expr {
    let x = fresh("sel_x", 0);
    let v = fresh("sel_v", 0);
    Expr::let_(
        v.clone(),
        view,
        map(
            Expr::lam(x.clone(), Expr::as_view(Expr::Var(x), Expr::Var(v))),
            filter(pred, s),
        ),
    )
}

/// Binary `intersect(e1, e2)` —
/// `hom(prod(e1, e2), λx.fuse(x·1, x·2), union, {})`.
pub fn intersect2(s1: Expr, s2: Expr) -> Expr {
    let x = fresh("int_x", 0);
    Expr::hom(
        prod2(s1, s2),
        Expr::lam(
            x.clone(),
            Expr::fuse(
                Expr::proj(Expr::Var(x.clone()), 1),
                Expr::proj(Expr::Var(x), 2),
            ),
        ),
        union2(),
        Expr::empty_set(),
    )
}

/// Relation-style query (paper Section 3.1):
///
/// ```text
/// relation [l1 = e1, …, ln = en] from x1 ∈ S1, …, xm ∈ Sm where P
/// ```
///
/// implemented as the paper's
/// `map(λx.x·1, filter(λy.y·2, map(λX.(relobj(…), P), prod(S1, …, Sm))))`,
/// where each `ei` and `P` may mention the bound names `x1 … xm`.
pub fn relation_from_where(
    rel_fields: Vec<(Label, Expr)>,
    binders: Vec<(Label, Expr)>,
    pred: Expr,
) -> Expr {
    assert!(
        !binders.is_empty(),
        "relation query needs at least one binder"
    );
    let (names, sets): (Vec<Label>, Vec<Expr>) = binders.into_iter().unzip();
    let xx = fresh("rel_X", 0);
    // λX. let x1 = X·1 in … (relobj(l1=e1,…), P) … end
    let mut inner = Expr::pair(Expr::relobj(rel_fields), pred);
    for (i, nm) in names.iter().enumerate().rev() {
        inner = Expr::let_(nm.clone(), Expr::proj(Expr::Var(xx.clone()), i + 1), inner);
    }
    let pairs = map(Expr::lam(xx, inner), prod(sets));
    let y = fresh("rel_y", 0);
    let filtered = filter(Expr::lam(y.clone(), Expr::proj(Expr::Var(y), 2)), pairs);
    let z = fresh("rel_z", 0);
    map(Expr::lam(z.clone(), Expr::proj(Expr::Var(z), 1)), filtered)
}

/// `fun f1 x1 = e1 and … and fn xn = en in body` — the paper's mutually
/// recursive function definition, encoded with `fix`, `let`, lambda and a
/// record (paper Section 2): we take the fixpoint of a record of the
/// functions and project each component.
pub fn fun_and(defs: Vec<(Label, Label, Expr)>, body: Expr) -> Expr {
    assert!(!defs.is_empty());
    if defs.len() == 1 {
        let (f, x, e) = defs.into_iter().next().expect("len checked");
        return Expr::let_(f.clone(), Expr::fix(f, Expr::lam(x, e)), body);
    }
    let bundle = fresh("fun_rec", 0);
    // fix B. λ(). [f1 = λx1. e1', …] — `fix` ranges over lambdas only, so
    // the record of functions is rebuilt on demand behind a unit thunk.
    // Each ei' brings the siblings into scope by forcing (B ()) and
    // projecting.
    let mk_scoped = |e: Expr, defs: &[(Label, Label, Expr)], bundle: &Label| {
        let forced = fresh("fun_forced", 0);
        let mut scoped = e;
        for (f, _, _) in defs.iter().rev() {
            scoped = Expr::let_(
                f.clone(),
                Expr::dot(Expr::Var(forced.clone()), f.clone()),
                scoped,
            );
        }
        Expr::let_(
            forced,
            Expr::app(Expr::Var(bundle.clone()), Expr::unit()),
            scoped,
        )
    };
    let rec = Expr::fix(
        bundle.clone(),
        Expr::thunk(Expr::Record(
            defs.iter()
                .map(|(f, x, e)| {
                    crate::term::Field::immutable(
                        f.clone(),
                        Expr::lam(x.clone(), mk_scoped(e.clone(), &defs, &bundle)),
                    )
                })
                .collect(),
        )),
    );
    let bundle_out = fresh("fun_out", 0);
    let mut out = body;
    for (f, _, _) in defs.iter().rev() {
        out = Expr::let_(
            f.clone(),
            Expr::dot(Expr::Var(bundle_out.clone()), f.clone()),
            out,
        );
    }
    Expr::let_(bundle_out, Expr::app(rec, Expr::unit()), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_is_if() {
        assert_eq!(
            not(Expr::bool(true)),
            Expr::if_(Expr::bool(true), Expr::bool(false), Expr::bool(true))
        );
    }

    #[test]
    fn member_uses_hom_with_or() {
        let e = member(Expr::int(1), Expr::var("S"));
        match e {
            Expr::Let(_, _, body) => assert!(matches!(*body, Expr::Hom(..))),
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn prod_unary_produces_one_tuples() {
        let e = prod(vec![Expr::var("S")]);
        // Outermost: let s0 = S in hom(s0, λx.{[1=x]}, ∪, {})
        match e {
            Expr::Let(_, s, body) => {
                assert_eq!(*s, Expr::var("S"));
                assert!(matches!(*body, Expr::Hom(..)));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "prod of zero sets")]
    fn prod_of_zero_sets_panics() {
        prod(vec![]);
    }

    #[test]
    fn objeq_matches_paper_encoding() {
        let e = objeq(Expr::var("a"), Expr::var("b"));
        // not(eq(fuse(a,b), {}))
        match e {
            Expr::If(cond, _, _) => match *cond {
                Expr::Eq(l, r) => {
                    assert!(matches!(*l, Expr::Fuse(..)));
                    assert_eq!(*r, Expr::empty_set());
                }
                other => panic!("expected eq, got {other:?}"),
            },
            other => panic!("expected if (not), got {other:?}"),
        }
    }

    #[test]
    fn select_builds_map_over_filter() {
        let e = select_as_from_where(
            Expr::lam("x", Expr::var("x")),
            Expr::var("S"),
            Expr::lam("x", Expr::bool(true)),
        );
        // let v = view in map(λx. x as v, filter(p, S))
        assert!(matches!(e, Expr::Let(..)));
    }

    #[test]
    fn fun_and_single_is_fix() {
        let e = fun_and(
            vec![(Label::new("f"), Label::new("x"), Expr::var("x"))],
            Expr::app(Expr::var("f"), Expr::int(1)),
        );
        match e {
            Expr::Let(f, rhs, _) => {
                assert_eq!(f, Label::new("f"));
                assert!(matches!(*rhs, Expr::Fix(..)));
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn fun_and_mutual_builds_record_fixpoint() {
        let defs = vec![
            (
                Label::new("even"),
                Label::new("n"),
                Expr::if_(
                    Expr::eq(Expr::var("n"), Expr::int(0)),
                    Expr::bool(true),
                    Expr::app(Expr::var("odd"), Expr::var("n")),
                ),
            ),
            (
                Label::new("odd"),
                Label::new("n"),
                Expr::if_(
                    Expr::eq(Expr::var("n"), Expr::int(0)),
                    Expr::bool(false),
                    Expr::app(Expr::var("even"), Expr::var("n")),
                ),
            ),
        ];
        let e = fun_and(defs, Expr::app(Expr::var("even"), Expr::int(2)));
        // Shape: let out = fix bundle. [ … ] in let even = out·even in …
        assert!(matches!(e, Expr::Let(..)));
        // Every reference is closed.
        assert!(crate::visit::free_vars(&e).is_empty());
    }

    #[test]
    fn sugar_terms_are_closed_when_inputs_are() {
        for e in [
            member(Expr::int(1), Expr::empty_set()),
            map(Expr::lam("x", Expr::var("x")), Expr::empty_set()),
            filter(Expr::lam("x", Expr::bool(true)), Expr::empty_set()),
            prod2(Expr::empty_set(), Expr::empty_set()),
            prod(vec![
                Expr::empty_set(),
                Expr::empty_set(),
                Expr::empty_set(),
            ]),
            intersect2(Expr::empty_set(), Expr::empty_set()),
            objeq(
                Expr::id_view(Expr::record([])),
                Expr::id_view(Expr::record([])),
            ),
        ] {
            assert!(
                crate::visit::free_vars(&e).is_empty(),
                "unexpected free vars in {e:?}"
            );
        }
    }
}

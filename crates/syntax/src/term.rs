//! Terms of the calculus. The grammar is the union of the paper's three
//! layers (Sections 2, 3.1, 4.1):
//!
//! ```text
//! e ::= c | () | x | eq(e, e) | λx.e | (e e) | [f,…,f] | e·l
//!     | extract(e, l) | update(e, l, e) | {e,…,e} | union(e, e)
//!     | hom(e, e, e, e) | fix x.e | let x = e in e end
//!     | if e then e else e
//!     | IDView(e) | (e as e) | query(e, e) | fuse(e, e) | relobj(l=e,…)
//!     | class S include … as e where p … end
//!     | c-query(e, e) | insert(e, e) | delete(e, e)
//!     | let c1 = class … and … and cn = class … in e end
//! ```
//!
//! `if` is primitive here (the paper uses it freely in its translation
//! rules, e.g. Fig. 3's `fuse`). All other derived forms live in
//! [`crate::sugar`].

use crate::label::{Label, Name};
use crate::layout::Layout;
use std::rc::Rc;

/// Constants `cτ` plus the unit value `()` and booleans.
#[derive(Clone, Debug, PartialEq)]
pub enum Lit {
    Unit,
    Int(i64),
    Bool(bool),
    Str(String),
}

/// A field in a record expression: `l = e` (immutable) or `l := e`
/// (mutable).
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    pub label: Label,
    pub mutable: bool,
    pub expr: Expr,
}

impl Field {
    pub fn immutable(label: impl Into<Label>, expr: Expr) -> Self {
        Field {
            label: label.into(),
            mutable: false,
            expr,
        }
    }
    pub fn mutable(label: impl Into<Label>, expr: Expr) -> Self {
        Field {
            label: label.into(),
            mutable: true,
            expr,
        }
    }
}

/// One `include C1, …, Cm as e where p` clause of a class definition.
///
/// The class being defined includes every object satisfying `pred` from the
/// intersection (in the sense of `intersect`, i.e. n-ary `fuse`) of the
/// `sources`, manipulated under the viewing function `view`.
#[derive(Clone, Debug, PartialEq)]
pub struct IncludeClause {
    pub sources: Vec<Expr>,
    pub view: Expr,
    pub pred: Expr,
}

/// A class definition `class S include … end`: an own extent expression
/// plus zero or more include clauses.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDef {
    pub own: Box<Expr>,
    pub includes: Vec<IncludeClause>,
}

/// Terms.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    // ----- core language (Section 2) -----
    Lit(Lit),
    Var(Name),
    /// `eq(e1, e2)` — L-value equality on records and functions, value
    /// equality otherwise.
    Eq(Box<Expr>, Box<Expr>),
    Lam(Name, Rc<Expr>),
    App(Box<Expr>, Box<Expr>),
    /// `[l1 @ e1, …, ln @ en]` — evaluation creates a new identity.
    Record(Vec<Field>),
    /// `e·l` — R-value field extraction.
    Dot(Box<Expr>, Label),
    /// `extract(e, l)` — L-value extraction from a mutable field.
    Extract(Box<Expr>, Label),
    /// `update(e, l, e')` — assign to a mutable field; returns `()`.
    Update(Box<Expr>, Label, Box<Expr>),
    /// `{e1, …, en}`.
    SetLit(Vec<Expr>),
    Union(Box<Expr>, Box<Expr>),
    /// `hom(S, f, op, z) = op(f(e1), op(f(e2), … op(f(en), z)…))`.
    Hom(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
    Fix(Name, Rc<Expr>),
    Let(Name, Box<Expr>, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),

    // ----- view extension (Section 3.1) -----
    /// `IDView(e)` — turn a raw object into an object with the identity
    /// view.
    IdView(Box<Expr>),
    /// `(e1 as e2)` — view composition.
    AsView(Box<Expr>, Box<Expr>),
    /// `query(e1, e2)` — materialize `e2`'s view, apply `e1`.
    Query(Box<Expr>, Box<Expr>),
    /// `fuse(e1, e2)` — generalized equality: singleton of the product-view
    /// object when the raw objects coincide, `{}` otherwise.
    Fuse(Box<Expr>, Box<Expr>),
    /// `relobj(l1 = e1, …, ln = en)` — create a relation object (a *new*
    /// identity) over the given objects.
    RelObj(Vec<(Label, Expr)>),

    // ----- class extension (Section 4.1) -----
    ClassExpr(ClassDef),
    /// `c-query(e, C)` — evaluate a set-level query against a class's full
    /// extent.
    CQuery(Box<Expr>, Box<Expr>),
    /// `insert(C, e)` — add `e` to `C`'s own extent.
    Insert(Box<Expr>, Box<Expr>),
    /// `delete(C, e)` — remove `e` from `C`'s own extent.
    Delete(Box<Expr>, Box<Expr>),
    /// `let c1 = class … and … and cn = class … in e end` (Section 4.4).
    /// The bound class identifiers may appear in include *source* positions
    /// of the bodies (cyclically), but not inside `as`/`where` functions or
    /// own-extent expressions.
    LetClasses(Vec<(Name, ClassDef)>, Box<Expr>),

    // ----- offset-resolved forms (the compile tier) -----
    //
    // These variants are produced only by the lowering pass in
    // `polyview-trans` (Ohori's index-passing compilation, TOPLAS 1995);
    // the parser never emits them and inference rejects them in source
    // position. Each keeps the source label so the dynamic fallback and
    // error messages stay exact.
    /// `e·l` with the field's slot offset resolved at compile time.
    DotAt(Box<Expr>, Label, Idx),
    /// `extract(e, l)` with a resolved slot offset.
    ExtractAt(Box<Expr>, Label, Idx),
    /// `update(e, l, e')` with a resolved slot offset.
    UpdateAt(Box<Expr>, Label, Idx, Box<Expr>),
    /// A record construction with a precomputed [`Layout`]: each entry is
    /// `(slot offset, field expression)` in *source evaluation order*, so
    /// effects run exactly as the un-lowered `Record` would.
    RecordAt(Rc<Layout>, Vec<(usize, Expr)>),
}

/// How a lowered field operation finds its slot.
#[derive(Clone, Debug, PartialEq)]
pub enum Idx {
    /// The offset is a compile-time constant — the operand's record type
    /// was concrete at lowering time.
    Const(usize),
    /// The offset arrives at run time through an index *parameter*: the
    /// named variable (an ordinary λ-bound variable with a reserved
    /// `#i`-prefixed name, so source programs cannot capture it) holds the
    /// integer offset supplied at the enclosing function's instantiation
    /// site. A negative value is the "unresolved" sentinel: the operation
    /// falls back to dynamic lookup by label, and the evaluator counts it.
    Var(Name),
}

impl Expr {
    pub fn unit() -> Expr {
        Expr::Lit(Lit::Unit)
    }
    pub fn int(n: i64) -> Expr {
        Expr::Lit(Lit::Int(n))
    }
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Lit::Bool(b))
    }
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Lit(Lit::Str(s.into()))
    }
    pub fn var(x: impl Into<Name>) -> Expr {
        Expr::Var(x.into())
    }

    pub fn lam(x: impl Into<Name>, body: Expr) -> Expr {
        Expr::Lam(x.into(), Rc::new(body))
    }

    /// `λ().e` — a function whose domain is `unit` (the paper's notation for
    /// delayed computations). We bind a wildcard-ish name.
    pub fn thunk(body: Expr) -> Expr {
        Expr::lam("_unit", body)
    }

    pub fn app(f: Expr, a: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(a))
    }

    /// Curried application `f a1 … an`.
    pub fn apps(f: Expr, args: impl IntoIterator<Item = Expr>) -> Expr {
        args.into_iter().fold(f, Expr::app)
    }

    pub fn dot(e: Expr, l: impl Into<Label>) -> Expr {
        Expr::Dot(Box::new(e), l.into())
    }

    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    pub fn let_(x: impl Into<Name>, rhs: Expr, body: Expr) -> Expr {
        Expr::Let(x.into(), Box::new(rhs), Box::new(body))
    }

    pub fn fix(x: impl Into<Name>, body: Expr) -> Expr {
        Expr::Fix(x.into(), Rc::new(body))
    }

    pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }

    pub fn record(fields: impl IntoIterator<Item = Field>) -> Expr {
        Expr::Record(fields.into_iter().collect())
    }

    pub fn set(elems: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::SetLit(elems.into_iter().collect())
    }

    pub fn empty_set() -> Expr {
        Expr::SetLit(Vec::new())
    }

    pub fn union(a: Expr, b: Expr) -> Expr {
        Expr::Union(Box::new(a), Box::new(b))
    }

    pub fn hom(s: Expr, f: Expr, op: Expr, z: Expr) -> Expr {
        Expr::Hom(Box::new(s), Box::new(f), Box::new(op), Box::new(z))
    }

    pub fn extract(e: Expr, l: impl Into<Label>) -> Expr {
        Expr::Extract(Box::new(e), l.into())
    }

    pub fn update(e: Expr, l: impl Into<Label>, v: Expr) -> Expr {
        Expr::Update(Box::new(e), l.into(), Box::new(v))
    }

    pub fn id_view(e: Expr) -> Expr {
        Expr::IdView(Box::new(e))
    }

    pub fn as_view(e: Expr, f: Expr) -> Expr {
        Expr::AsView(Box::new(e), Box::new(f))
    }

    pub fn query(f: Expr, o: Expr) -> Expr {
        Expr::Query(Box::new(f), Box::new(o))
    }

    pub fn fuse(a: Expr, b: Expr) -> Expr {
        Expr::Fuse(Box::new(a), Box::new(b))
    }

    pub fn relobj(fields: impl IntoIterator<Item = (Label, Expr)>) -> Expr {
        Expr::RelObj(fields.into_iter().collect())
    }

    pub fn cquery(f: Expr, c: Expr) -> Expr {
        Expr::CQuery(Box::new(f), Box::new(c))
    }

    pub fn insert(c: Expr, e: Expr) -> Expr {
        Expr::Insert(Box::new(c), Box::new(e))
    }

    pub fn delete(c: Expr, e: Expr) -> Expr {
        Expr::Delete(Box::new(c), Box::new(e))
    }

    /// `(e1, e2)` — pairs abbreviate two-element records with numeric labels
    /// (paper Section 2).
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::tuple([a, b])
    }

    /// `(e1, …, en)` as `[1 = e1, …, n = en]`.
    pub fn tuple(es: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Record(
            es.into_iter()
                .enumerate()
                .map(|(i, e)| Field::immutable(Label::tuple(i + 1), e))
                .collect(),
        )
    }

    /// `e·1` / `e·2` projections.
    pub fn proj(e: Expr, i: usize) -> Expr {
        Expr::dot(e, Label::tuple(i))
    }

    /// `e·l` resolved to a slot offset (lowering-pass output).
    pub fn dot_at(e: Expr, l: impl Into<Label>, idx: Idx) -> Expr {
        Expr::DotAt(Box::new(e), l.into(), idx)
    }

    /// `extract(e, l)` resolved to a slot offset (lowering-pass output).
    pub fn extract_at(e: Expr, l: impl Into<Label>, idx: Idx) -> Expr {
        Expr::ExtractAt(Box::new(e), l.into(), idx)
    }

    /// `update(e, l, v)` resolved to a slot offset (lowering-pass output).
    pub fn update_at(e: Expr, l: impl Into<Label>, idx: Idx, v: Expr) -> Expr {
        Expr::UpdateAt(Box::new(e), l.into(), idx, Box::new(v))
    }

    /// Structural size (number of AST nodes). Used by benches and property
    /// test bounds.
    pub fn size(&self) -> usize {
        let mut n = 0;
        crate::visit::walk(self, &mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_desugars_to_numeric_record() {
        let p = Expr::pair(Expr::int(1), Expr::int(2));
        match &p {
            Expr::Record(fs) => {
                assert_eq!(fs.len(), 2);
                assert_eq!(fs[0].label, Label::tuple(1));
                assert!(!fs[0].mutable);
                assert_eq!(fs[1].label, Label::tuple(2));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn apps_folds_left() {
        let e = Expr::apps(Expr::var("f"), [Expr::int(1), Expr::int(2)]);
        assert_eq!(
            e,
            Expr::app(Expr::app(Expr::var("f"), Expr::int(1)), Expr::int(2))
        );
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Expr::int(1).size(), 1);
        assert_eq!(Expr::app(Expr::var("f"), Expr::int(1)).size(), 3);
        let joe = Expr::id_view(Expr::record([
            Field::immutable("Name", Expr::str("Joe")),
            Field::mutable("Salary", Expr::int(2000)),
        ]));
        // IdView + Record + 2 field exprs
        assert_eq!(joe.size(), 4);
    }

    #[test]
    fn proj_uses_numeric_labels() {
        assert_eq!(
            Expr::proj(Expr::var("x"), 1),
            Expr::dot(Expr::var("x"), Label::new("1"))
        );
    }
}

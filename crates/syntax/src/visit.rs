//! A lightweight pre-order walker over [`Expr`], plus free-variable
//! computation and the scope check for recursive class definitions.

use crate::label::Name;
use crate::term::{ClassDef, Expr, IncludeClause};
use std::collections::BTreeSet;

/// Visit `e` and every sub-expression in pre-order.
pub fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    for child in children(e) {
        walk(child, f);
    }
}

/// Immediate sub-expressions of `e`, in syntactic order.
pub fn children(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) => Vec::new(),
        Expr::Eq(a, b)
        | Expr::App(a, b)
        | Expr::Union(a, b)
        | Expr::AsView(a, b)
        | Expr::Query(a, b)
        | Expr::Fuse(a, b)
        | Expr::CQuery(a, b)
        | Expr::Insert(a, b)
        | Expr::Delete(a, b) => vec![a, b],
        Expr::Lam(_, b) | Expr::Fix(_, b) => vec![b],
        Expr::IdView(b) => vec![b],
        Expr::Dot(b, _) | Expr::Extract(b, _) => vec![b],
        Expr::Update(a, _, b) => vec![a, b],
        Expr::DotAt(b, _, _) | Expr::ExtractAt(b, _, _) => vec![b],
        Expr::UpdateAt(a, _, _, b) => vec![a, b],
        Expr::RecordAt(_, fs) => fs.iter().map(|(_, e)| e).collect(),
        Expr::Let(_, a, b) => vec![a, b],
        Expr::If(a, b, c) => vec![a, b, c],
        Expr::Record(fs) => fs.iter().map(|f| &f.expr).collect(),
        Expr::SetLit(es) => es.iter().collect(),
        Expr::Hom(a, b, c, d) => vec![a, b, c, d],
        Expr::RelObj(fs) => fs.iter().map(|(_, e)| e).collect(),
        Expr::ClassExpr(cd) => class_children(cd),
        Expr::LetClasses(binds, body) => {
            let mut v: Vec<&Expr> = Vec::new();
            for (_, cd) in binds {
                v.extend(class_children(cd));
            }
            v.push(body);
            v
        }
    }
}

/// Number of expression nodes in `e` (the term's size, used by the
/// observability layer to report parse output and translation blow-up for
/// the Fig. 3/5 semantics).
pub fn term_size(e: &Expr) -> u64 {
    let mut n = 0u64;
    walk(e, &mut |_| n += 1);
    n
}

/// Total node count of a class definition's constituent expressions.
pub fn class_def_size(cd: &ClassDef) -> u64 {
    class_children(cd).into_iter().map(term_size).sum()
}

/// The constituent expressions of a class definition: its own extent and,
/// per include clause, the sources, viewing function, and predicate.
pub fn class_children(cd: &ClassDef) -> Vec<&Expr> {
    let mut v: Vec<&Expr> = vec![&cd.own];
    for inc in &cd.includes {
        v.extend(inc.sources.iter());
        v.push(&inc.view);
        v.push(&inc.pred);
    }
    v
}

/// Free term variables of `e`.
pub fn free_vars(e: &Expr) -> BTreeSet<Name> {
    let mut out = BTreeSet::new();
    free_vars_into(e, &mut BTreeSet::new(), &mut out);
    out
}

fn free_vars_into(e: &Expr, bound: &mut BTreeSet<Name>, out: &mut BTreeSet<Name>) {
    match e {
        Expr::Var(x) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
        }
        Expr::Lam(x, b) | Expr::Fix(x, b) => {
            let fresh = bound.insert(x.clone());
            free_vars_into(b, bound, out);
            if fresh {
                bound.remove(x);
            }
        }
        Expr::Let(x, rhs, body) => {
            free_vars_into(rhs, bound, out);
            let fresh = bound.insert(x.clone());
            free_vars_into(body, bound, out);
            if fresh {
                bound.remove(x);
            }
        }
        Expr::LetClasses(binds, body) => {
            // Class bodies are scoped with the class names in scope
            // (mutual recursion); the typing rule (Fig. 6) restricts
            // *where* they may appear, checked separately.
            let mut freshly_bound = Vec::new();
            for (c, _) in binds {
                if bound.insert(c.clone()) {
                    freshly_bound.push(c.clone());
                }
            }
            for (_, cd) in binds {
                for child in class_children(cd) {
                    free_vars_into(child, bound, out);
                }
            }
            free_vars_into(body, bound, out);
            for c in freshly_bound {
                bound.remove(&c);
            }
        }
        // Lowered field operations can reference an index *parameter* (an
        // ordinary λ-bound variable) through their Idx, which is not an
        // expression child — account for it explicitly so free-variable
        // computation stays exact on lowered terms.
        Expr::DotAt(b, _, idx) | Expr::ExtractAt(b, _, idx) => {
            free_vars_into(b, bound, out);
            idx_free_var(idx, bound, out);
        }
        Expr::UpdateAt(a, _, idx, v) => {
            free_vars_into(a, bound, out);
            idx_free_var(idx, bound, out);
            free_vars_into(v, bound, out);
        }
        other => {
            for child in children(other) {
                free_vars_into(child, bound, out);
            }
        }
    }
}

fn idx_free_var(idx: &crate::term::Idx, bound: &BTreeSet<Name>, out: &mut BTreeSet<Name>) {
    if let crate::term::Idx::Var(x) = idx {
        if !bound.contains(x) {
            out.insert(x.clone());
        }
    }
}

/// Does `e` mention any of `names` as a free variable?
pub fn mentions_any(e: &Expr, names: &BTreeSet<Name>) -> bool {
    free_vars(e).iter().any(|v| names.contains(v))
}

/// A violation of the recursive-class scope restriction of Section 4.4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecClassViolation {
    /// A recursive class identifier appears in an own-extent expression.
    InOwnExtent(Name),
    /// A recursive class identifier appears inside an `as` viewing function.
    InView(Name),
    /// A recursive class identifier appears inside a `where` predicate.
    InPred(Name),
    /// A recursive class identifier appears *inside* a compound source
    /// expression (a source must be exactly a class identifier, or an
    /// expression not containing any of them).
    InCompoundSource(Name),
}

/// Check the paper's restriction on `let c1 = class … and … in e end`:
/// each source `kCʲᵢ` is either one of the bound identifiers or an
/// expression not containing any of them, and the `as`/`where` functions and
/// own extents contain none of them.
pub fn check_rec_class_scope(binds: &[(Name, ClassDef)]) -> Result<(), RecClassViolation> {
    let names: BTreeSet<Name> = binds.iter().map(|(n, _)| n.clone()).collect();
    let first_mentioned =
        |e: &Expr| -> Option<Name> { free_vars(e).into_iter().find(|v| names.contains(v)) };
    for (_, cd) in binds {
        if let Some(n) = first_mentioned(&cd.own) {
            return Err(RecClassViolation::InOwnExtent(n));
        }
        for IncludeClause {
            sources,
            view,
            pred,
        } in &cd.includes
        {
            for src in sources {
                if matches!(src, Expr::Var(x) if names.contains(x)) {
                    continue; // a bare recursive identifier is fine
                }
                if let Some(n) = first_mentioned(src) {
                    return Err(RecClassViolation::InCompoundSource(n));
                }
            }
            if let Some(n) = first_mentioned(view) {
                return Err(RecClassViolation::InView(n));
            }
            if let Some(n) = first_mentioned(pred) {
                return Err(RecClassViolation::InPred(n));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::term::Field;

    fn cd(own: Expr, includes: Vec<IncludeClause>) -> ClassDef {
        ClassDef {
            own: Box::new(own),
            includes,
        }
    }

    #[test]
    fn free_vars_basic() {
        let e = Expr::lam("x", Expr::app(Expr::var("f"), Expr::var("x")));
        let fv = free_vars(&e);
        assert!(fv.contains("f"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn free_vars_let_shadowing() {
        // let x = y in x end : only y free.
        let e = Expr::let_("x", Expr::var("y"), Expr::var("x"));
        let fv = free_vars(&e);
        assert_eq!(fv.len(), 1);
        assert!(fv.contains("y"));
    }

    #[test]
    fn free_vars_let_rhs_not_shadowed() {
        // let x = x in x end : the rhs x is free.
        let e = Expr::let_("x", Expr::var("x"), Expr::var("x"));
        assert!(free_vars(&e).contains("x"));
    }

    #[test]
    fn shadowed_binder_restores_on_exit() {
        // λx. (λx. x) x — inner binder must not unbind outer.
        let e = Expr::lam(
            "x",
            Expr::app(Expr::lam("x", Expr::var("x")), Expr::var("x")),
        );
        assert!(free_vars(&e).is_empty());
    }

    #[test]
    fn letclasses_binds_names_in_bodies_and_body() {
        let binds = vec![(
            Label::new("C"),
            cd(
                Expr::empty_set(),
                vec![IncludeClause {
                    sources: vec![Expr::var("C")],
                    view: Expr::lam("x", Expr::var("x")),
                    pred: Expr::lam("x", Expr::bool(true)),
                }],
            ),
        )];
        let e = Expr::LetClasses(binds, Box::new(Expr::var("C")));
        assert!(free_vars(&e).is_empty());
    }

    #[test]
    fn rec_scope_allows_bare_identifier_sources() {
        let binds = vec![
            (
                Label::new("C1"),
                cd(
                    Expr::empty_set(),
                    vec![IncludeClause {
                        sources: vec![Expr::var("C2")],
                        view: Expr::lam("x", Expr::var("x")),
                        pred: Expr::lam("x", Expr::bool(true)),
                    }],
                ),
            ),
            (Label::new("C2"), cd(Expr::empty_set(), vec![])),
        ];
        assert_eq!(check_rec_class_scope(&binds), Ok(()));
    }

    #[test]
    fn rec_scope_rejects_identifier_in_pred() {
        // The paper's ill-formed C1 = C \ C2 and C2 = C \ C1 example:
        // the predicate queries the sibling class.
        let mk = |other: &str| {
            cd(
                Expr::empty_set(),
                vec![IncludeClause {
                    sources: vec![Expr::var("C")],
                    view: Expr::lam("x", Expr::var("x")),
                    pred: Expr::lam(
                        "c",
                        Expr::cquery(Expr::lam("s", Expr::bool(true)), Expr::var(other)),
                    ),
                }],
            )
        };
        let binds = vec![(Label::new("C1"), mk("C2")), (Label::new("C2"), mk("C1"))];
        assert_eq!(
            check_rec_class_scope(&binds),
            Err(RecClassViolation::InPred(Label::new("C2")))
        );
    }

    #[test]
    fn rec_scope_rejects_identifier_in_own_extent() {
        let binds = vec![(
            Label::new("C1"),
            cd(
                Expr::cquery(Expr::lam("s", Expr::var("s")), Expr::var("C1")),
                vec![],
            ),
        )];
        assert_eq!(
            check_rec_class_scope(&binds),
            Err(RecClassViolation::InOwnExtent(Label::new("C1")))
        );
    }

    #[test]
    fn rec_scope_rejects_compound_source_mentioning_identifier() {
        let binds = vec![(
            Label::new("C1"),
            cd(
                Expr::empty_set(),
                vec![IncludeClause {
                    // A source that *contains* C1 but is not the bare var.
                    sources: vec![Expr::let_("x", Expr::var("C1"), Expr::var("x"))],
                    view: Expr::lam("x", Expr::var("x")),
                    pred: Expr::lam("x", Expr::bool(true)),
                }],
            ),
        )];
        assert_eq!(
            check_rec_class_scope(&binds),
            Err(RecClassViolation::InCompoundSource(Label::new("C1")))
        );
    }

    #[test]
    fn rec_scope_rejects_identifier_in_view() {
        let binds = vec![(
            Label::new("C1"),
            cd(
                Expr::empty_set(),
                vec![IncludeClause {
                    sources: vec![Expr::var("C1")],
                    view: Expr::lam(
                        "x",
                        Expr::cquery(Expr::lam("s", Expr::var("s")), Expr::var("C1")),
                    ),
                    pred: Expr::lam("x", Expr::bool(true)),
                }],
            ),
        )];
        assert_eq!(
            check_rec_class_scope(&binds),
            Err(RecClassViolation::InView(Label::new("C1")))
        );
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::record([
            Field::immutable("a", Expr::int(1)),
            Field::mutable("b", Expr::pair(Expr::int(2), Expr::int(3))),
        ]);
        let mut count = 0;
        walk(&e, &mut |_| count += 1);
        // record + 1 + pair-record + 2 + 3
        assert_eq!(count, 5);
        assert_eq!(term_size(&e), 5);
    }

    #[test]
    fn term_size_counts_class_definitions() {
        // class {∅} include C as (λx.x) where (λx.true) end
        let e = Expr::ClassExpr(cd(
            Expr::empty_set(),
            vec![IncludeClause {
                sources: vec![Expr::var("C")],
                view: Expr::lam("x", Expr::var("x")),
                pred: Expr::lam("x", Expr::bool(true)),
            }],
        ));
        // ClassExpr + own set + source var + (lam + var) + (lam + true)
        assert_eq!(term_size(&e), 7);
        if let Expr::ClassExpr(cd) = &e {
            assert_eq!(class_def_size(cd), 6);
        }
    }
}

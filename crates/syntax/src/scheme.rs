//! Polytypes (paper Section 2):
//!
//! ```text
//! σ ::= τ | ∀t::K.σ
//! ```
//!
//! A [`Scheme`] is the flattened form `∀t1::K1 … ∀tn::Kn. τ`. Binder order
//! matters: a later binder's kind may mention an earlier binder (kinds
//! contain types), so instantiation substitutes left to right.

use crate::kind::Kind;
use crate::types::{Mono, TyVar};
use std::collections::BTreeSet;

/// A polytype `∀t1::K1 … ∀tn::Kn. τ`. A monotype is a scheme with no
/// binders.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheme {
    pub binders: Vec<(TyVar, Kind)>,
    pub body: Mono,
}

impl Scheme {
    pub fn mono(body: Mono) -> Self {
        Scheme {
            binders: Vec::new(),
            body,
        }
    }

    pub fn poly(binders: Vec<(TyVar, Kind)>, body: Mono) -> Self {
        Scheme { binders, body }
    }

    pub fn is_mono(&self) -> bool {
        self.binders.is_empty()
    }

    /// Free type variables of the scheme: free vars of the body and of the
    /// binder kinds, minus the bound variables.
    pub fn free_vars(&self) -> Vec<TyVar> {
        let bound: BTreeSet<TyVar> = self.binders.iter().map(|(v, _)| *v).collect();
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        let mut push = |v: TyVar| {
            if !bound.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        };
        for (_, k) in &self.binders {
            for v in k.free_vars() {
                push(v);
            }
        }
        for v in self.body.free_vars() {
            push(v);
        }
        out
    }
}

impl From<Mono> for Scheme {
    fn from(t: Mono) -> Self {
        Scheme::mono(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn mono_scheme_has_no_binders() {
        let s = Scheme::mono(Mono::int());
        assert!(s.is_mono());
        assert!(s.free_vars().is_empty());
    }

    #[test]
    fn free_vars_exclude_bound() {
        // ∀t1::[[x = t2]]. t1 → t3 : free vars are t2 and t3.
        let s = Scheme::poly(
            vec![(1, Kind::has_field(Label::new("x"), Mono::Var(2)))],
            Mono::arrow(Mono::Var(1), Mono::Var(3)),
        );
        assert_eq!(s.free_vars(), vec![2, 3]);
    }

    #[test]
    fn bound_var_in_kind_of_later_binder_is_not_free() {
        // ∀t1::U. ∀t2::[[x = t1]]. t2 : no free vars.
        let s = Scheme::poly(
            vec![
                (1, Kind::Univ),
                (2, Kind::has_field(Label::new("x"), Mono::Var(1))),
            ],
            Mono::Var(2),
        );
        assert!(s.free_vars().is_empty());
    }
}

//! Record labels and variable names.
//!
//! Labels order and compare by their text so that record types have a
//! canonical field order independent of construction order — the paper
//! treats `[A = int, B = bool]` and `[B = bool, A = int]` as the same type.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A record label (also used for the numeric labels `1`, `2`, … of tuples).
///
/// Cheap to clone; equality, ordering and hashing are by the label text.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(Arc<str>);

impl Label {
    pub fn new(s: impl AsRef<str>) -> Self {
        Label(Arc::from(s.as_ref()))
    }

    /// The numeric label `n`, used for tuple fields (`τ1 × τ2` is
    /// `[1 = τ1, 2 = τ2]` in the paper).
    pub fn tuple(n: usize) -> Self {
        Label::new(n.to_string())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True for the numeric labels produced by [`Label::tuple`].
    pub fn is_numeric(&self) -> bool {
        !self.0.is_empty() && self.0.bytes().all(|b| b.is_ascii_digit())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({})", self.0)
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Self {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::new(s)
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// A term variable name. Shares the representation of [`Label`].
pub type Name = Label;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn labels_compare_by_text() {
        assert_eq!(Label::new("Name"), Label::from("Name"));
        assert!(Label::new("Age") < Label::new("Name"));
    }

    #[test]
    fn tuple_labels_are_numeric() {
        assert!(Label::tuple(1).is_numeric());
        assert!(Label::tuple(42).is_numeric());
        assert!(!Label::new("Salary").is_numeric());
        assert!(!Label::new("").is_numeric());
        assert!(!Label::new("1a").is_numeric());
    }

    #[test]
    fn tuple_label_text() {
        assert_eq!(Label::tuple(2).as_str(), "2");
    }

    #[test]
    fn labels_are_ordered_in_sets() {
        let mut s = BTreeSet::new();
        s.insert(Label::new("b"));
        s.insert(Label::new("a"));
        s.insert(Label::new("c"));
        let v: Vec<_> = s.iter().map(|l| l.as_str().to_string()).collect();
        assert_eq!(v, ["a", "b", "c"]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let l = Label::new("Salary");
        let m = l.clone();
        assert_eq!(l, m);
    }
}

//! Kinds (paper Section 2):
//!
//! ```text
//! K ::= U | [[F, …, F]]
//! ```
//!
//! `U` denotes arbitrary types. A record kind `[[F1, …, Fn]]` denotes the
//! record types containing fields `F'1, …, F'n` (and possibly others) such
//! that each `Fi < F'i`, where the paper's `<` relation is:
//!
//! * if `Fi` is `l := τ` (the kind *requires mutability*) then `F'i` must be
//!   `l := τ`;
//! * if `Fi` is `l = τ` then `F'i` may be either `l = τ` or `l := τ`.
//!
//! We encode the requirement with [`MutReq`]: `Mutable` for `l := τ`, `Any`
//! for `l = τ`.

use crate::label::Label;
use crate::types::{FieldTy, Mono, TyVar};
use std::collections::{BTreeMap, BTreeSet};

/// Mutability requirement a record kind places on a field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutReq {
    /// `l = τ` in a kind: the field may be mutable or immutable.
    Any,
    /// `l := τ` in a kind: the field must be mutable.
    Mutable,
}

impl MutReq {
    /// Join of two requirements (used when two kinded variables are unified):
    /// `Mutable` absorbs `Any`.
    pub fn join(self, other: MutReq) -> MutReq {
        if self == MutReq::Mutable || other == MutReq::Mutable {
            MutReq::Mutable
        } else {
            MutReq::Any
        }
    }

    /// Does a concrete field with mutability `actual_mutable` satisfy this
    /// requirement? This is exactly the paper's `F < F'` check.
    pub fn admits(self, actual_mutable: bool) -> bool {
        match self {
            MutReq::Any => true,
            MutReq::Mutable => actual_mutable,
        }
    }
}

/// A field constraint in a record kind.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldReq {
    pub req: MutReq,
    pub ty: Mono,
}

impl FieldReq {
    pub fn any(ty: Mono) -> Self {
        FieldReq {
            req: MutReq::Any,
            ty,
        }
    }
    pub fn mutable(ty: Mono) -> Self {
        FieldReq {
            req: MutReq::Mutable,
            ty,
        }
    }
}

/// Kinds `K`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// `U` — arbitrary types.
    Univ,
    /// `[[l1 @ τ1, …, ln @ τn]]` — record types with at least these fields.
    Record(BTreeMap<Label, FieldReq>),
}

impl Kind {
    /// The kind `[[l = τ]]` (field may be mutable or immutable).
    pub fn has_field(l: Label, ty: Mono) -> Kind {
        Kind::Record([(l, FieldReq::any(ty))].into_iter().collect())
    }

    /// The kind `[[l := τ]]` (field must be mutable).
    pub fn has_mutable_field(l: Label, ty: Mono) -> Kind {
        Kind::Record([(l, FieldReq::mutable(ty))].into_iter().collect())
    }

    /// The trivially satisfied record kind `[[ ]]` — any record type. Used by
    /// the `(id)` rule of Fig. 2, which requires `IDView`'s argument to be a
    /// record.
    pub fn any_record() -> Kind {
        Kind::Record(BTreeMap::new())
    }

    pub fn is_univ(&self) -> bool {
        matches!(self, Kind::Univ)
    }

    /// Check a fully concrete record type against this kind (the paper's
    /// third kinding rule). Returns per-field type equations that must hold
    /// (the caller unifies them); `None` when a field is missing or the
    /// mutability requirement fails.
    pub fn check_record(&self, fields: &BTreeMap<Label, FieldTy>) -> Option<Vec<(Mono, Mono)>> {
        match self {
            Kind::Univ => Some(Vec::new()),
            Kind::Record(reqs) => {
                let mut eqs = Vec::with_capacity(reqs.len());
                for (l, req) in reqs {
                    let f = fields.get(l)?;
                    if !req.req.admits(f.mutable) {
                        return None;
                    }
                    eqs.push((req.ty.clone(), f.ty.clone()));
                }
                Some(eqs)
            }
        }
    }

    /// Free type variables occurring in the kind's field types.
    pub fn free_vars(&self) -> Vec<TyVar> {
        match self {
            Kind::Univ => Vec::new(),
            Kind::Record(reqs) => {
                let mut seen = BTreeSet::new();
                let mut out = Vec::new();
                for r in reqs.values() {
                    for v in r.ty.free_vars() {
                        if seen.insert(v) {
                            out.push(v);
                        }
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutreq_join_absorbs() {
        assert_eq!(MutReq::Any.join(MutReq::Any), MutReq::Any);
        assert_eq!(MutReq::Any.join(MutReq::Mutable), MutReq::Mutable);
        assert_eq!(MutReq::Mutable.join(MutReq::Any), MutReq::Mutable);
        assert_eq!(MutReq::Mutable.join(MutReq::Mutable), MutReq::Mutable);
    }

    #[test]
    fn mutreq_admits_is_papers_field_order() {
        // l = τ in a kind admits both l = τ and l := τ in the record.
        assert!(MutReq::Any.admits(false));
        assert!(MutReq::Any.admits(true));
        // l := τ in a kind admits only l := τ.
        assert!(!MutReq::Mutable.admits(false));
        assert!(MutReq::Mutable.admits(true));
    }

    #[test]
    fn check_record_missing_field() {
        let k = Kind::has_field(Label::new("x"), Mono::int());
        let fields: BTreeMap<Label, FieldTy> = [(Label::new("y"), FieldTy::immutable(Mono::int()))]
            .into_iter()
            .collect();
        assert!(k.check_record(&fields).is_none());
    }

    #[test]
    fn check_record_mutability_violation() {
        let k = Kind::has_mutable_field(Label::new("x"), Mono::int());
        let fields: BTreeMap<Label, FieldTy> = [(Label::new("x"), FieldTy::immutable(Mono::int()))]
            .into_iter()
            .collect();
        assert!(k.check_record(&fields).is_none());
    }

    #[test]
    fn check_record_yields_equations() {
        let k = Kind::has_field(Label::new("x"), Mono::Var(9));
        let fields: BTreeMap<Label, FieldTy> = [(Label::new("x"), FieldTy::mutable(Mono::int()))]
            .into_iter()
            .collect();
        let eqs = k.check_record(&fields).expect("kind satisfied");
        assert_eq!(eqs, vec![(Mono::Var(9), Mono::int())]);
    }

    #[test]
    fn univ_checks_anything() {
        assert_eq!(Kind::Univ.check_record(&BTreeMap::new()), Some(vec![]));
    }

    #[test]
    fn any_record_checks_all_records() {
        let fields: BTreeMap<Label, FieldTy> =
            [(Label::new("z"), FieldTy::immutable(Mono::bool()))]
                .into_iter()
                .collect();
        assert_eq!(Kind::any_record().check_record(&fields), Some(vec![]));
    }

    #[test]
    fn kind_free_vars() {
        let k = Kind::Record(
            [
                (Label::new("a"), FieldReq::any(Mono::Var(2))),
                (Label::new("b"), FieldReq::mutable(Mono::set(Mono::Var(5)))),
            ]
            .into_iter()
            .collect(),
        );
        assert_eq!(k.free_vars(), vec![2, 5]);
        assert!(Kind::Univ.free_vars().is_empty());
    }
}

//! Deeper scenarios for the IS-A baseline: multi-level chains, diamond
//! hierarchies, several shared classes over one source, and the
//! copy-accounting that the E7 benchmark reports.

use polyview_isa::{FieldVal, IsaStore, Refresh};

fn row(name: &str, kind: &str) -> Vec<(String, FieldVal)> {
    vec![
        ("Name".to_string(), FieldVal::str(name)),
        ("Kind".to_string(), FieldVal::str(kind)),
    ]
}

#[test]
fn three_level_chain_extent_inclusion() {
    // Person ⊇ Employee ⊇ Manager.
    let mut st = IsaStore::new(Refresh::Eager);
    let person = st.new_class("Person", &[]);
    let employee = st.new_class("Employee", &[person]);
    let manager = st.new_class("Manager", &[employee]);
    st.insert(person, row("p", "person"));
    st.insert(employee, row("e", "employee"));
    st.insert(manager, row("m", "manager"));
    assert_eq!(st.count(manager), 1);
    assert_eq!(st.count(employee), 2);
    assert_eq!(st.count(person), 3);
}

#[test]
fn diamond_hierarchy_counts_once() {
    //      Top
    //     /   \
    //   Left  Right
    //     \   /
    //     Bottom      (an object in Bottom reaches Top via both paths)
    let mut st = IsaStore::new(Refresh::Eager);
    let top = st.new_class("Top", &[]);
    let left = st.new_class("Left", &[top]);
    let right = st.new_class("Right", &[top]);
    let bottom = st.new_class("Bottom", &[left, right]);
    st.insert(bottom, row("b", "bottom"));
    assert_eq!(st.count(top), 1, "diamond must deduplicate by oid");
    assert_eq!(st.count(left), 1);
    assert_eq!(st.count(right), 1);
}

#[test]
fn several_shared_classes_over_one_source() {
    let mut st = IsaStore::new(Refresh::Eager);
    let src = st.new_class("Src", &[]);
    st.insert(src, row("a", "x"));
    st.insert(src, row("b", "y"));
    st.insert(src, row("c", "x"));
    let xs = st.define_shared_class(
        "Xs",
        &[src],
        |r| r.get("Kind").and_then(FieldVal::as_str) == Some("x"),
        |r| r.project(&["Name"]),
    );
    let ys = st.define_shared_class(
        "Ys",
        &[src],
        |r| r.get("Kind").and_then(FieldVal::as_str) == Some("y"),
        |r| r.project(&["Name"]),
    );
    assert_eq!(st.count(xs), 2);
    assert_eq!(st.count(ys), 1);
    // One update invalidates *both* derived classes — the fan-out cost the
    // E7 bench measures.
    let before = st.stats().rematerializations;
    let oid = st.extent(src)[0].oid;
    st.update(src, oid, "Kind", FieldVal::str("y"));
    assert!(st.stats().rematerializations >= before + 2);
    assert_eq!(st.count(xs) + st.count(ys), 3);
}

#[test]
fn shared_class_over_hierarchy_sees_subclass_rows() {
    // Shared class over Person must also see Employees (extent inclusion
    // feeds the generated intermediate).
    let mut st = IsaStore::new(Refresh::Eager);
    let person = st.new_class("Person", &[]);
    let employee = st.new_class("Employee", &[person]);
    st.insert(person, row("p", "x"));
    let shared = st.define_shared_class(
        "AllX",
        &[person],
        |r| r.get("Kind").and_then(FieldVal::as_str) == Some("x"),
        |r| r.project(&["Name"]),
    );
    assert_eq!(st.count(shared), 1);
    st.insert(employee, row("e", "x"));
    assert_eq!(st.count(shared), 2, "subclass insert must flow through");
}

#[test]
fn onquery_defers_all_work_to_first_query() {
    let mut st = IsaStore::new(Refresh::OnQuery);
    let src = st.new_class("Src", &[]);
    for i in 0..10 {
        st.insert(src, row(&format!("r{i}"), "x"));
    }
    let shared = st.define_shared_class("S", &[src], |_| true, |r| r.project(&["Name"]));
    let base = st.stats().rematerializations;
    // Ten updates: no re-materialization yet.
    for i in 0..10 {
        st.update(src, i, "Kind", FieldVal::str("y"));
    }
    assert_eq!(st.stats().rematerializations, base);
    // One query: exactly one rebuild.
    st.count(shared);
    assert_eq!(st.stats().rematerializations, base + 1);
    // A second query with no updates: still cached.
    st.count(shared);
    assert_eq!(st.stats().rematerializations, base + 1);
}

#[test]
fn copies_scale_with_matching_rows() {
    let mut st = IsaStore::new(Refresh::Eager);
    let src = st.new_class("Src", &[]);
    for i in 0..20 {
        st.insert(src, row(&format!("r{i}"), if i < 15 { "x" } else { "y" }));
    }
    let before = st.stats().rows_copied;
    st.define_shared_class(
        "Xs",
        &[src],
        |r| r.get("Kind").and_then(FieldVal::as_str) == Some("x"),
        |r| r.project(&["Name"]),
    );
    assert_eq!(st.stats().rows_copied - before, 15);
}

#[test]
fn delete_of_unknown_oid_is_noop() {
    let mut st = IsaStore::new(Refresh::Eager);
    let src = st.new_class("Src", &[]);
    st.insert(src, row("a", "x"));
    assert!(!st.delete(src, 999));
    assert_eq!(st.count(src), 1);
    assert!(!st.update(src, 999, "Kind", FieldVal::str("z")));
}

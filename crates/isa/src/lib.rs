//! The baseline the paper argues against (Section 1): object sharing via a
//! *partial order* on classes (IS-A extent inclusion), where
//! non-hierarchical sharing — e.g. a `FemaleMember` class drawing from both
//! `Staff` and `Student` — must be encoded by **generating intermediate
//! classes** and **eagerly materializing** their extents as copies
//! ([28, 26, 1] in the paper's bibliography).
//!
//! The model:
//!
//! * A class has an own extent (rows inserted directly) and IS-A parents;
//!   the extent of a class is its own rows plus the extents of all
//!   subclasses (extent inclusion along the partial order).
//! * [`IsaStore::define_shared_class`] emulates the dynamic-class-generation
//!   approach: for each source class it generates an intermediate subclass
//!   (`<name>__of__<source>`) holding *projected copies* of the source rows
//!   that satisfy the predicate, and makes the new class a superclass of
//!   all intermediates.
//! * Updates to base rows invalidate the derived copies: under
//!   [`Refresh::Eager`] every update immediately re-materializes all
//!   dependent intermediates (copy cost proportional to source extents);
//!   under [`Refresh::OnQuery`] the re-materialization is deferred to the
//!   next query touching a dirty class — there is no finer granularity
//!   because copies, unlike the calculus's views, cannot share state with
//!   their sources.
//!
//! The benches in `polyview-bench` compare this baseline against the
//! calculus's lazy shared extents (DESIGN.md experiment E7). The
//! [`IsaStore::stats`] counters expose the copying work the partial-order
//! encoding performs.

pub mod model;
pub mod store;

pub use model::{FieldVal, ObjRow, Oid};
pub use store::{ClassId, IsaStore, Refresh, Stats};

//! The IS-A hierarchy store with eager/deferred re-materialization of
//! generated intermediate classes.

use crate::model::{FieldVal, ObjRow, Oid};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

pub type ClassId = usize;

/// When to rebuild the copies held by derived (generated) classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refresh {
    /// Re-materialize every dependent class on each base update — copies
    /// are always consistent, updates are expensive.
    Eager,
    /// Mark dependents dirty on update and rebuild at the next query —
    /// queries on dirty classes pay the full re-materialization.
    OnQuery,
}

/// Predicate and projection of a generated sharing class.
type Pred = Rc<dyn Fn(&ObjRow) -> bool>;
type Proj = Rc<dyn Fn(&ObjRow) -> ObjRow>;

struct DerivedSpec {
    source: ClassId,
    pred: Pred,
    proj: Proj,
}

struct IsaClass {
    name: String,
    parents: Vec<ClassId>,
    own: BTreeMap<Oid, ObjRow>,
    derived: Option<DerivedSpec>,
    /// Cached copies for derived classes.
    materialized: Vec<ObjRow>,
    dirty: bool,
}

/// Counters exposing the copying work the baseline performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub rows_copied: u64,
    pub rematerializations: u64,
}

/// A class hierarchy with extent inclusion along IS-A edges and generated
/// intermediate classes for non-hierarchical sharing.
pub struct IsaStore {
    classes: Vec<IsaClass>,
    names: HashMap<String, ClassId>,
    children: Vec<Vec<ClassId>>,
    /// derived class ids depending (transitively) on each class.
    dependents: Vec<Vec<ClassId>>,
    next_oid: Oid,
    pub refresh: Refresh,
    stats: Stats,
}

impl IsaStore {
    pub fn new(refresh: Refresh) -> Self {
        IsaStore {
            classes: Vec::new(),
            names: HashMap::new(),
            children: Vec::new(),
            dependents: Vec::new(),
            next_oid: 0,
            refresh,
            stats: Stats::default(),
        }
    }

    pub fn stats(&self) -> Stats {
        self.stats
    }

    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.names.get(name).copied()
    }

    pub fn class_name(&self, class: ClassId) -> &str {
        &self.classes[class].name
    }

    /// The IS-A parents of a class (superclasses in the partial order).
    pub fn parents_of(&self, class: ClassId) -> &[ClassId] {
        &self.classes[class].parents
    }

    /// Create an ordinary class with the given IS-A parents.
    pub fn new_class(&mut self, name: &str, parents: &[ClassId]) -> ClassId {
        let id = self.classes.len();
        self.classes.push(IsaClass {
            name: name.to_string(),
            parents: parents.to_vec(),
            own: BTreeMap::new(),
            derived: None,
            materialized: Vec::new(),
            dirty: false,
        });
        self.children.push(Vec::new());
        self.dependents.push(Vec::new());
        for &p in parents {
            self.children[p].push(id);
        }
        self.names.insert(name.to_string(), id);
        id
    }

    /// Emulate general object sharing under the partial-order regime:
    /// generate one intermediate subclass per source holding projected
    /// copies of the matching rows, and a result class over them.
    pub fn define_shared_class(
        &mut self,
        name: &str,
        sources: &[ClassId],
        pred: impl Fn(&ObjRow) -> bool + 'static,
        proj: impl Fn(&ObjRow) -> ObjRow + 'static,
    ) -> ClassId {
        let pred: Pred = Rc::new(pred);
        let proj: Proj = Rc::new(proj);
        let result = self.new_class(name, &[]);
        for &src in sources {
            let iname = format!("{name}__of__{}", self.classes[src].name);
            let inter = self.new_class(&iname, &[result]);
            self.classes[inter].derived = Some(DerivedSpec {
                source: src,
                pred: pred.clone(),
                proj: proj.clone(),
            });
            // Every class whose extent feeds `src` must invalidate `inter`.
            let feeders = self.subtree(src);
            for f in feeders {
                self.dependents[f].push(inter);
            }
            self.rematerialize(inter);
        }
        result
    }

    /// Insert a fresh object into a class's own extent; returns its oid.
    pub fn insert(
        &mut self,
        class: ClassId,
        fields: impl IntoIterator<Item = (String, FieldVal)>,
    ) -> Oid {
        let oid = self.next_oid;
        self.next_oid += 1;
        let row = ObjRow::new(oid, fields);
        self.classes[class].own.insert(oid, row);
        self.invalidate(class);
        oid
    }

    /// Remove an object from a class's own extent.
    pub fn delete(&mut self, class: ClassId, oid: Oid) -> bool {
        let removed = self.classes[class].own.remove(&oid).is_some();
        if removed {
            self.invalidate(class);
        }
        removed
    }

    /// Update a field of an object stored in `class`'s own extent.
    pub fn update(&mut self, class: ClassId, oid: Oid, field: &str, v: FieldVal) -> bool {
        let updated = match self.classes[class].own.get_mut(&oid) {
            Some(row) => {
                row.fields.insert(field.to_string(), v);
                true
            }
            None => false,
        };
        if updated {
            self.invalidate(class);
        }
        updated
    }

    /// The full extent of a class: own rows, subclass extents, and (for
    /// derived classes) the materialized copies. Deduplicated by oid,
    /// own-extent-first.
    pub fn extent(&mut self, class: ClassId) -> Vec<ObjRow> {
        self.refresh_dirty(class);
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        self.collect_extent(class, &mut seen, &mut out);
        out
    }

    pub fn count(&mut self, class: ClassId) -> usize {
        self.extent(class).len()
    }

    /// Rows of the extent satisfying a filter (a query).
    pub fn select(&mut self, class: ClassId, f: impl Fn(&ObjRow) -> bool) -> Vec<ObjRow> {
        self.extent(class).into_iter().filter(|r| f(r)).collect()
    }

    fn collect_extent(&self, class: ClassId, seen: &mut HashSet<Oid>, out: &mut Vec<ObjRow>) {
        let c = &self.classes[class];
        for row in c.own.values() {
            if seen.insert(row.oid) {
                out.push(row.clone());
            }
        }
        for row in &c.materialized {
            if seen.insert(row.oid) {
                out.push(row.clone());
            }
        }
        for &ch in &self.children[class] {
            self.collect_extent(ch, seen, out);
        }
    }

    /// All classes contributing to `class`'s extent (itself + subclasses).
    fn subtree(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = vec![class];
        let mut i = 0;
        while i < out.len() {
            let c = out[i];
            for &ch in &self.children[c] {
                if !out.contains(&ch) {
                    out.push(ch);
                }
            }
            i += 1;
        }
        out
    }

    fn invalidate(&mut self, class: ClassId) {
        let deps: Vec<ClassId> = self.dependents[class].clone();
        match self.refresh {
            Refresh::Eager => {
                for d in deps {
                    self.rematerialize(d);
                }
            }
            Refresh::OnQuery => {
                for d in deps {
                    self.classes[d].dirty = true;
                }
            }
        }
    }

    fn refresh_dirty(&mut self, class: ClassId) {
        for c in self.subtree(class) {
            if self.classes[c].dirty {
                self.rematerialize(c);
            }
        }
    }

    /// Rebuild a derived class's copies from its source extent.
    fn rematerialize(&mut self, class: ClassId) {
        let spec_source = match &self.classes[class].derived {
            Some(s) => s.source,
            None => return,
        };
        // Collect the source extent (source classes are never derived from
        // this class, so no cycle; the paper's recursive sharing has no
        // counterpart here — a fundamental expressiveness gap of the
        // partial-order encoding).
        let mut seen = HashSet::new();
        let mut rows = Vec::new();
        self.collect_extent(spec_source, &mut seen, &mut rows);
        let spec = self.classes[class].derived.as_ref().expect("checked");
        let (pred, proj) = (spec.pred.clone(), spec.proj.clone());
        let copies: Vec<ObjRow> = rows.iter().filter(|r| pred(r)).map(|r| proj(r)).collect();
        self.stats.rows_copied += copies.len() as u64;
        self.stats.rematerializations += 1;
        let c = &mut self.classes[class];
        c.materialized = copies;
        c.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person(name: &str, age: i64, sex: &str) -> Vec<(String, FieldVal)> {
        vec![
            ("Name".to_string(), FieldVal::str(name)),
            ("Age".to_string(), FieldVal::Int(age)),
            ("Sex".to_string(), FieldVal::str(sex)),
        ]
    }

    fn female_member_setup(refresh: Refresh) -> (IsaStore, ClassId, ClassId, ClassId, Oid) {
        let mut st = IsaStore::new(refresh);
        let staff = st.new_class("Staff", &[]);
        let student = st.new_class("Student", &[]);
        let alice = st.insert(staff, person("Alice", 40, "female"));
        st.insert(staff, person("Bob", 50, "male"));
        st.insert(student, person("Carol", 22, "female"));
        let female = st.define_shared_class(
            "FemaleMember",
            &[staff, student],
            |r| r.get("Sex").and_then(FieldVal::as_str) == Some("female"),
            |r| r.project(&["Name", "Age"]),
        );
        (st, staff, student, female, alice)
    }

    #[test]
    fn isa_extent_inclusion_along_hierarchy() {
        let mut st = IsaStore::new(Refresh::Eager);
        let person_cls = st.new_class("Person", &[]);
        let emp = st.new_class("Employee", &[person_cls]);
        st.insert(person_cls, person("P", 1, "x"));
        st.insert(emp, person("E", 2, "x"));
        // Employee ⊆ Person extent.
        assert_eq!(st.count(person_cls), 2);
        assert_eq!(st.count(emp), 1);
    }

    #[test]
    fn shared_class_collects_from_both_sources() {
        let (mut st, _, _, female, _) = female_member_setup(Refresh::Eager);
        let names: Vec<String> = st
            .extent(female)
            .iter()
            .map(|r| {
                r.get("Name")
                    .and_then(FieldVal::as_str)
                    .expect("name")
                    .to_string()
            })
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"Alice".to_string()));
        assert!(names.contains(&"Carol".to_string()));
    }

    #[test]
    fn projection_hides_fields_in_copies() {
        let (mut st, _, _, female, _) = female_member_setup(Refresh::Eager);
        for row in st.extent(female) {
            assert!(row.get("Sex").is_none(), "projection must hide Sex");
        }
    }

    #[test]
    fn eager_update_rematerializes_immediately() {
        let (mut st, staff, _, female, alice) = female_member_setup(Refresh::Eager);
        let before = st.stats().rematerializations;
        st.update(staff, alice, "Age", FieldVal::Int(41));
        assert!(st.stats().rematerializations > before);
        let ages: Vec<i64> = st
            .extent(female)
            .iter()
            .filter_map(|r| r.get("Age").and_then(FieldVal::as_int))
            .collect();
        assert!(ages.contains(&41));
    }

    #[test]
    fn deferred_update_rematerializes_on_query() {
        let (mut st, staff, _, female, alice) = female_member_setup(Refresh::OnQuery);
        let before = st.stats().rematerializations;
        st.update(staff, alice, "Age", FieldVal::Int(41));
        // No work yet…
        assert_eq!(st.stats().rematerializations, before);
        // …until the query.
        let ages: Vec<i64> = st
            .extent(female)
            .iter()
            .filter_map(|r| r.get("Age").and_then(FieldVal::as_int))
            .collect();
        assert!(ages.contains(&41));
        assert!(st.stats().rematerializations > before);
    }

    #[test]
    fn inserts_flow_into_shared_class() {
        let (mut st, staff, _, female, _) = female_member_setup(Refresh::Eager);
        st.insert(staff, person("Eve", 31, "female"));
        let names: Vec<&str> = Vec::new();
        drop(names);
        assert_eq!(st.count(female), 3);
    }

    #[test]
    fn deletes_flow_into_shared_class() {
        let (mut st, staff, _, female, alice) = female_member_setup(Refresh::Eager);
        assert!(st.delete(staff, alice));
        assert_eq!(st.count(female), 1);
        assert!(!st.delete(staff, alice));
    }

    #[test]
    fn identity_preserved_across_copies() {
        let (mut st, staff, _, female, alice) = female_member_setup(Refresh::Eager);
        let in_staff = st
            .extent(staff)
            .into_iter()
            .find(|r| r.oid == alice)
            .expect("alice in staff");
        let in_female = st
            .extent(female)
            .into_iter()
            .find(|r| r.oid == alice)
            .expect("alice in female");
        assert_eq!(in_staff.oid, in_female.oid);
        // But the rows are copies: Staff's has Sex, FemaleMember's doesn't.
        assert!(in_staff.get("Sex").is_some());
        assert!(in_female.get("Sex").is_none());
    }

    #[test]
    fn copy_counters_track_work() {
        let (mut st, staff, _, _, alice) = female_member_setup(Refresh::Eager);
        let base = st.stats().rows_copied;
        st.update(staff, alice, "Age", FieldVal::Int(99));
        // Eager refresh re-copies the matching rows of the staff source.
        assert!(st.stats().rows_copied > base);
    }

    #[test]
    fn select_filters_extent() {
        let (mut st, _, _, female, _) = female_member_setup(Refresh::Eager);
        let over30 = st.select(female, |r| {
            r.get("Age")
                .and_then(FieldVal::as_int)
                .is_some_and(|a| a > 30)
        });
        assert_eq!(over30.len(), 1);
    }

    #[test]
    fn generated_intermediates_sit_under_result_class() {
        let (st, _, _, female, _) = female_member_setup(Refresh::Eager);
        let inter = st.class_id("FemaleMember__of__Staff").expect("generated");
        assert_eq!(st.parents_of(inter), &[female]);
        assert_eq!(st.class_name(female), "FemaleMember");
    }

    #[test]
    fn class_lookup_by_name() {
        let (st, staff, _, female, _) = female_member_setup(Refresh::Eager);
        assert_eq!(st.class_id("Staff"), Some(staff));
        assert_eq!(st.class_id("FemaleMember"), Some(female));
        assert!(st.class_id("FemaleMember__of__Staff").is_some());
        assert_eq!(st.class_id("Nope"), None);
    }
}

//! Rows of the baseline model: flat records with object identity.

use std::collections::BTreeMap;

/// Object identity, preserved across the hierarchy (an object inserted into
/// a subclass is "the same object" in every superclass extent).
pub type Oid = u64;

/// Field values — the base types of the calculus.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldVal {
    Int(i64),
    Str(String),
    Bool(bool),
}

impl FieldVal {
    pub fn str(s: impl Into<String>) -> Self {
        FieldVal::Str(s.into())
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            FieldVal::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldVal::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A row: identity plus fields. Derived classes hold *copies* of rows
/// (same `oid`, projected fields) — exactly the property that forces
/// re-materialization on update.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjRow {
    pub oid: Oid,
    pub fields: BTreeMap<String, FieldVal>,
}

impl ObjRow {
    pub fn new(oid: Oid, fields: impl IntoIterator<Item = (String, FieldVal)>) -> Self {
        ObjRow {
            oid,
            fields: fields.into_iter().collect(),
        }
    }

    pub fn get(&self, field: &str) -> Option<&FieldVal> {
        self.fields.get(field)
    }

    /// A projected copy keeping only the named fields (attribute hiding in
    /// copy-land).
    pub fn project(&self, keep: &[&str]) -> ObjRow {
        ObjRow {
            oid: self.oid,
            fields: self
                .fields
                .iter()
                .filter(|(k, _)| keep.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// A copy with an extra (computed or constant) field.
    pub fn with_field(mut self, name: impl Into<String>, v: FieldVal) -> ObjRow {
        self.fields.insert(name.into(), v);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> ObjRow {
        ObjRow::new(
            7,
            [
                ("Name".to_string(), FieldVal::str("Alice")),
                ("Age".to_string(), FieldVal::Int(40)),
                ("Sex".to_string(), FieldVal::str("female")),
            ],
        )
    }

    #[test]
    fn projection_keeps_identity() {
        let p = row().project(&["Name"]);
        assert_eq!(p.oid, 7);
        assert_eq!(p.fields.len(), 1);
        assert_eq!(p.get("Name").and_then(FieldVal::as_str), Some("Alice"));
        assert!(p.get("Age").is_none());
    }

    #[test]
    fn with_field_adds_category() {
        let p = row()
            .project(&["Name"])
            .with_field("Category", FieldVal::str("staff"));
        assert_eq!(p.get("Category").and_then(FieldVal::as_str), Some("staff"));
    }

    #[test]
    fn field_accessors() {
        assert_eq!(FieldVal::Int(3).as_int(), Some(3));
        assert_eq!(FieldVal::str("x").as_int(), None);
        assert_eq!(FieldVal::str("x").as_str(), Some("x"));
    }
}

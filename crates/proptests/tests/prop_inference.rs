//! Prop. 2 (principal types) and unification properties, over generated
//! types and programs.

mod common;

use common::Gen;
use polyview_syntax::{Mono, Scheme};
use polyview_types::{builtins_sig, infer, instance, Infer};
use proptest::prelude::*;

/// A deterministic structural rename of all variables in an expression's
/// binder names — alpha-renaming at the term level.
fn alpha_rename(e: &polyview_syntax::Expr) -> polyview_syntax::Expr {
    use polyview_syntax::Expr;
    fn go(e: &Expr, suffix: &str) -> Expr {
        match e {
            Expr::Lam(x, b) => {
                let nx = polyview_syntax::Label::new(format!("{x}{suffix}"));
                Expr::lam(nx, go(&rename_var(b, x, suffix), suffix))
            }
            Expr::Let(x, r, b) => {
                let nx = polyview_syntax::Label::new(format!("{x}{suffix}"));
                Expr::Let(
                    nx,
                    Box::new(go(r, suffix)),
                    Box::new(go(&rename_var(b, x, suffix), suffix)),
                )
            }
            other => map_children(other, &|c| go(c, suffix)),
        }
    }
    // A crude but sound capture-free renamer: it relies on the generator
    // producing globally unique binder names, so appending a suffix stays
    // capture-free.
    fn rename_var(e: &Expr, x: &polyview_syntax::Name, suffix: &str) -> Expr {
        match e {
            Expr::Var(y) if y == x => {
                Expr::Var(polyview_syntax::Label::new(format!("{y}{suffix}")))
            }
            Expr::Lam(y, _) | Expr::Fix(y, _) if y == x => e.clone(),
            Expr::Let(y, r, b) if y == x => Expr::Let(
                y.clone(),
                Box::new(rename_var(r, x, suffix)),
                (*b).clone(),
            ),
            other => map_children(other, &|c| rename_var(c, x, suffix)),
        }
    }
    fn map_children(e: &Expr, f: &dyn Fn(&Expr) -> Expr) -> Expr {
        use polyview_syntax::Field;
        match e {
            Expr::Lit(_) | Expr::Var(_) => e.clone(),
            Expr::Eq(a, b) => Expr::eq(f(a), f(b)),
            Expr::Lam(x, b) => Expr::lam(x.clone(), f(b)),
            Expr::App(a, b) => Expr::app(f(a), f(b)),
            Expr::Record(fs) => Expr::Record(
                fs.iter()
                    .map(|fl| Field {
                        label: fl.label.clone(),
                        mutable: fl.mutable,
                        expr: f(&fl.expr),
                    })
                    .collect(),
            ),
            Expr::Dot(a, l) => Expr::Dot(Box::new(f(a)), l.clone()),
            Expr::Extract(a, l) => Expr::Extract(Box::new(f(a)), l.clone()),
            Expr::Update(a, l, b) => Expr::Update(Box::new(f(a)), l.clone(), Box::new(f(b))),
            Expr::SetLit(es) => Expr::SetLit(es.iter().map(f).collect()),
            Expr::Union(a, b) => Expr::union(f(a), f(b)),
            Expr::Hom(a, b, c, d) => Expr::hom(f(a), f(b), f(c), f(d)),
            Expr::Fix(x, b) => Expr::fix(x.clone(), f(b)),
            Expr::Let(x, r, b) => Expr::Let(x.clone(), Box::new(f(r)), Box::new(f(b))),
            Expr::If(a, b, c) => Expr::if_(f(a), f(b), f(c)),
            Expr::IdView(a) => Expr::IdView(Box::new(f(a))),
            Expr::AsView(a, b) => Expr::as_view(f(a), f(b)),
            Expr::Query(a, b) => Expr::query(f(a), f(b)),
            Expr::Fuse(a, b) => Expr::fuse(f(a), f(b)),
            Expr::RelObj(fs) => {
                Expr::RelObj(fs.iter().map(|(l, e)| (l.clone(), f(e))).collect())
            }
            Expr::ClassExpr(cd) => Expr::ClassExpr(map_class(cd, f)),
            Expr::CQuery(a, b) => Expr::cquery(f(a), f(b)),
            Expr::Insert(a, b) => Expr::insert(f(a), f(b)),
            Expr::Delete(a, b) => Expr::delete(f(a), f(b)),
            Expr::LetClasses(binds, b) => Expr::LetClasses(
                binds
                    .iter()
                    .map(|(n, cd)| (n.clone(), map_class(cd, f)))
                    .collect(),
                Box::new(f(b)),
            ),
        }
    }
    fn map_class(cd: &polyview_syntax::ClassDef, f: &dyn Fn(&Expr) -> Expr) -> polyview_syntax::ClassDef {
        polyview_syntax::ClassDef {
            own: Box::new(f(&cd.own)),
            includes: cd
                .includes
                .iter()
                .map(|i| polyview_syntax::IncludeClause {
                    sources: i.sources.iter().map(f).collect(),
                    view: f(&i.view),
                    pred: f(&i.pred),
                })
                .collect(),
        }
    }
    go(e, "_r")
}

fn principal_scheme(e: &polyview_syntax::Expr) -> Scheme {
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    let t = infer::infer(&mut cx, &mut env, e)
        .unwrap_or_else(|err| panic!("ill-typed ({err}): {e}"));
    cx.generalize(&env, &t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inference is deterministic: the same program always gets the same
    /// (alpha-equivalent) principal scheme.
    #[test]
    fn inference_is_deterministic(seed in any::<u64>(), depth in 1usize..5) {
        let mut g = Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let s1 = principal_scheme(&e);
        let s2 = principal_scheme(&e);
        prop_assert!(instance::equivalent(&s1, &s2), "{} vs {}", s1, s2);
    }

    /// Alpha-renaming term binders does not change the principal scheme.
    #[test]
    fn inference_is_stable_under_alpha_renaming(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let s1 = principal_scheme(&e);
        let s2 = principal_scheme(&alpha_rename(&e));
        prop_assert!(
            instance::equivalent(&s1, &s2),
            "alpha-renaming changed the scheme: {} vs {} for {}", s1, s2, e
        );
    }

    /// Every scheme is an instance of itself, and instancehood is
    /// transitive down to the by-construction monotype.
    #[test]
    fn instance_relation_is_reflexive_on_inferred(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, ty) = g.observable_program(depth);
        let s = principal_scheme(&e);
        prop_assert!(instance::instance_of(&s, &s), "not self-instance: {}", s);
        prop_assert!(
            instance::instance_of(&s, &Scheme::mono(ty.clone())),
            "{} not an instance of {}", ty, s
        );
    }
}

// ---------- unification properties over generated types ----------

fn gen_type_with_vars(g: &mut Gen, cx: &mut Infer, depth: usize) -> Mono {
    // Reuse the ground generator, then sprinkle fresh variables by
    // replacing random leaves.
    fn sprinkle(t: &Mono, cx: &mut Infer, flip: &mut dyn FnMut() -> bool) -> Mono {
        match t {
            Mono::Base(_) | Mono::Unit => {
                if flip() {
                    cx.fresh()
                } else {
                    t.clone()
                }
            }
            Mono::Arrow(a, b) => Mono::arrow(sprinkle(a, cx, flip), sprinkle(b, cx, flip)),
            Mono::Set(e) => Mono::set(sprinkle(e, cx, flip)),
            Mono::LVal(e) => Mono::lval(sprinkle(e, cx, flip)),
            Mono::Obj(e) => Mono::obj(sprinkle(e, cx, flip)),
            Mono::Class(e) => Mono::class(sprinkle(e, cx, flip)),
            Mono::Record(fs) => Mono::Record(
                fs.iter()
                    .map(|(l, f)| {
                        (
                            l.clone(),
                            polyview_syntax::FieldTy {
                                mutable: f.mutable,
                                ty: sprinkle(&f.ty, cx, flip),
                            },
                        )
                    })
                    .collect(),
            ),
            Mono::Var(v) => Mono::Var(*v),
        }
    }
    let base = g.ground_type(depth);
    let mut count = 0u32;
    let mut flip = || {
        count += 1;
        count.is_multiple_of(3)
    };
    sprinkle(&base, cx, &mut flip)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// When unification succeeds, the two types resolve to the same type.
    #[test]
    fn unification_produces_a_unifier(seed in any::<u64>(), depth in 0usize..4) {
        let mut g = Gen::new(seed);
        let mut cx = Infer::new();
        let a = gen_type_with_vars(&mut g, &mut cx, depth);
        let b = gen_type_with_vars(&mut g, &mut cx, depth);
        if cx.unify(&a, &b).is_ok() {
            prop_assert_eq!(cx.resolve(&a), cx.resolve(&b));
        }
    }

    /// Unification succeeds symmetrically and produces the same unifier up
    /// to resolution.
    #[test]
    fn unification_is_symmetric(seed in any::<u64>(), depth in 0usize..4) {
        let mut g1 = Gen::new(seed);
        let mut cx1 = Infer::new();
        let a1 = gen_type_with_vars(&mut g1, &mut cx1, depth);
        let b1 = gen_type_with_vars(&mut g1, &mut cx1, depth);
        let ok1 = cx1.unify(&a1, &b1).is_ok();

        let mut g2 = Gen::new(seed);
        let mut cx2 = Infer::new();
        let a2 = gen_type_with_vars(&mut g2, &mut cx2, depth);
        let b2 = gen_type_with_vars(&mut g2, &mut cx2, depth);
        let ok2 = cx2.unify(&b2, &a2).is_ok();

        prop_assert_eq!(ok1, ok2);
        if ok1 {
            prop_assert_eq!(cx1.resolve(&a1), cx2.resolve(&a2));
        }
    }

    /// Unifying a type with itself always succeeds without binding
    /// anything observable.
    #[test]
    fn unification_is_reflexive(seed in any::<u64>(), depth in 0usize..4) {
        let mut g = Gen::new(seed);
        let mut cx = Infer::new();
        let a = gen_type_with_vars(&mut g, &mut cx, depth);
        let before = cx.resolve(&a);
        prop_assert!(cx.unify(&a, &a).is_ok());
        prop_assert_eq!(cx.resolve(&a), before);
    }

    /// Resolution is idempotent after unification.
    #[test]
    fn resolution_is_idempotent(seed in any::<u64>(), depth in 0usize..4) {
        let mut g = Gen::new(seed);
        let mut cx = Infer::new();
        let a = gen_type_with_vars(&mut g, &mut cx, depth);
        let b = gen_type_with_vars(&mut g, &mut cx, depth);
        let _ = cx.unify(&a, &b);
        let once = cx.resolve(&a);
        let twice = cx.resolve(&once);
        prop_assert_eq!(once, twice);
    }
}

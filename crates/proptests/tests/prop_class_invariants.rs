//! Invariants of the class semantics (Sections 4.1/4.3), as properties
//! over generated classes and workloads:
//!
//! * the own extent is always a subset of the full extent;
//! * every extent member's raw object originates from some own extent
//!   (sharing never invents objects);
//! * insert/delete affect only the own extent, monotonically;
//! * extents are stable under repeated query (no query side effects).

mod common;

use common::Gen;
use polyview_eval::{Machine, SetVal, Value};
use polyview_syntax::builder as b;
use polyview_syntax::Expr;
use proptest::prelude::*;

fn count_query(class: &str) -> Expr {
    b::cquery(
        b::lam(
            "s",
            b::hom(
                b::v("s"),
                b::lam("x", b::int(1)),
                b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
                b::int(0),
            ),
        ),
        b::v(class),
    )
}

fn as_int(v: &Value) -> i64 {
    match v {
        Value::Int(n) => *n,
        other => panic!("expected int, got {other:?}"),
    }
}

/// Set-of-keys helper.
fn keyset(s: &SetVal) -> std::collections::BTreeSet<polyview_eval::Key> {
    s.0.keys().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// extent(C) ⊇ own(C), and both are stable across repeated queries.
    #[test]
    fn own_extent_subset_of_extent(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let view = g.view_type();
        let mut scope = Vec::new();
        let class_e = g.class_term_public(&view, &mut scope, depth);
        let mut m = Machine::new();
        let c = m.eval(&class_e).expect("class evals");
        let cid = c.as_class().expect("class value");

        let own = m
            .store
            .get(m.class_data(cid).own_slot)
            .as_set()
            .expect("own is a set")
            .clone();
        let extent1 = m.extent_of(&c).expect("extent");
        let extent2 = m.extent_of(&c).expect("extent again");
        prop_assert_eq!(keyset(&extent1), keyset(&extent2), "extent not stable");
        for k in keyset(&own) {
            prop_assert!(
                extent1.contains_key(&k),
                "own extent member missing from extent"
            );
        }
    }

    /// Inserting a fresh object grows the extent by exactly one; deleting
    /// it restores the previous extent.
    #[test]
    fn insert_delete_roundtrip(seed in any::<u64>(), depth in 1usize..3) {
        let mut g = Gen::new(seed);
        let view = g.view_type();
        let mut scope = Vec::new();
        let class_e = g.class_term_public(&view, &mut scope, depth);
        let obj_e = g.term(&polyview_syntax::Mono::obj(view.clone()), &mut scope, 1);

        let mut m = Machine::new();
        let c = m.eval(&class_e).expect("class evals");
        m.define_global("C", c);
        let o = m.eval(&obj_e).expect("object evals");
        m.define_global("o", o);

        let before = as_int(&m.eval(&count_query("C")).expect("count"));
        m.eval(&b::insert(b::v("C"), b::v("o"))).expect("insert");
        let after = as_int(&m.eval(&count_query("C")).expect("count"));
        prop_assert_eq!(after, before + 1, "fresh insert must grow extent by 1");

        // Inserting the same object again is a no-op (objeq).
        m.eval(&b::insert(b::v("C"), b::v("o"))).expect("re-insert");
        let again = as_int(&m.eval(&count_query("C")).expect("count"));
        prop_assert_eq!(again, after);

        m.eval(&b::delete(b::v("C"), b::v("o"))).expect("delete");
        let restored = as_int(&m.eval(&count_query("C")).expect("count"));
        prop_assert_eq!(restored, before, "delete must restore the extent");
    }

    /// Sharing never invents identities: every extent member's key also
    /// appears in the own extent of *some* class in the machine.
    #[test]
    fn extent_members_originate_from_own_extents(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let view = g.view_type();
        let mut scope = Vec::new();
        let class_e = g.class_term_public(&view, &mut scope, depth);
        let mut m = Machine::new();
        let c = m.eval(&class_e).expect("class evals");
        let extent = m.extent_of(&c).expect("extent");

        let mut own_keys = std::collections::BTreeSet::new();
        for cid in 0..m.class_count() {
            let own = m
                .store
                .get(m.class_data(cid).own_slot)
                .as_set()
                .expect("own is a set")
                .clone();
            own_keys.extend(keyset(&own));
        }
        for k in keyset(&extent) {
            prop_assert!(
                own_keys.contains(&k),
                "extent member {k:?} not in any own extent"
            );
        }
    }

    /// A lazy includer sees inserts into its source immediately.
    #[test]
    fn lazy_propagation_from_source(seed in any::<u64>()) {
        let mut g = Gen::new(seed);
        let view = g.record_type(0, false);
        let mut scope = Vec::new();
        let src_e = g.class_term_public(&view, &mut scope, 0); // own-extent only
        let fresh_obj = g.term(&polyview_syntax::Mono::obj(view.clone()), &mut scope, 1);

        let mut m = Machine::new();
        let src = m.eval(&src_e).expect("source class");
        m.define_global("Src", src);
        let includer = m
            .eval(&b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Src")],
                    b::lam("x", b::v("x")),
                    b::lam("x", b::boolean(true)),
                )],
            ))
            .expect("includer");
        m.define_global("Inc", includer);

        let before_inc = as_int(&m.eval(&count_query("Inc")).expect("count"));
        let before_src = as_int(&m.eval(&count_query("Src")).expect("count"));
        prop_assert_eq!(before_inc, before_src, "identity include mirrors source");

        let o = m.eval(&fresh_obj).expect("object");
        m.define_global("o", o);
        m.eval(&b::insert(b::v("Src"), b::v("o"))).expect("insert");
        let after_inc = as_int(&m.eval(&count_query("Inc")).expect("count"));
        prop_assert_eq!(after_inc, before_inc + 1, "insert must propagate lazily");
    }
}

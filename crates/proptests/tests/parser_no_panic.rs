//! The parser must never panic: arbitrary byte soup either parses or
//! returns a positioned `ParseError`.

use polyview_parser::{parse_expr, parse_program};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_expr_total_on_arbitrary_strings(src in ".*") {
        let _ = parse_expr(&src);
    }

    #[test]
    fn parse_program_total_on_arbitrary_strings(src in ".*") {
        let _ = parse_program(&src);
    }

    #[test]
    fn parse_total_on_token_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "val", "fun", "let", "in", "end", "class", "include", "as",
                "where", "fn", "=>", "=", ":=", "(", ")", "[", "]", "{", "}",
                ",", ";", ".", "x", "42", "\"s\"", "query", "IDView", "fuse",
                "insert", "+", "-", "*", "if", "then", "else", "and",
            ]),
            0..30,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_program(&src);
    }
}

#[test]
fn adversarial_fragments_error_cleanly() {
    for src in [
        "", ";", "(", ")", "[", "]", "{", "}", "let", "let x", "let x =",
        "let x = 1 in", "fn", "fn =>", "class", "class end", "include",
        "val x = ", "fun f = 1", "x.", "x.1.2.", "extract(", "update(x,)",
        "1 +", "- -", "((((", "\"unterminated", "(* unterminated",
        ":=", "=>", "val class = 1", "let class A = 1 in A end",
        "relation [x = 1] from where true",
        "query(a, b, c)", "hom(a)", "IDView()",
    ] {
        match parse_program(src) {
            Ok(_) | Err(_) => {} // must simply not panic
        }
    }
}

#[test]
fn deeply_nested_input_is_handled() {
    // Reasonable nesting parses; adversarial nesting is *rejected* with a
    // clean error instead of recursing unboundedly. (The depth guard is
    // sized for ordinary stacks; debug-mode test threads are small, so the
    // deep case runs on a dedicated thread the size of a typical main
    // stack.)
    std::thread::Builder::new()
        .stack_size(8 * 1024 * 1024)
        .spawn(|| {
            let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
            assert!(parse_expr(&src).is_ok());
            let deep = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
            let err = parse_expr(&deep).expect_err("guarded");
            assert!(err.message.contains("nesting"), "got: {}", err.message);
        })
        .expect("spawn")
        .join()
        .expect("no panic");
}

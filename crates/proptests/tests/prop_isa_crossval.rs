//! Cross-validation of the E7 benchmark setup: on workloads expressible in
//! *both* systems (non-cyclic sharing, projection views, field-equality
//! predicates), the polyview calculus and the IS-A baseline must compute
//! the same shared extents — otherwise the benchmark would compare
//! different problems.

use polyview::Engine;
use polyview_isa::{FieldVal, IsaStore, Refresh};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One person: (name, age, is_female).
type Person = (String, i64, bool);

/// A random population split across two source classes.
fn population(seed: u64, n: usize) -> (Vec<Person>, Vec<Person>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mk = |rng: &mut StdRng, tag: &str, i: usize| {
        (
            format!("{tag}{i}"),
            rng.gen_range(16..70),
            rng.gen_bool(0.5),
        )
    };
    let staff = (0..n).map(|i| mk(&mut rng, "s", i)).collect();
    let students = (0..n).map(|i| mk(&mut rng, "t", i)).collect();
    (staff, students)
}

fn polyview_count(staff: &[(String, i64, bool)], students: &[(String, i64, bool)]) -> i64 {
    let mut engine = Engine::new();
    let objs = |rows: &[(String, i64, bool)]| {
        rows.iter()
            .map(|(n, a, f)| {
                format!(
                    "IDView([Name = \"{n}\", Age = {a}, Sex = \"{}\"])",
                    if *f { "female" } else { "male" }
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    engine
        .exec(&format!(
            "class Staff = class {{{}}} end;\n\
             class Student = class {{{}}} end;\n\
             class Female = class {{}}\n\
             include Staff as fn s => [Name = s.Name, Age = s.Age]\n\
             where fn s => query(fn x => x.Sex = \"female\", s)\n\
             include Student as fn s => [Name = s.Name, Age = s.Age]\n\
             where fn s => query(fn x => x.Sex = \"female\", s)\n\
             end;",
            objs(staff),
            objs(students)
        ))
        .expect("setup");
    engine
        .eval_to_string("cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), Female)")
        .expect("count")
        .parse()
        .expect("int")
}

fn isa_count(staff: &[(String, i64, bool)], students: &[(String, i64, bool)]) -> i64 {
    let mut st = IsaStore::new(Refresh::Eager);
    let staff_c = st.new_class("Staff", &[]);
    let student_c = st.new_class("Student", &[]);
    let insert = |st: &mut IsaStore, c, rows: &[(String, i64, bool)]| {
        for (n, a, f) in rows {
            st.insert(
                c,
                [
                    ("Name".to_string(), FieldVal::str(n.clone())),
                    ("Age".to_string(), FieldVal::Int(*a)),
                    (
                        "Sex".to_string(),
                        FieldVal::str(if *f { "female" } else { "male" }),
                    ),
                ],
            );
        }
    };
    insert(&mut st, staff_c, staff);
    insert(&mut st, student_c, students);
    let female = st.define_shared_class(
        "Female",
        &[staff_c, student_c],
        |r| r.get("Sex").and_then(FieldVal::as_str) == Some("female"),
        |r| r.project(&["Name", "Age"]),
    );
    st.count(female) as i64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The two systems agree on the shared extent for the common fragment.
    #[test]
    fn shared_extents_agree(seed in any::<u64>(), n in 1usize..12) {
        let (staff, students) = population(seed, n);
        let expected: i64 = staff.iter().chain(&students).filter(|(_, _, f)| *f).count() as i64;
        prop_assert_eq!(polyview_count(&staff, &students), expected);
        prop_assert_eq!(isa_count(&staff, &students), expected);
    }

    /// Updates propagate equivalently: flipping one person's Sex changes
    /// both systems' counts identically.
    #[test]
    fn update_propagation_agrees(seed in any::<u64>(), n in 1usize..8) {
        let (staff, students) = population(seed, n);

        // polyview: mutable Sex field this time.
        let mut engine = Engine::new();
        let objs = |rows: &[(String, i64, bool)]| {
            rows.iter()
                .map(|(nm, a, f)| {
                    format!(
                        "IDView([Name = \"{nm}\", Age = {a}, Sex := \"{}\"])",
                        if *f { "female" } else { "male" }
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        engine
            .exec(&format!(
                "class Staff = class {{{}}} end;\n\
                 class Female = class {{}}\n\
                 include Staff as fn s => [Name = s.Name]\n\
                 where fn s => query(fn x => x.Sex = \"female\", s)\n\
                 end;",
                objs(&staff)
            ))
            .expect("setup");
        let _ = students;
        // Flip s0 to female through a class query (view update).
        engine
            .exec(
                "cquery(fn s => map(fn o => query(fn x => \
                 if x.Name = \"s0\" then update(x, Sex, \"female\") else (), o), s), Staff);",
            )
            .expect("flip");
        let pv: i64 = engine
            .eval_to_string("cquery(fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0), Female)")
            .expect("count")
            .parse()
            .expect("int");

        // isa baseline, same flip.
        let mut st = IsaStore::new(Refresh::Eager);
        let staff_c = st.new_class("Staff", &[]);
        let mut oid0 = None;
        for (nm, a, f) in &staff {
            let oid = st.insert(
                staff_c,
                [
                    ("Name".to_string(), FieldVal::str(nm.clone())),
                    ("Age".to_string(), FieldVal::Int(*a)),
                    (
                        "Sex".to_string(),
                        FieldVal::str(if *f { "female" } else { "male" }),
                    ),
                ],
            );
            if nm == "s0" {
                oid0 = Some(oid);
            }
        }
        let female = st.define_shared_class(
            "Female",
            &[staff_c],
            |r| r.get("Sex").and_then(FieldVal::as_str) == Some("female"),
            |r| r.project(&["Name"]),
        );
        st.update(staff_c, oid0.expect("s0 exists"), "Sex", FieldVal::str("female"));
        let isa = st.count(female) as i64;

        let expected =
            staff.iter().filter(|(nm, _, f)| *f || nm == "s0").count() as i64;
        prop_assert_eq!(pv, expected, "polyview count");
        prop_assert_eq!(isa, expected, "isa count");
    }
}

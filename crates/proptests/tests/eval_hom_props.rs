//! Property-based `hom` semantics (moved from `crates/eval/tests/
//! hom_semantics.rs` so the eval crate carries no proptest dependency):
//! determinism over canonical order and the definability claims of
//! Section 2 (member/map/filter/prod from union/hom).

use polyview_eval::Machine;
use polyview_syntax::builder as b;
use polyview_syntax::{sugar, Expr};
use proptest::prelude::*;

fn eval_show(e: &Expr) -> String {
    let mut m = Machine::new();
    let v = m.eval(e).expect("evaluation succeeds");
    m.show(&v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// hom with a non-commutative operator is deterministic across element
    /// insertion orders (sets are canonical).
    #[test]
    fn deterministic_across_insertion_orders(mut xs in prop::collection::vec(-50i64..50, 0..8)) {
        let fold = |elems: &[i64]| {
            b::hom(
                Expr::set(elems.iter().map(|n| b::int(*n))),
                b::lam("x", b::v("x")),
                b::lam("a", b::lam("acc", b::sub(b::v("a"), b::v("acc")))),
                b::int(0),
            )
        };
        let r1 = eval_show(&fold(&xs));
        xs.reverse();
        let r2 = eval_show(&fold(&xs));
        prop_assert_eq!(r1, r2);
    }

    /// sum via hom equals the native sum of the deduplicated elements.
    #[test]
    fn sum_matches_reference(xs in prop::collection::vec(-50i64..50, 0..10)) {
        let expected: i64 = xs
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .sum();
        let e = b::hom(
            Expr::set(xs.iter().map(|n| b::int(*n))),
            b::lam("x", b::v("x")),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        );
        prop_assert_eq!(eval_show(&e), expected.to_string());
    }

    /// The paper's definability claims: member/map/filter from union+hom
    /// agree with reference implementations.
    #[test]
    fn derived_ops_match_reference(
        xs in prop::collection::vec(-20i64..20, 0..8),
        probe in -20i64..20,
    ) {
        let dedup: std::collections::BTreeSet<i64> = xs.iter().copied().collect();
        let set_e = Expr::set(xs.iter().map(|n| b::int(*n)));

        let member = sugar::member(b::int(probe), set_e.clone());
        prop_assert_eq!(eval_show(&member), dedup.contains(&probe).to_string());

        let mapped = sugar::map(b::lam("x", b::mul(b::v("x"), b::int(3))), set_e.clone());
        let expected: std::collections::BTreeSet<i64> =
            dedup.iter().map(|n| n * 3).collect();
        let shown = eval_show(&mapped);
        let expected_shown = format!(
            "{{{}}}",
            expected.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(shown, expected_shown);

        let filtered = sugar::filter(b::lam("x", b::gt(b::v("x"), b::int(0))), set_e);
        let expected: std::collections::BTreeSet<i64> =
            dedup.iter().copied().filter(|n| *n > 0).collect();
        let expected_shown = format!(
            "{{{}}}",
            expected.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
        );
        prop_assert_eq!(eval_show(&filtered), expected_shown);
    }

    /// prod cardinality = product of deduplicated cardinalities.
    #[test]
    fn prod_cardinality(
        xs in prop::collection::vec(0i64..6, 0..5),
        ys in prop::collection::vec(0i64..6, 0..5),
    ) {
        let nx = xs.iter().collect::<std::collections::BTreeSet<_>>().len();
        let ny = ys.iter().collect::<std::collections::BTreeSet<_>>().len();
        let e = sugar::prod2(
            Expr::set(xs.iter().map(|n| b::int(*n))),
            Expr::set(ys.iter().map(|n| b::int(*n))),
        );
        let mut m = Machine::new();
        let v = m.eval(&e).expect("eval");
        prop_assert_eq!(v.as_set().expect("set").len(), nx * ny);
    }
}

//! Properties of the set semantics chosen in Section 3.1: sets identify
//! objects up to `objeq`, union is associative/idempotent on keys and
//! left-biased on representatives.

use polyview_eval::value::{ObjVal, RecordVal, ViewFn};
use polyview_eval::{Key, SetVal, Value};
use polyview_syntax::Layout;
use proptest::prelude::*;
use std::rc::Rc;

/// Build a value from a compact descriptor: ints are base values, (raw id,
/// obj id) pairs are objects (same raw ⇒ objeq-identified).
#[derive(Clone, Debug)]
enum Elem {
    Int(i64),
    Obj { raw: u64, assoc: u64 },
}

fn value(e: &Elem) -> Value {
    match e {
        Elem::Int(n) => Value::Int(*n),
        Elem::Obj { raw, assoc } => Value::Obj(Rc::new(ObjVal {
            id: *assoc,
            raw: Value::Record(Rc::new(RecordVal {
                id: *raw,
                layout: Rc::new(Layout::new([])),
                slots: Vec::new(),
            })),
            view: ViewFn::Identity,
        })),
    }
}

fn elem_strategy() -> impl Strategy<Value = Elem> {
    prop_oneof![
        (-20i64..20).prop_map(Elem::Int),
        (0u64..6, 0u64..1000).prop_map(|(raw, assoc)| Elem::Obj { raw, assoc }),
    ]
}

fn set_of(elems: &[Elem]) -> SetVal {
    SetVal::from_elems(elems.iter().map(value))
}

fn keys(s: &SetVal) -> Vec<Key> {
    s.0.keys().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Key sets of unions are unions of key sets (order-insensitive).
    #[test]
    fn union_key_sets_are_set_union(
        a in prop::collection::vec(elem_strategy(), 0..10),
        b in prop::collection::vec(elem_strategy(), 0..10),
    ) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        let u = sa.union_left(&sb);
        let mut expected: Vec<Key> = keys(&sa);
        for k in keys(&sb) {
            if !expected.contains(&k) {
                expected.push(k);
            }
        }
        expected.sort();
        prop_assert_eq!(keys(&u), expected);
    }

    /// Union is associative on keys and representatives.
    #[test]
    fn union_is_associative(
        a in prop::collection::vec(elem_strategy(), 0..8),
        b in prop::collection::vec(elem_strategy(), 0..8),
        c in prop::collection::vec(elem_strategy(), 0..8),
    ) {
        let (sa, sb, sc) = (set_of(&a), set_of(&b), set_of(&c));
        let left = sa.union_left(&sb).union_left(&sc);
        let right = sa.union_left(&sb.union_left(&sc));
        prop_assert_eq!(keys(&left), keys(&right));
        // Left bias makes representatives agree too.
        for (k, v) in left.0.iter() {
            prop_assert!(v.value_eq(&right.0[k]));
        }
    }

    /// Union is idempotent.
    #[test]
    fn union_is_idempotent(a in prop::collection::vec(elem_strategy(), 0..10)) {
        let sa = set_of(&a);
        let u = sa.union_left(&sa);
        prop_assert_eq!(keys(&u), keys(&sa));
    }

    /// Left bias: on key collision the left representative survives.
    #[test]
    fn union_is_left_biased(
        a in prop::collection::vec(elem_strategy(), 0..10),
        b in prop::collection::vec(elem_strategy(), 0..10),
    ) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        let u = sa.union_left(&sb);
        for (k, v) in sa.0.iter() {
            prop_assert!(u.0[k].value_eq(v), "left element replaced for key {k:?}");
        }
    }

    /// Objects with the same raw record collapse to one element whose
    /// representative is the first inserted.
    #[test]
    fn objeq_collapse_keeps_first(assocs in prop::collection::vec(0u64..1000, 1..8)) {
        let elems: Vec<Elem> = assocs
            .iter()
            .map(|&assoc| Elem::Obj { raw: 42, assoc })
            .collect();
        let s = set_of(&elems);
        prop_assert_eq!(s.len(), 1);
        let kept = s.values().next().expect("one");
        prop_assert!(kept.value_eq(&value(&elems[0])));
    }

    /// Difference removes exactly the common keys.
    #[test]
    fn difference_complements_union(
        a in prop::collection::vec(elem_strategy(), 0..10),
        b in prop::collection::vec(elem_strategy(), 0..10),
    ) {
        let (sa, sb) = (set_of(&a), set_of(&b));
        let d = sa.difference(&sb);
        for k in keys(&d) {
            prop_assert!(sa.contains_key(&k));
            prop_assert!(!sb.contains_key(&k));
        }
        for k in keys(&sa) {
            if !sb.contains_key(&k) {
                prop_assert!(d.contains_key(&k));
            }
        }
    }

    /// Set values compare by element keys: permutations are equal.
    #[test]
    fn sets_equal_up_to_permutation(mut elems in prop::collection::vec(elem_strategy(), 0..10)) {
        let s1 = Value::Set(set_of(&elems));
        elems.reverse();
        let s2 = Value::Set(set_of(&elems));
        // NOTE: with objeq collapse, reversing may keep a *different*
        // representative, but keys still agree, so eq holds.
        prop_assert!(s1.value_eq(&s2));
    }
}

//! Prop. 5: the recursive extent computation terminates — there is no
//! infinite calling sequence of the `f^i` functions. We test it over
//! random class graphs far beyond the paper's ring example: arbitrary
//! include digraphs, including self-loops, diamonds and dense graphs.

mod common;

use polyview_eval::{Machine, RuntimeError, Value};
use polyview_syntax::builder as b;
use polyview_syntax::{ClassDef, Expr, IncludeClause, Label};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a `let class RC0 = … and … in count(RC0) end` program whose
/// include edges are exactly `edges` (i → j means class i includes class
/// j), with `own[i]` fresh objects in class i's own extent.
fn class_graph_program(k: usize, edges: &[(usize, usize)], own: &[usize]) -> Expr {
    let obj = |tag: i64| {
        b::id_view(b::record([b::imm("n", b::int(tag))]))
    };
    let mut next_tag = 0i64;
    let binds: Vec<(Label, ClassDef)> = (0..k)
        .map(|i| {
            let own_objs: Vec<Expr> = (0..own[i])
                .map(|_| {
                    next_tag += 1;
                    obj(next_tag)
                })
                .collect();
            let includes: Vec<IncludeClause> = edges
                .iter()
                .filter(|(from, _)| *from == i)
                .map(|(_, to)| IncludeClause {
                    sources: vec![Expr::var(format!("RC{to}").as_str())],
                    view: b::lam("x", b::v("x")),
                    pred: b::lam("x", b::boolean(true)),
                })
                .collect();
            (
                Label::new(format!("RC{i}")),
                ClassDef {
                    own: Box::new(Expr::set(own_objs)),
                    includes,
                },
            )
        })
        .collect();
    let count = b::cquery(
        b::lam(
            "s",
            b::hom(
                b::v("s"),
                b::lam("x", b::int(1)),
                b::lam("a", b::lam("bb", b::add(b::v("a"), b::v("bb")))),
                b::int(0),
            ),
        ),
        b::v("RC0"),
    );
    Expr::LetClasses(binds, Box::new(count))
}

/// Run with a fuel bound; termination means the bound is never the error.
fn run_bounded(e: &Expr, fuel: u64) -> Result<Value, RuntimeError> {
    let mut m = Machine::with_fuel(fuel);
    m.eval(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random include digraphs (with self-loops and cycles): extent
    /// computation terminates and yields a count bounded by the total
    /// number of objects.
    #[test]
    fn random_class_graphs_terminate(
        seed in any::<u64>(),
        k in 1usize..7,
        density in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if rng.gen_bool(density) {
                    edges.push((i, j)); // self-loops allowed
                }
            }
        }
        let own: Vec<usize> = (0..k).map(|_| rng.gen_range(0..3)).collect();
        let total: usize = own.iter().sum();
        let e = class_graph_program(k, &edges, &own);
        match run_bounded(&e, 5_000_000) {
            Ok(Value::Int(n)) => {
                prop_assert!(n >= own[0] as i64, "count below own extent");
                prop_assert!(n <= total as i64, "count {} exceeds {} objects", n, total);
            }
            Ok(other) => prop_assert!(false, "unexpected result {other:?}"),
            Err(RuntimeError::FuelExhausted) => {
                prop_assert!(false, "extent computation failed to terminate (k={k}, {} edges)", edges.len())
            }
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// In a fully connected graph where everything includes everything
    /// (identity views, true predicates), every class sees every object.
    #[test]
    fn complete_graphs_reach_all_objects(seed in any::<u64>(), k in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..k {
            for j in 0..k {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let own: Vec<usize> = (0..k).map(|_| rng.gen_range(1..3)).collect();
        let total: usize = own.iter().sum();
        let e = class_graph_program(k, &edges, &own);
        match run_bounded(&e, 20_000_000) {
            Ok(Value::Int(n)) => prop_assert_eq!(n as usize, total),
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Extent computation is deterministic: two queries agree.
    #[test]
    fn extent_queries_are_repeatable(seed in any::<u64>(), k in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for i in 0..k {
            let j = rng.gen_range(0..k);
            edges.push((i, j));
        }
        let own: Vec<usize> = (0..k).map(|_| rng.gen_range(0..3)).collect();
        let e = class_graph_program(k, &edges, &own);
        let r1 = run_bounded(&e, 5_000_000).map(|v| format!("{v:?}"));
        let r2 = run_bounded(&e, 5_000_000).map(|v| format!("{v:?}"));
        prop_assert_eq!(r1.is_ok(), r2.is_ok());
    }
}

#[test]
fn ring_extent_contains_all_members_regardless_of_size() {
    // Deterministic rings up to size 16: class 0's extent reaches every
    // object; the visited set guarantees each f^i is entered at most once
    // per path (|L| strictly grows — the proof of Prop. 5).
    for k in 1..=16 {
        let edges: Vec<(usize, usize)> = (0..k).map(|i| (i, (i + 1) % k)).collect();
        let own: Vec<usize> = vec![1; k];
        let e = class_graph_program(k, &edges, &own);
        match run_bounded(&e, 50_000_000) {
            Ok(Value::Int(n)) => assert_eq!(n as usize, k, "ring of {k}"),
            other => panic!("ring of {k}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn diamond_sharing_counts_objects_once() {
    // D includes B and C (separately); B and C both include A: A's object
    // must appear once in D's extent, not twice (objeq collapse).
    let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
    let own = vec![0, 0, 0, 1];
    let e = class_graph_program(4, &edges, &own);
    match run_bounded(&e, 5_000_000) {
        Ok(Value::Int(n)) => assert_eq!(n, 1),
        other => panic!("unexpected outcome {other:?}"),
    }
}

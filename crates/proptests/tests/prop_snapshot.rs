//! Snapshot round-trip properties (DESIGN.md §17): for randomized
//! sessions — classes, inserts, shared objects, vals, funs — an engine
//! restored from `snapshot()` is observationally identical to the
//! original:
//!
//! * every class renders the same extent;
//! * `env_epoch` and every declared name's epoch and scheme agree;
//! * object *sharing* survives: a record inserted into several classes
//!   (or reachable through a global and an extent) is still one record —
//!   mutating through one handle is visible through every other, exactly
//!   as on the original.

use polyview::Engine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A randomly generated session: the statements plus what they declared.
struct Session {
    stmts: Vec<String>,
    classes: Vec<String>,
    /// Globals bound to objects that were also inserted into ≥1 class —
    /// the sharing probes.
    shared: Vec<String>,
    /// Every top-level name declared, for epoch/scheme comparison.
    names: Vec<String>,
}

fn gen_session(seed: u64, len: usize) -> Session {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Session {
        stmts: Vec::new(),
        classes: Vec::new(),
        shared: Vec::new(),
        names: Vec::new(),
    };
    // Always at least one class, so inserts and renders have a target.
    s.stmts.push("class C0 = class {} end;".to_string());
    s.classes.push("C0".to_string());
    s.names.push("C0".to_string());
    let mut fresh = 0usize;
    for _ in 0..len {
        match rng.gen_range(0..6u8) {
            0 => {
                let c = format!("C{}", s.classes.len());
                s.stmts.push(format!("class {c} = class {{}} end;"));
                s.classes.push(c.clone());
                s.names.push(c);
            }
            1 | 2 => {
                let c = &s.classes[rng.gen_range(0..s.classes.len())];
                let pay: i64 = rng.gen_range(0..1000);
                s.stmts.push(format!(
                    "insert({c}, IDView([Name = \"n{fresh}\", Salary := {pay}]))"
                ));
                fresh += 1;
            }
            3 => {
                // A shared object: bound globally *and* inserted into one
                // or two classes — the same raw record reachable through
                // several handles.
                let o = format!("o{}", s.shared.len());
                let pay: i64 = rng.gen_range(0..1000);
                s.stmts.push(format!(
                    "val {o} = IDView([Name = \"{o}\", Salary := {pay}]);"
                ));
                for _ in 0..rng.gen_range(1..3usize) {
                    let c = &s.classes[rng.gen_range(0..s.classes.len())];
                    s.stmts.push(format!("insert({c}, {o})"));
                }
                s.shared.push(o.clone());
                s.names.push(o);
            }
            4 => {
                let v = format!("v{fresh}");
                let (a, b): (i64, i64) = (rng.gen_range(0..100), rng.gen_range(0..100));
                s.stmts.push(format!("val {v} = {a} + {b};"));
                s.names.push(v);
                fresh += 1;
            }
            _ => {
                let f = format!("f{fresh}");
                let k: i64 = rng.gen_range(1..50);
                s.stmts.push(format!("fun {f} x = x + {k};"));
                s.names.push(f);
                fresh += 1;
            }
        }
    }
    s
}

fn run_session(s: &Session) -> Engine {
    let mut e = Engine::new();
    e.load_prelude().expect("prelude");
    for stmt in &s.stmts {
        e.exec(stmt).expect("session statement executes");
    }
    e
}

fn render_extent(e: &mut Engine, class: &str) -> String {
    e.eval_to_string(&format!(
        "cquery(fn s => map(fn o => query(fn x => x.Salary, o), s), {class})"
    ))
    .expect("extent renders")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// snapshot → restore is the identity on everything a session can
    /// observe: extents, epochs, schemes.
    #[test]
    fn snapshot_roundtrip_is_observationally_identity(
        seed in any::<u64>(),
        len in 3usize..16,
    ) {
        let session = gen_session(seed, len);
        let mut orig = run_session(&session);
        let mut restored = Engine::from_snapshot(&orig.snapshot()).expect("snapshot decodes");

        prop_assert_eq!(restored.env_epoch(), orig.env_epoch(), "env epoch");
        for name in &session.names {
            prop_assert_eq!(
                restored.name_epoch(name),
                orig.name_epoch(name),
                "epoch of {}", name
            );
            prop_assert_eq!(
                restored.scheme_of(name).map(|s| s.to_string()),
                orig.scheme_of(name).map(|s| s.to_string()),
                "scheme of {}", name
            );
        }
        for class in &session.classes {
            prop_assert_eq!(
                render_extent(&mut restored, class),
                render_extent(&mut orig, class),
                "extent of {}", class
            );
        }
    }

    /// Sharing survives the round trip: mutating a shared object through
    /// its global handle changes every extent it appears in, identically
    /// on the original and the restored engine.
    #[test]
    fn snapshot_roundtrip_preserves_object_sharing(
        seed in any::<u64>(),
        len in 4usize..16,
        bump in 1000i64..9999,
    ) {
        let session = gen_session(seed, len);
        prop_assume!(!session.shared.is_empty());
        let mut orig = run_session(&session);
        let mut restored = Engine::from_snapshot(&orig.snapshot()).expect("snapshot decodes");

        for (i, o) in session.shared.iter().enumerate() {
            let mutate = format!("query(fn x => update(x, Salary, {}), {o})", bump + i as i64);
            orig.exec(&mutate).expect("mutate original");
            restored.exec(&mutate).expect("mutate restored");
        }
        // If the restore had copied instead of shared, the restored
        // extents would still show the old salaries while the original's
        // show the bump — the renders would diverge.
        for class in &session.classes {
            prop_assert_eq!(
                render_extent(&mut restored, class),
                render_extent(&mut orig, class),
                "post-mutation extent of {}", class
            );
        }
        let seen = session
            .classes
            .iter()
            .map(|c| render_extent(&mut orig, c))
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert!(
            seen.contains(&bump.to_string()),
            "some extent must witness the mutation through the shared record: {}", seen
        );
    }
}

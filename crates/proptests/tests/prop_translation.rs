//! Props. 3 and 4 as properties over *generated* programs: the translation
//! eliminates the extended constructs, re-typechecks, and produces the same
//! observable results as the native evaluator. Prop. 5 as a property over
//! generated recursive class rings: extent computation terminates (bounded
//! fuel suffices) on both paths.

mod common;

use common::Gen;
use polyview_eval::Machine;
use polyview_trans::{classes, translate, views};
use polyview_types::{builtins_sig, infer, Infer};
use proptest::prelude::*;

fn run_native(e: &polyview_syntax::Expr) -> Result<String, polyview_eval::RuntimeError> {
    let mut m = Machine::new();
    m.eval(e).map(|v| m.show(&v))
}

fn run_translated(e: &polyview_syntax::Expr) -> Result<String, polyview_eval::RuntimeError> {
    let t = translate(e);
    assert!(
        !classes::has_class_constructs(&t) && !views::has_view_constructs(&t),
        "translation left extended constructs: {e}"
    );
    let mut m = Machine::new();
    m.eval(&t).map(|v| m.show(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Prop. 3/4 (typing side): translations of generated programs remain
    /// well-typed in the smaller language.
    #[test]
    fn translations_remain_well_typed(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let t = translate(&e);
        let mut cx = Infer::new();
        let mut env = builtins_sig::builtin_env();
        infer::infer_resolved(&mut cx, &mut env, &t)
            .unwrap_or_else(|err| panic!("translated program ill-typed ({err})\nsource: {e}\ntranslated: {t}"));
    }

    /// Semantic agreement on observable results (the translation is an
    /// effective implementation algorithm).
    #[test]
    fn translation_agrees_with_native(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let native = run_native(&e);
        let translated = run_translated(&e);
        prop_assert_eq!(native.ok(), translated.ok(), "disagreement on {}", e);
    }

    /// Same agreement for the class layer (Fig. 5 translation with the
    /// objeq-collapsing union).
    #[test]
    fn class_translation_agrees_with_native(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.class_program(depth);
        let native = run_native(&e);
        let translated = run_translated(&e);
        prop_assert_eq!(native.ok(), translated.ok(), "disagreement on {}", e);
    }

    /// Prop. 5: recursive class rings of arbitrary size terminate on both
    /// paths, and agree.
    #[test]
    fn recursive_rings_terminate_and_agree(seed in any::<u64>(), k in 1usize..6) {
        let mut g = Gen::new(seed);
        let (e, _) = g.recursive_ring_program(k, 1);
        // Native with a fuel cap: termination means the cap is not hit.
        let native = {
            let mut m = Machine::with_fuel(2_000_000);
            m.eval(&e).map(|v| m.show(&v))
        };
        prop_assert!(native.is_ok(), "native diverged or failed: {:?}", native);
        let translated = {
            let t = translate(&e);
            let mut m = Machine::with_fuel(20_000_000);
            m.eval(&t).map(|v| m.show(&v))
        };
        prop_assert_eq!(native.ok(), translated.ok(), "disagreement on ring k={}", k);
    }
}

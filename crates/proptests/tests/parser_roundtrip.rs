//! Pretty-printer ↔ parser round-trips: `parse(display(e)) == e` for the
//! whole term language (excluding internal `#`-prefixed binders introduced
//! by desugaring, which deliberately cannot be written in source).

use polyview_parser::parse_expr;
use polyview_syntax::builder as b;
use polyview_syntax::{ClassDef, Expr, IncludeClause};
use proptest::prelude::*;

fn roundtrip(e: &Expr) {
    let shown = e.to_string();
    let parsed = parse_expr(&shown)
        .unwrap_or_else(|err| panic!("display not parseable ({err}): {shown}"));
    assert_eq!(&parsed, e, "round-trip mismatch through: {shown}");
}

#[test]
fn literals_roundtrip() {
    roundtrip(&b::int(42));
    roundtrip(&b::int(-42));
    roundtrip(&b::boolean(true));
    roundtrip(&b::str("hello\nworld"));
    roundtrip(&b::unit());
}

#[test]
fn core_forms_roundtrip() {
    roundtrip(&b::lam("x", b::app(b::v("f"), b::v("x"))));
    roundtrip(&b::let_("x", b::int(1), b::v("x")));
    roundtrip(&b::if_(b::boolean(true), b::int(1), b::int(2)));
    roundtrip(&Expr::fix("f", b::lam("n", b::app(b::v("f"), b::v("n")))));
    roundtrip(&b::eq(b::int(1), b::int(2)));
    roundtrip(&b::record([
        b::imm("Name", b::str("Joe")),
        b::mt("Salary", b::int(2000)),
    ]));
    roundtrip(&b::dot(b::v("r"), "Name"));
    roundtrip(&b::extract(b::v("r"), "Salary"));
    roundtrip(&b::update(b::v("r"), "Salary", b::int(1)));
    roundtrip(&b::set([b::int(1), b::int(2)]));
    roundtrip(&b::union(b::empty(), b::set([b::int(1)])));
    roundtrip(&b::hom(
        b::v("s"),
        b::lam("x", b::v("x")),
        b::lam("a", b::lam("b", b::v("a"))),
        b::int(0),
    ));
    roundtrip(&Expr::pair(b::int(1), b::str("x")));
    roundtrip(&Expr::proj(b::v("p"), 1));
}

#[test]
fn view_forms_roundtrip() {
    roundtrip(&b::id_view(b::record([b::imm("a", b::int(1))])));
    roundtrip(&b::as_view(b::v("o"), b::lam("x", b::v("x"))));
    roundtrip(&b::query(b::lam("x", b::dot(b::v("x"), "a")), b::v("o")));
    roundtrip(&b::fuse(b::v("o1"), b::v("o2")));
    roundtrip(&b::relobj([("l", b::v("o1")), ("r", b::v("o2"))]));
}

#[test]
fn class_forms_roundtrip() {
    roundtrip(&b::class(b::empty(), vec![]));
    roundtrip(&b::class(
        b::set([b::v("o")]),
        vec![b::include(
            vec![b::v("Src")],
            b::lam("s", b::v("s")),
            b::lam("s", b::boolean(true)),
        )],
    ));
    roundtrip(&b::cquery(b::lam("s", b::v("s")), b::v("C")));
    roundtrip(&b::insert(b::v("C"), b::v("o")));
    roundtrip(&b::delete(b::v("C"), b::v("o")));
    roundtrip(&b::let_classes(
        vec![
            (
                "A",
                b::class(
                    b::empty(),
                    vec![b::include(
                        vec![b::v("B")],
                        b::lam("x", b::v("x")),
                        b::lam("x", b::boolean(true)),
                    )],
                ),
            ),
            ("B", b::class(b::empty(), vec![])),
        ],
        b::cquery(b::lam("s", b::v("s")), b::v("A")),
    ));
}

#[test]
fn multi_source_include_roundtrips() {
    roundtrip(&b::class(
        b::empty(),
        vec![IncludeClause {
            sources: vec![b::v("A"), b::v("B")],
            view: b::lam("p", b::dot(Expr::proj(b::v("p"), 1), "Name")),
            pred: b::lam("p", b::boolean(true)),
        }],
    ));
}

#[test]
fn nested_classes_in_let_roundtrip() {
    let inner = Expr::ClassExpr(ClassDef {
        own: Box::new(b::empty()),
        includes: vec![],
    });
    roundtrip(&b::let_("C", inner, b::v("C")));
}

// Property: round-trip over generated programs (skipping any that contain
// unprintable internal binders from desugared forms).
#[path = "../../../tests/common/mod.rs"]
mod gencommon;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_programs_roundtrip(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = gencommon::Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let shown = e.to_string();
        prop_assume!(!shown.contains('#'));
        let parsed = parse_expr(&shown)
            .unwrap_or_else(|err| panic!("display not parseable ({err}): {shown}"));
        prop_assert_eq!(parsed, e, "round-trip mismatch through: {}", shown);
    }

    #[test]
    fn generated_class_programs_roundtrip(seed in any::<u64>(), depth in 1usize..3) {
        let mut g = gencommon::Gen::new(seed);
        let (e, _) = g.class_program(depth);
        let shown = e.to_string();
        prop_assume!(!shown.contains('#'));
        let parsed = parse_expr(&shown)
            .unwrap_or_else(|err| panic!("display not parseable ({err}): {shown}"));
        prop_assert_eq!(parsed, e, "round-trip mismatch through: {}", shown);
    }
}

//! Shared test infrastructure: a generator of **well-typed-by-construction
//! programs** covering all three layers of the calculus. Used by the
//! property-based tests for Props. 1–5.
//!
//! The generator is deterministic in its seed so failures reproduce. It
//! deliberately avoids two things:
//!
//! * the `div`/`imod` builtins (division by zero is a legitimate runtime
//!   failure outside the type-soundness statement), and `fix` (generated
//!   programs always terminate, so Prop. 1 runs need no fuel);
//! * constructing two *distinct view associations over one raw object*
//!   outside the class layer, where the translated path cannot collapse
//!   them (the one documented divergence from the native objeq-collapsing
//!   set semantics; the class layer implements the collapse in both paths
//!   and is fully exercised).

#![allow(dead_code)]

use polyview_syntax::{Expr, Field, FieldTy, Label, Mono, Name};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub struct Gen {
    rng: StdRng,
    fresh: u32,
}

/// Scoped variables available to generated terms.
pub type Scope = Vec<(Name, Mono)>;

impl Gen {
    pub fn new(seed: u64) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(seed),
            fresh: 0,
        }
    }

    fn name(&mut self, base: &str) -> Name {
        self.fresh += 1;
        Label::new(format!("{base}{}", self.fresh))
    }

    fn pick(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    fn flip(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    // ---------- types ----------

    /// A random ground type (no obj/class/function components): the types
    /// record fields may carry.
    pub fn ground_type(&mut self, depth: usize) -> Mono {
        if depth == 0 {
            return match self.pick(3) {
                0 => Mono::int(),
                1 => Mono::bool(),
                _ => Mono::str(),
            };
        }
        match self.pick(5) {
            0 => Mono::int(),
            1 => Mono::bool(),
            2 => Mono::str(),
            3 => Mono::set(self.ground_type(depth - 1)),
            _ => self.record_type(depth - 1, false),
        }
    }

    /// A ground record type with 1–4 fields; `with_mutables` allows `:=`
    /// fields.
    pub fn record_type(&mut self, depth: usize, with_mutables: bool) -> Mono {
        let n = 1 + self.pick(4);
        let mut fields = std::collections::BTreeMap::new();
        for i in 0..n {
            let mutable = with_mutables && self.flip();
            // Mutable fields keep base types so updates are easy to
            // generate.
            let ty = if mutable {
                self.ground_type(0)
            } else {
                self.ground_type(depth)
            };
            fields.insert(Label::new(format!("f{i}")), FieldTy { mutable, ty });
        }
        Mono::Record(fields)
    }

    /// A view type for objects: a record, possibly with mutable fields.
    pub fn view_type(&mut self) -> Mono {
        self.record_type(1, true)
    }

    // ---------- terms ----------

    /// A term of the given ground/record type under `scope`.
    pub fn term(&mut self, ty: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        // Reuse a scoped variable of the right type ~25% of the time.
        if !scope.is_empty() && self.rng.gen_bool(0.25) {
            let hits: Vec<usize> = scope
                .iter()
                .enumerate()
                .filter(|(_, (_, t))| t == ty)
                .map(|(i, _)| i)
                .collect();
            if !hits.is_empty() {
                let i = hits[self.pick(hits.len())];
                return Expr::Var(scope[i].0.clone());
            }
        }
        match ty {
            Mono::Base(b) => match b {
                polyview_syntax::BaseTy::Int => self.int_term(scope, depth),
                polyview_syntax::BaseTy::Bool => self.bool_term(scope, depth),
                polyview_syntax::BaseTy::Str => self.str_term(scope, depth),
            },
            Mono::Unit => self.unit_term(scope, depth),
            Mono::Set(elem) => self.set_term(elem, scope, depth),
            Mono::Record(_) => self.record_term(ty, scope, depth),
            Mono::Obj(view) => self.obj_term(view, scope, depth),
            Mono::Class(view) => self.class_term(view, scope, depth),
            Mono::Arrow(a, r) => {
                let x = self.name("p");
                scope.push(((x.clone()), (**a).clone()));
                let body = self.term(r, scope, depth.saturating_sub(1));
                scope.pop();
                Expr::lam(x, body)
            }
            Mono::Var(_) | Mono::LVal(_) => {
                unreachable!("generator never targets variables or L-value types")
            }
        }
    }

    fn int_term(&mut self, scope: &mut Scope, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::int(self.rng.gen_range(-50..50));
        }
        match self.pick(7) {
            0 => Expr::int(self.rng.gen_range(-50..50)),
            1 => {
                let op = ["add", "sub", "mul"][self.pick(3)];
                Expr::apps(
                    Expr::var(op),
                    [
                        self.int_term(scope, depth - 1),
                        self.int_term(scope, depth - 1),
                    ],
                )
            }
            2 => {
                let c = self.bool_term(scope, depth - 1);
                Expr::if_(
                    c,
                    self.int_term(scope, depth - 1),
                    self.int_term(scope, depth - 1),
                )
            }
            3 => self.let_wrap(&Mono::int(), scope, depth),
            4 => {
                // Project an int field out of an inline record.
                let rec_ty = self.record_with_field(Mono::int(), "pick");
                let rec = self.record_term(&rec_ty, scope, depth - 1);
                Expr::dot(rec, "pick")
            }
            5 => {
                // Query an object's int field.
                let view = self.record_with_field(Mono::int(), "q");
                let o = self.obj_term(&view, scope, depth - 1);
                Expr::query(Expr::lam("x", Expr::dot(Expr::var("x"), "q")), o)
            }
            _ => {
                // Sum a set via hom.
                let s = self.set_term(&Mono::int(), scope, depth - 1);
                Expr::hom(
                    s,
                    Expr::lam("x", Expr::var("x")),
                    Expr::lam(
                        "a",
                        Expr::lam("b", Expr::apps(Expr::var("add"), [Expr::var("a"), Expr::var("b")])),
                    ),
                    Expr::int(0),
                )
            }
        }
    }

    fn bool_term(&mut self, scope: &mut Scope, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::bool(self.flip());
        }
        match self.pick(6) {
            0 => Expr::bool(self.flip()),
            1 => {
                let t = self.ground_type(1);
                Expr::eq(
                    self.term(&t, scope, depth - 1),
                    self.term(&t, scope, depth - 1),
                )
            }
            2 => Expr::apps(
                Expr::var(["lt", "le", "gt", "ge"][self.pick(4)]),
                [
                    self.int_term(scope, depth - 1),
                    self.int_term(scope, depth - 1),
                ],
            ),
            3 => Expr::app(Expr::var("not"), self.bool_term(scope, depth - 1)),
            4 => polyview_syntax::sugar::member(
                self.int_term(scope, depth - 1),
                self.set_term(&Mono::int(), scope, depth - 1),
            ),
            _ => {
                // objeq of two independently created objects (never two
                // views of one raw; see module docs). Both objects use the
                // *same raw-record shape*: the paper's Fig. 3 translation of
                // fuse applies one λx to both view functions, so it is
                // typeable only when the raw types coincide — a subtlety of
                // Prop. 3 documented in crates/trans and pinned by a
                // dedicated test.
                let view = self.view_type();
                let widened = self.flip();
                let a = self.obj_term_styled(&view, widened, scope, depth - 1);
                let b = self.obj_term_styled(&view, widened, scope, depth - 1);
                polyview_syntax::sugar::objeq(a, b)
            }
        }
    }

    fn str_term(&mut self, scope: &mut Scope, depth: usize) -> Expr {
        if depth == 0 {
            let words = ["a", "bb", "ccc", "joe", "staff", "female"];
            return Expr::str(words[self.pick(words.len())]);
        }
        match self.pick(3) {
            0 => self.str_term(scope, 0),
            1 => Expr::apps(
                Expr::var("concat"),
                [
                    self.str_term(scope, depth - 1),
                    self.str_term(scope, depth - 1),
                ],
            ),
            _ => Expr::app(Expr::var("int_to_string"), self.int_term(scope, depth - 1)),
        }
    }

    fn unit_term(&mut self, scope: &mut Scope, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::unit();
        }
        match self.pick(3) {
            0 => Expr::unit(),
            1 => {
                // Update a fresh record's mutable field.
                let r = self.name("r");
                let fv = self.int_term(scope, depth - 1);
                Expr::let_(
                    r.clone(),
                    Expr::record([Field::mutable("m", Expr::int(0))]),
                    Expr::update(Expr::Var(r), "m", fv),
                )
            }
            _ => {
                // Update through a view (the paper's view-update).
                let view = Mono::Record(
                    [(Label::new("m"), FieldTy::mutable(Mono::int()))]
                        .into_iter()
                        .collect(),
                );
                let o = self.obj_term(&view, scope, depth - 1);
                let fv = self.int_term(scope, depth - 1);
                Expr::query(
                    Expr::lam("x", Expr::update(Expr::var("x"), "m", fv)),
                    o,
                )
            }
        }
    }

    fn set_term(&mut self, elem: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        if depth == 0 {
            return Expr::empty_set();
        }
        match self.pick(4) {
            0 => {
                let n = self.pick(4);
                let elems: Vec<Expr> = (0..n)
                    .map(|_| self.term(elem, scope, depth - 1))
                    .collect();
                Expr::set(elems)
            }
            1 => Expr::union(
                self.set_term(elem, scope, depth - 1),
                self.set_term(elem, scope, depth - 1),
            ),
            2 => {
                // filter with a closed predicate.
                let x = self.name("fx");
                scope.push((x.clone(), elem.clone()));
                let pred_body = self.bool_term(scope, depth - 1);
                scope.pop();
                polyview_syntax::sugar::filter(
                    Expr::lam(x, pred_body),
                    self.set_term(elem, scope, depth - 1),
                )
            }
            _ => self.let_wrap(&Mono::set(elem.clone()), scope, depth),
        }
    }

    fn record_term(&mut self, ty: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        let fields = match ty {
            Mono::Record(fs) => fs,
            other => unreachable!("record_term on {other}"),
        };
        let fs: Vec<Field> = fields
            .iter()
            .map(|(l, f)| Field {
                label: l.clone(),
                mutable: f.mutable,
                expr: self.term(&f.ty, scope, depth.saturating_sub(1)),
            })
            .collect();
        Expr::Record(fs)
    }

    /// An object presenting `view`: either the identity view over a raw
    /// record of exactly the view type, or a projection view over a wider
    /// raw record (renames/hiding, with `extract` transferring mutability).
    fn obj_term(&mut self, view: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        let widened = depth > 0 && self.flip();
        self.obj_term_styled(view, widened, scope, depth)
    }

    /// Like [`Gen::obj_term`] but with the raw-record style fixed by the
    /// caller, so two objects can be guaranteed type-identical raws.
    fn obj_term_styled(
        &mut self,
        view: &Mono,
        widened: bool,
        scope: &mut Scope,
        depth: usize,
    ) -> Expr {
        let view_fields = match view {
            Mono::Record(fs) => fs.clone(),
            other => unreachable!("obj_term on non-record view {other}"),
        };
        if !widened {
            return Expr::id_view(self.record_term(view, scope, depth.saturating_sub(1)));
        }
        let depth = depth.max(1);
        // Wider raw: src field `src_<l>` per view field `l`, plus an extra.
        let mut raw_fields: Vec<Field> = Vec::new();
        for (l, f) in &view_fields {
            raw_fields.push(Field {
                label: Label::new(format!("src_{l}")),
                mutable: f.mutable,
                expr: self.term(&f.ty, scope, depth - 1),
            });
        }
        raw_fields.push(Field::immutable("extra", self.int_term(scope, depth - 1)));
        let x = self.name("vx");
        let view_body = Expr::Record(
            view_fields
                .iter()
                .map(|(l, f)| Field {
                    label: l.clone(),
                    mutable: f.mutable,
                    expr: if f.mutable {
                        Expr::extract(Expr::Var(x.clone()), format!("src_{l}").as_str())
                    } else {
                        Expr::dot(Expr::Var(x.clone()), format!("src_{l}").as_str())
                    },
                })
                .collect(),
        );
        Expr::as_view(
            Expr::id_view(Expr::Record(raw_fields)),
            Expr::lam(x, view_body),
        )
    }

    /// A class of objects presenting `view`: an own extent plus optionally
    /// an include from a freshly bound source class.
    fn class_term(&mut self, view: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        let n = self.pick(3);
        let own: Vec<Expr> = (0..n)
            .map(|_| self.obj_term(view, scope, depth.saturating_sub(1)))
            .collect();
        let own_class = Expr::ClassExpr(polyview_syntax::ClassDef {
            own: Box::new(Expr::set(own)),
            includes: vec![],
        });
        if depth == 0 || self.flip() {
            return own_class;
        }
        // Bind a source class and include it under the identity view with
        // a (possibly selective) predicate.
        let src = self.name("Src");
        let src_class = self.class_term(view, scope, depth - 1);
        let o = self.name("po");
        scope.push((o.clone(), Mono::obj(view.clone())));
        let pred_body = if self.flip() {
            Expr::bool(true)
        } else {
            // A query-based predicate over the first field.
            let (l, f) = match view {
                Mono::Record(fs) => {
                    let (l, f) = fs.iter().next().expect("non-empty record");
                    (l.clone(), f.ty.clone())
                }
                _ => unreachable!(),
            };
            let probe = self.term(&f, scope, 0);
            Expr::query(
                Expr::lam("x", Expr::eq(Expr::Dot(Box::new(Expr::var("x")), l), probe)),
                Expr::Var(o.clone()),
            )
        };
        scope.pop();
        let inner = Expr::ClassExpr(polyview_syntax::ClassDef {
            own: Box::new(Expr::set((0..self.pick(2)).map(|_| {
                self.obj_term(view, scope, depth.saturating_sub(1))
            }))),
            includes: vec![polyview_syntax::IncludeClause {
                sources: vec![Expr::Var(src.clone())],
                view: Expr::lam("x", Expr::var("x")),
                pred: Expr::lam(o, pred_body),
            }],
        });
        Expr::let_(src, src_class, inner)
    }

    /// Public wrapper for invariant tests that need a class term directly.
    pub fn class_term_public(&mut self, view: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        self.class_term(view, scope, depth)
    }

    fn let_wrap(&mut self, ty: &Mono, scope: &mut Scope, depth: usize) -> Expr {
        let bty = self.ground_type(1);
        let rhs = self.term(&bty, scope, depth - 1);
        let x = self.name("v");
        scope.push((x.clone(), bty));
        let body = self.term(ty, scope, depth - 1);
        scope.pop();
        Expr::Let(x, Box::new(rhs), Box::new(body))
    }

    fn record_with_field(&mut self, field_ty: Mono, label: &str) -> Mono {
        let mut fields = std::collections::BTreeMap::new();
        fields.insert(Label::new(label), FieldTy::immutable(field_ty));
        if self.flip() {
            fields.insert(Label::new("pad"), FieldTy::immutable(self.ground_type(0)));
        }
        Mono::Record(fields)
    }

    /// A random closed, terminating, well-typed program together with its
    /// by-construction type. Target types are observable (base/sets/unit)
    /// so results can be compared across evaluators.
    pub fn observable_program(&mut self, depth: usize) -> (Expr, Mono) {
        let ty = match self.pick(5) {
            0 => Mono::int(),
            1 => Mono::bool(),
            2 => Mono::str(),
            3 => Mono::set(Mono::int()),
            _ => Mono::Unit,
        };
        let mut scope = Scope::new();
        let e = self.term(&ty, &mut scope, depth);
        (e, ty)
    }

    /// A program exercising the class layer: classes (possibly nested
    /// includes), finished with a counting `c-query` so the result is an
    /// observable int.
    pub fn class_program(&mut self, depth: usize) -> (Expr, Mono) {
        let view = self.view_type();
        let mut scope = Scope::new();
        let class = self.class_term(&view, &mut scope, depth);
        let count = Expr::cquery(
            Expr::lam(
                "s",
                Expr::hom(
                    Expr::var("s"),
                    Expr::lam("x", Expr::int(1)),
                    Expr::lam(
                        "a",
                        Expr::lam(
                            "b",
                            Expr::apps(Expr::var("add"), [Expr::var("a"), Expr::var("b")]),
                        ),
                    ),
                    Expr::int(0),
                ),
            ),
            class,
        );
        (count, Mono::int())
    }

    /// A mutually recursive class group shaped as a ring of `k` classes,
    /// each with a small own extent, ending in a count query over class 0.
    pub fn recursive_ring_program(&mut self, k: usize, depth: usize) -> (Expr, Mono) {
        assert!(k >= 1);
        let view = self.record_type(0, false);
        let mut scope = Scope::new();
        let binds: Vec<(Name, polyview_syntax::ClassDef)> = (0..k)
            .map(|i| {
                let next = Label::new(format!("RC{}", (i + 1) % k));
                let n = self.pick(3);
                let own: Vec<Expr> = (0..n)
                    .map(|_| self.obj_term(&view, &mut scope, depth))
                    .collect();
                (
                    Label::new(format!("RC{i}")),
                    polyview_syntax::ClassDef {
                        own: Box::new(Expr::set(own)),
                        includes: vec![polyview_syntax::IncludeClause {
                            sources: vec![Expr::Var(next)],
                            view: Expr::lam("x", Expr::var("x")),
                            pred: Expr::lam("x", Expr::bool(true)),
                        }],
                    },
                )
            })
            .collect();
        let count = Expr::cquery(
            Expr::lam(
                "s",
                Expr::hom(
                    Expr::var("s"),
                    Expr::lam("x", Expr::int(1)),
                    Expr::lam(
                        "a",
                        Expr::lam(
                            "b",
                            Expr::apps(Expr::var("add"), [Expr::var("a"), Expr::var("b")]),
                        ),
                    ),
                    Expr::int(0),
                ),
            ),
            Expr::var("RC0"),
        );
        (Expr::LetClasses(binds, Box::new(count)), Mono::int())
    }
}

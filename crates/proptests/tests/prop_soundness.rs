//! Prop. 1 (type soundness), executable: generated well-typed programs
//! never "go wrong" — evaluation never raises a type-category runtime
//! error, and the resulting value has the program's type.

mod common;

use common::Gen;
use polyview_eval::{Machine, Value};
use polyview_syntax::Mono;
use polyview_types::{builtins_sig, infer, instance, Infer};
use proptest::prelude::*;

/// Does the runtime value inhabit the (resolved, ground-ish) type?
fn value_has_type(m: &Machine, v: &Value, t: &Mono) -> bool {
    match (v, t) {
        (Value::Int(_), Mono::Base(polyview_syntax::BaseTy::Int)) => true,
        (Value::Bool(_), Mono::Base(polyview_syntax::BaseTy::Bool)) => true,
        (Value::Str(_), Mono::Base(polyview_syntax::BaseTy::Str)) => true,
        (Value::Unit, Mono::Unit) => true,
        (Value::Set(s), Mono::Set(elem)) => s.values().all(|e| value_has_type(m, e, elem)),
        (Value::Record(r), Mono::Record(fs)) => {
            r.layout.len() == fs.len()
                && fs.iter().all(|(l, f)| match r.offset_of(l) {
                    Some(off) => {
                        r.layout.is_mutable(off) == f.mutable
                            && value_has_type(m, m.store.get(r.slots[off]), &f.ty)
                    }
                    None => false,
                })
        }
        (Value::Obj(_), Mono::Obj(_)) => true, // view application checked by queries
        (Value::Class(_), Mono::Class(_)) => true,
        (Value::Closure(_) | Value::Builtin(_), Mono::Arrow(..)) => true,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Generated programs typecheck at their by-construction type.
    #[test]
    fn generated_programs_are_well_typed(seed in any::<u64>(), depth in 1usize..5) {
        let mut g = Gen::new(seed);
        let (e, ty) = g.observable_program(depth);
        let mut cx = Infer::new();
        let mut env = builtins_sig::builtin_env();
        let inferred = infer::infer(&mut cx, &mut env, &e)
            .unwrap_or_else(|err| panic!("generator produced ill-typed term ({err}): {e}"));
        // Generalizing over the remaining unconstrained variables yields a
        // scheme of which the by-construction type must be an instance.
        let scheme = cx.generalize(&env, &inferred);
        prop_assert!(
            instance::instance_of(&scheme, &polyview_syntax::Scheme::mono(ty.clone())),
            "constructed type {} is not an instance of inferred {} for {}",
            ty, scheme, e
        );
    }

    /// Prop. 1: evaluation of a well-typed program never raises a
    /// type-category error, and the value inhabits the type.
    #[test]
    fn well_typed_programs_cannot_go_wrong(seed in any::<u64>(), depth in 1usize..5) {
        let mut g = Gen::new(seed);
        let (e, ty) = g.observable_program(depth);
        // Double-check typability (prerequisite of the proposition).
        let mut cx = Infer::new();
        let mut env = builtins_sig::builtin_env();
        infer::infer_resolved(&mut cx, &mut env, &e).expect("well-typed by construction");

        let mut m = Machine::new();
        match m.eval(&e) {
            Ok(v) => prop_assert!(
                value_has_type(&m, &v, &ty),
                "value {} does not inhabit {ty} for {e}",
                m.show(&v)
            ),
            Err(err) => prop_assert!(
                !err.is_type_error(),
                "well-typed program went wrong ({err}): {e}"
            ),
        }
    }

    /// Prop. 1 for the class layer: class programs evaluate without
    /// type-category errors and produce non-negative counts.
    #[test]
    fn class_programs_cannot_go_wrong(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.class_program(depth);
        let mut cx = Infer::new();
        let mut env = builtins_sig::builtin_env();
        infer::infer_resolved(&mut cx, &mut env, &e)
            .unwrap_or_else(|err| panic!("class generator ill-typed ({err}): {e}"));
        let mut m = Machine::new();
        let v = m.eval(&e).unwrap_or_else(|err| panic!("went wrong ({err}): {e}"));
        match v {
            Value::Int(n) => prop_assert!(n >= 0, "negative extent count {n}"),
            other => prop_assert!(false, "expected int, got {}", m.show(&other)),
        }
    }

    /// Evaluation is deterministic: two runs on fresh machines agree.
    #[test]
    fn evaluation_is_deterministic(seed in any::<u64>(), depth in 1usize..4) {
        let mut g = Gen::new(seed);
        let (e, _) = g.observable_program(depth);
        let r1 = {
            let mut m = Machine::new();
            m.eval(&e).map(|v| m.show(&v))
        };
        let r2 = {
            let mut m = Machine::new();
            m.eval(&e).map(|v| m.show(&v))
        };
        prop_assert_eq!(r1.ok(), r2.ok());
    }
}

//! Host package for the property-based suite under `tests/`.
//!
//! This crate is intentionally empty: it exists so the proptest/rand
//! dev-dependencies live outside the root workspace's dependency graph,
//! keeping the tier-1 pipeline (`cargo build --release && cargo test -q`)
//! resolvable with no network access. See `tests/` for the actual
//! properties (Props. 1–5, parser totality, grammar round-trips, hom
//! determinism).

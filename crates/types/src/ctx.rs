//! The inference context: fresh type variables, the current substitution,
//! and the kind assignment `K` mapping type variables to kinds.
//!
//! Variables not present in the kind map have kind `U`. The substitution is
//! triangular (a bound variable maps to a type that may itself contain bound
//! variables); [`Infer::resolve`] applies it exhaustively.

use crate::table::{NodeId, TypeTable};
use polyview_syntax::{FieldReq, Kind, Mono, Scheme, TyVar};
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Work counters for the inference engine: each counts one fundamental
/// operation of the Fig. 1 algorithm, so per-statement deltas make
/// inference cost claims checkable (see DESIGN.md §9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Calls into [`Infer::unify`] (including recursive sub-unifications).
    pub unify_steps: u64,
    /// Occurs checks performed before binding a variable.
    pub occurs_checks: u64,
    /// Record-kind merges between two kinded variables (the `F < F'` join).
    pub kind_merges: u64,
    /// Scheme instantiations (every polymorphic variable use).
    pub instantiations: u64,
}

/// Mutable state threaded through unification and inference.
#[derive(Debug, Default)]
pub struct Infer {
    next_var: TyVar,
    subst: HashMap<TyVar, Mono>,
    kinds: HashMap<TyVar, Kind>,
    /// `Cell` so `&self` paths (e.g. the occurs check) can count too.
    stats: Cell<InferStats>,
    /// Per-node recording for the compile tier; `None` (the default)
    /// disables it, so plain type checking pays nothing.
    table: Option<Box<TypeTable>>,
}

impl Infer {
    pub fn new() -> Self {
        Infer::default()
    }

    /// Mint a fresh variable of kind `U`.
    pub fn fresh(&mut self) -> Mono {
        let v = self.next_var;
        self.next_var += 1;
        Mono::Var(v)
    }

    /// Mint a fresh variable with the given kind.
    pub fn fresh_with_kind(&mut self, k: Kind) -> Mono {
        let t = self.fresh();
        if let Mono::Var(v) = t {
            if !k.is_univ() {
                self.kinds.insert(v, k);
            }
        }
        t
    }

    pub fn fresh_var_id(&mut self) -> TyVar {
        match self.fresh() {
            Mono::Var(v) => v,
            _ => unreachable!("fresh always returns a variable"),
        }
    }

    /// The kind currently assigned to `v` (`U` if none).
    pub fn kind_of(&self, v: TyVar) -> Kind {
        self.kinds.get(&v).cloned().unwrap_or(Kind::Univ)
    }

    pub fn set_kind(&mut self, v: TyVar, k: Kind) {
        if k.is_univ() {
            self.kinds.remove(&v);
        } else {
            self.kinds.insert(v, k);
        }
    }

    pub fn is_bound(&self, v: TyVar) -> bool {
        self.subst.contains_key(&v)
    }

    pub(crate) fn bind_raw(&mut self, v: TyVar, t: Mono) {
        debug_assert!(!self.subst.contains_key(&v), "double binding of t{v}");
        self.subst.insert(v, t);
    }

    /// Follow variable links until reaching a non-variable type or an
    /// unbound variable. Does not descend into sub-terms.
    pub fn shallow(&self, t: &Mono) -> Mono {
        let mut cur = t.clone();
        loop {
            match cur {
                Mono::Var(v) => match self.subst.get(&v) {
                    Some(next) => cur = next.clone(),
                    None => return Mono::Var(v),
                },
                other => return other,
            }
        }
    }

    /// Apply the substitution exhaustively.
    pub fn resolve(&self, t: &Mono) -> Mono {
        match self.shallow(t) {
            Mono::Var(v) => Mono::Var(v),
            Mono::Base(b) => Mono::Base(b),
            Mono::Unit => Mono::Unit,
            Mono::Arrow(a, b) => Mono::arrow(self.resolve(&a), self.resolve(&b)),
            Mono::Set(e) => Mono::set(self.resolve(&e)),
            Mono::LVal(e) => Mono::lval(self.resolve(&e)),
            Mono::Obj(e) => Mono::obj(self.resolve(&e)),
            Mono::Class(e) => Mono::class(self.resolve(&e)),
            Mono::Record(fs) => Mono::Record(
                fs.into_iter()
                    .map(|(l, mut ft)| {
                        ft.ty = self.resolve(&ft.ty);
                        (l, ft)
                    })
                    .collect(),
            ),
        }
    }

    /// Resolve the field types inside a kind.
    pub fn resolve_kind(&self, k: &Kind) -> Kind {
        match k {
            Kind::Univ => Kind::Univ,
            Kind::Record(reqs) => Kind::Record(
                reqs.iter()
                    .map(|(l, r)| {
                        (
                            l.clone(),
                            FieldReq {
                                req: r.req,
                                ty: self.resolve(&r.ty),
                            },
                        )
                    })
                    .collect::<BTreeMap<_, _>>(),
            ),
        }
    }

    /// Does variable `v` occur in `t`, looking through the substitution and
    /// through the kinds of encountered variables? (Kinds contain types, so
    /// a cycle through a kind is also an infinite type.)
    pub fn occurs(&self, v: TyVar, t: &Mono) -> bool {
        self.note(|s| s.occurs_checks += 1);
        let mut visited: HashSet<TyVar> = HashSet::new();
        self.occurs_inner(v, t, &mut visited)
    }

    fn occurs_inner(&self, v: TyVar, t: &Mono, visited: &mut HashSet<TyVar>) -> bool {
        match self.shallow(t) {
            Mono::Var(u) => {
                if u == v {
                    return true;
                }
                if !visited.insert(u) {
                    return false;
                }
                match self.kind_of(u) {
                    Kind::Univ => false,
                    Kind::Record(reqs) => {
                        reqs.values().any(|r| self.occurs_inner(v, &r.ty, visited))
                    }
                }
            }
            Mono::Base(_) | Mono::Unit => false,
            Mono::Arrow(a, b) => {
                self.occurs_inner(v, &a, visited) || self.occurs_inner(v, &b, visited)
            }
            Mono::Set(e) | Mono::LVal(e) | Mono::Obj(e) | Mono::Class(e) => {
                self.occurs_inner(v, &e, visited)
            }
            Mono::Record(fs) => fs.values().any(|f| self.occurs_inner(v, &f.ty, visited)),
        }
    }

    /// Free (unbound) variables of the resolved form of `t`, including
    /// variables reachable through the kinds of unbound variables.
    pub fn free_vars_deep(&self, t: &Mono, out: &mut Vec<TyVar>, seen: &mut HashSet<TyVar>) {
        match self.shallow(t) {
            Mono::Var(v) => {
                if seen.insert(v) {
                    out.push(v);
                    if let Kind::Record(reqs) = self.kind_of(v) {
                        for r in reqs.values() {
                            self.free_vars_deep(&r.ty, out, seen);
                        }
                    }
                }
            }
            Mono::Base(_) | Mono::Unit => {}
            Mono::Arrow(a, b) => {
                self.free_vars_deep(&a, out, seen);
                self.free_vars_deep(&b, out, seen);
            }
            Mono::Set(e) | Mono::LVal(e) | Mono::Obj(e) | Mono::Class(e) => {
                self.free_vars_deep(&e, out, seen)
            }
            Mono::Record(fs) => {
                for f in fs.values() {
                    self.free_vars_deep(&f.ty, out, seen);
                }
            }
        }
    }

    /// Number of fresh variables minted so far (diagnostics / benches).
    pub fn vars_minted(&self) -> u32 {
        self.next_var
    }

    /// Raise the fresh-variable counter to at least `n`. Snapshot restore
    /// uses this so variables minted after a restore never collide with
    /// the ids that appear in restored schemes; it never lowers the
    /// counter.
    pub fn ensure_vars_above(&mut self, n: u32) {
        self.next_var = self.next_var.max(n);
    }

    /// Snapshot of the inference work counters.
    pub fn stats(&self) -> InferStats {
        self.stats.get()
    }

    /// Zero the work counters (the substitution and kinds are untouched).
    pub fn reset_stats(&self) {
        self.stats.set(InferStats::default());
    }

    /// Begin per-node recording for the next inference run. Any previous
    /// recording is discarded: node ids are raw AST addresses, valid only
    /// for the statement whose inference just ran, and a later allocation
    /// may legitimately reuse an address — stale entries must never be
    /// allowed to alias it.
    pub fn enable_table(&mut self) {
        self.table = Some(Box::default());
    }

    pub fn table_enabled(&self) -> bool {
        self.table.is_some()
    }

    /// Take the recorded table, resolving every stored type against the
    /// current substitution — after inference of a statement completes,
    /// the variables it minted are never bound again, so the resolved
    /// forms are final and the consumer needs no inference context.
    pub fn take_table(&mut self) -> Option<Box<TypeTable>> {
        let mut t = self.table.take()?;
        for ty in t.operand_types.values_mut() {
            *ty = self.resolve(ty);
        }
        for pairs in t.instantiations.values_mut() {
            for (_, ty) in pairs.iter_mut() {
                *ty = self.resolve(ty);
            }
        }
        Some(t)
    }

    pub(crate) fn record_operand(&mut self, node: NodeId, t: Mono) {
        if let Some(tab) = &mut self.table {
            tab.operand_types.insert(node, t);
        }
    }

    pub(crate) fn record_instantiation(&mut self, node: NodeId, pairs: Vec<(TyVar, TyVar)>) {
        if let Some(tab) = &mut self.table {
            tab.instantiations.insert(
                node,
                pairs.into_iter().map(|(b, f)| (b, Mono::Var(f))).collect(),
            );
        }
    }

    pub(crate) fn record_let_scheme(&mut self, node: NodeId, s: &Scheme) {
        if let Some(tab) = &mut self.table {
            tab.let_schemes.insert(node, s.binders.clone());
        }
    }

    /// Bump counters through the `Cell` (usable from `&self` paths).
    pub(crate) fn note(&self, f: impl FnOnce(&mut InferStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::Label;

    #[test]
    fn fresh_vars_are_distinct() {
        let mut cx = Infer::new();
        let a = cx.fresh();
        let b = cx.fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn shallow_follows_chains() {
        let mut cx = Infer::new();
        let a = cx.fresh_var_id();
        let b = cx.fresh_var_id();
        cx.bind_raw(a, Mono::Var(b));
        cx.bind_raw(b, Mono::int());
        assert_eq!(cx.shallow(&Mono::Var(a)), Mono::int());
    }

    #[test]
    fn resolve_is_deep() {
        let mut cx = Infer::new();
        let a = cx.fresh_var_id();
        cx.bind_raw(a, Mono::int());
        let t = Mono::set(Mono::arrow(Mono::Var(a), Mono::bool()));
        assert_eq!(
            cx.resolve(&t),
            Mono::set(Mono::arrow(Mono::int(), Mono::bool()))
        );
    }

    #[test]
    fn occurs_direct_and_through_subst() {
        let mut cx = Infer::new();
        let a = cx.fresh_var_id();
        let b = cx.fresh_var_id();
        assert!(cx.occurs(a, &Mono::set(Mono::Var(a))));
        cx.bind_raw(b, Mono::set(Mono::Var(a)));
        assert!(cx.occurs(a, &Mono::Var(b)));
    }

    #[test]
    fn occurs_through_kinds() {
        let mut cx = Infer::new();
        let a = cx.fresh_var_id();
        let b = cx.fresh_var_id();
        cx.set_kind(b, Kind::has_field(Label::new("x"), Mono::Var(a)));
        // a occurs in b "via" b's kind.
        assert!(cx.occurs(a, &Mono::Var(b)));
        let c = cx.fresh_var_id();
        assert!(!cx.occurs(a, &Mono::Var(c)));
    }

    #[test]
    fn free_vars_deep_include_kind_vars() {
        let mut cx = Infer::new();
        let a = cx.fresh_var_id();
        let b = cx.fresh_var_id();
        cx.set_kind(a, Kind::has_field(Label::new("x"), Mono::Var(b)));
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        cx.free_vars_deep(&Mono::Var(a), &mut out, &mut seen);
        assert_eq!(out, vec![a, b]);
    }

    #[test]
    fn kind_default_is_univ() {
        let cx = Infer::new();
        assert_eq!(cx.kind_of(99), Kind::Univ);
    }

    #[test]
    fn work_counters_track_unify_occurs_merge_instantiate() {
        let mut cx = Infer::new();
        assert_eq!(cx.stats(), InferStats::default());

        // var–record bind: one unify step + one occurs check.
        let a = cx.fresh();
        cx.unify(&a, &Mono::int()).expect("binds");
        let s = cx.stats();
        assert_eq!(s.unify_steps, 1);
        assert_eq!(s.occurs_checks, 1);
        assert_eq!(s.kind_merges, 0);

        // kinded var–var unification records a kind merge.
        let f1 = cx.fresh();
        let f2 = cx.fresh();
        let k1 = cx.fresh_with_kind(Kind::has_field(Label::new("x"), f1));
        let k2 = cx.fresh_with_kind(Kind::has_field(Label::new("x"), f2));
        cx.unify(&k1, &k2).expect("merges");
        assert_eq!(cx.stats().kind_merges, 1);

        // instantiation of a polytype counts.
        let scheme = polyview_syntax::Scheme::poly(
            vec![(900, Kind::Univ)],
            Mono::arrow(Mono::Var(900), Mono::Var(900)),
        );
        cx.instantiate(&scheme);
        assert_eq!(cx.stats().instantiations, 1);

        cx.reset_stats();
        assert_eq!(cx.stats(), InferStats::default());
    }
}

//! Type errors, with messages phrased in the paper's vocabulary.

use polyview_syntax::visit::RecClassViolation;
use polyview_syntax::{Label, Mono, Name, TyVar};
use std::fmt;

/// Errors produced by kinded unification and inference.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// Two types failed to unify.
    Mismatch(Mono, Mono),
    /// Occurs check: binding the variable would build an infinite type.
    Occurs(TyVar, Mono),
    /// A record type lacked a field required by a kind constraint.
    MissingField { label: Label, record: Mono },
    /// A field exists but is immutable where mutability is required
    /// (e.g. `update(joe, Name, …)` on an immutable `Name`, or
    /// `extract` from an immutable field — the paper's second illegal
    /// example in Section 2).
    MutabilityViolation { label: Label, record: Mono },
    /// A kind constraint `[[…]]` was imposed on a type that is not (and can
    /// never be) a record type — e.g. projecting a field from an integer.
    NotARecord(Mono),
    /// Unbound term variable.
    Unbound(Name),
    /// Recursive class definitions violated the Section 4.4 scope
    /// restriction.
    RecClass(RecClassViolation),
    /// A top-level binding gives a mutable field a non-ground type,
    /// violating the paper's soundness restriction.
    NonGroundMutable { label: Label, ty: Mono },
    /// Two record *types* disagree on a field's mutability (record types
    /// are exact; `[l = τ]` and `[l := τ]` are different types).
    FieldMutabilityMismatch {
        label: Label,
        left: Mono,
        right: Mono,
    },
    /// A lowered (offset-resolved) form reached the type checker. Lowering
    /// runs strictly *after* inference; source programs cannot contain
    /// these forms, so this indicates a pipeline-ordering bug, not a user
    /// error.
    LoweredForm(&'static str),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch(a, b) => write!(f, "type mismatch: {a} vs {b}"),
            TypeError::Occurs(v, t) => {
                write!(f, "occurs check: t{v} occurs in {t} (infinite type)")
            }
            TypeError::MissingField { label, record } => {
                write!(f, "record type {record} has no field `{label}`")
            }
            TypeError::MutabilityViolation { label, record } => write!(
                f,
                "field `{label}` of {record} is immutable where a mutable field \
                 (l := τ) is required"
            ),
            TypeError::NotARecord(t) => {
                write!(
                    f,
                    "type {t} is not a record type, cannot satisfy a record kind"
                )
            }
            TypeError::Unbound(x) => write!(f, "unbound variable `{x}`"),
            TypeError::RecClass(v) => match v {
                RecClassViolation::InOwnExtent(n) => write!(
                    f,
                    "recursive class identifier `{n}` may not appear in an own-extent \
                     expression (Section 4.4 restriction)"
                ),
                RecClassViolation::InView(n) => write!(
                    f,
                    "recursive class identifier `{n}` may not appear inside an `as` \
                     viewing function (Section 4.4 restriction)"
                ),
                RecClassViolation::InPred(n) => write!(
                    f,
                    "recursive class identifier `{n}` may not appear inside a `where` \
                     predicate (Section 4.4 restriction)"
                ),
                RecClassViolation::InCompoundSource(n) => write!(
                    f,
                    "an include source mentioning recursive class identifier `{n}` \
                     must be exactly that identifier (Section 4.4 restriction)"
                ),
            },
            TypeError::NonGroundMutable { label, ty } => write!(
                f,
                "mutable field `{label}` has non-ground type {ty}; the paper requires \
                 mutable field types to be ground monotypes"
            ),
            TypeError::FieldMutabilityMismatch { label, left, right } => write!(
                f,
                "record types {left} and {right} disagree on the mutability of \
                 field `{label}`"
            ),
            TypeError::LoweredForm(form) => write!(
                f,
                "lowered form `{form}` reached type inference; lowering must run \
                 after inference"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<RecClassViolation> for TypeError {
    fn from(v: RecClassViolation) -> Self {
        TypeError::RecClass(v)
    }
}

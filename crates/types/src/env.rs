//! Type assignments `A`: a global layer for top-level definitions and
//! builtins, plus a scoped stack for the variables bound during inference.

use crate::ctx::Infer;
use polyview_syntax::{Name, Scheme, TyVar};
use std::collections::{HashMap, HashSet};

/// A type assignment mapping term variables to polytypes.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    globals: HashMap<Name, Scheme>,
    scope: Vec<(Name, Scheme)>,
}

impl TypeEnv {
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Install a top-level binding (builtin or `val`-defined).
    pub fn define_global(&mut self, name: impl Into<Name>, s: Scheme) {
        self.globals.insert(name.into(), s);
    }

    pub fn lookup(&self, name: &Name) -> Option<&Scheme> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
            .or_else(|| self.globals.get(name))
    }

    /// Push a scoped binding; pop with [`TypeEnv::pop`].
    pub fn push(&mut self, name: Name, s: Scheme) {
        self.scope.push((name, s));
    }

    pub fn pop(&mut self) -> Option<(Name, Scheme)> {
        self.scope.pop()
    }

    /// Current scope depth, for save/restore around branches.
    pub fn depth(&self) -> usize {
        self.scope.len()
    }

    pub fn truncate(&mut self, depth: usize) {
        self.scope.truncate(depth);
    }

    /// All type variables free in the environment, resolved through the
    /// current substitution. Generalization must not quantify these.
    pub fn free_vars(&self, cx: &Infer) -> HashSet<TyVar> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, s) in self.scope.iter() {
            self.scheme_free_vars(cx, s, &mut out, &mut seen);
        }
        for s in self.globals.values() {
            // Top-level schemes are usually closed; skip the walk when the
            // syntactic check already says so.
            if !s.binders.is_empty() || !s.body.free_vars().is_empty() {
                self.scheme_free_vars(cx, s, &mut out, &mut seen);
            }
        }
        seen
    }

    fn scheme_free_vars(
        &self,
        cx: &Infer,
        s: &Scheme,
        out: &mut Vec<TyVar>,
        seen: &mut HashSet<TyVar>,
    ) {
        // Quantified binders of the scheme are not free; they are never
        // confused with inference variables because instantiation always
        // freshens them, but be precise anyway.
        let mut local_out = Vec::new();
        let mut local_seen = HashSet::new();
        cx.free_vars_deep(&s.body, &mut local_out, &mut local_seen);
        for (_, k) in &s.binders {
            for v in k.free_vars() {
                let mut sub = Vec::new();
                cx.free_vars_deep(&polyview_syntax::Mono::Var(v), &mut sub, &mut local_seen);
                local_out.extend(sub);
            }
        }
        let bound: HashSet<TyVar> = s.binders.iter().map(|(v, _)| *v).collect();
        for v in local_out {
            if !bound.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
    }

    /// Iterate over the global bindings (for documentation / listing).
    pub fn globals(&self) -> impl Iterator<Item = (&Name, &Scheme)> {
        self.globals.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{Label, Mono};

    #[test]
    fn scope_shadows_globals() {
        let mut env = TypeEnv::new();
        env.define_global("x", Scheme::mono(Mono::int()));
        env.push(Label::new("x"), Scheme::mono(Mono::bool()));
        assert_eq!(env.lookup(&Label::new("x")).unwrap().body, Mono::bool());
        env.pop();
        assert_eq!(env.lookup(&Label::new("x")).unwrap().body, Mono::int());
    }

    #[test]
    fn later_pushes_shadow_earlier() {
        let mut env = TypeEnv::new();
        env.push(Label::new("x"), Scheme::mono(Mono::int()));
        env.push(Label::new("x"), Scheme::mono(Mono::str()));
        assert_eq!(env.lookup(&Label::new("x")).unwrap().body, Mono::str());
    }

    #[test]
    fn free_vars_sees_scope_monotypes() {
        let cx = Infer::new();
        let mut env = TypeEnv::new();
        env.push(Label::new("x"), Scheme::mono(Mono::Var(7)));
        assert!(env.free_vars(&cx).contains(&7));
    }

    #[test]
    fn free_vars_exclude_scheme_binders() {
        let cx = Infer::new();
        let mut env = TypeEnv::new();
        env.push(
            Label::new("f"),
            Scheme::poly(
                vec![(3, polyview_syntax::Kind::Univ)],
                Mono::arrow(Mono::Var(3), Mono::Var(3)),
            ),
        );
        assert!(!env.free_vars(&cx).contains(&3));
    }

    #[test]
    fn truncate_restores_depth() {
        let mut env = TypeEnv::new();
        let d = env.depth();
        env.push(Label::new("a"), Scheme::mono(Mono::int()));
        env.push(Label::new("b"), Scheme::mono(Mono::int()));
        env.truncate(d);
        assert!(env.lookup(&Label::new("a")).is_none());
    }
}

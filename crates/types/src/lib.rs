//! Kinded unification and polymorphic type inference for the view calculus.
//!
//! This crate implements the type system of the paper:
//!
//! * the kinding rules and record typing rules of Fig. 1 (an adaptation of
//!   Ohori's POPL'92 polymorphic record calculus, refined to distinguish
//!   mutable and immutable fields via the `F < F'` relation);
//! * the object/view typing rules of Fig. 2;
//! * the class typing rules of Fig. 4 and the recursive-class rule of
//!   Fig. 6;
//! * ML-style let-polymorphism with a value restriction enforcing the
//!   paper's soundness condition that mutable fields never receive
//!   polymorphic types (Section 2, citing Milner).
//!
//! The entry points are [`Infer`] (the inference context: fresh variables,
//! substitution, kind assignment) and [`infer::infer`] /
//! [`Infer::infer_scheme`]. Principal types are produced by generalization;
//! [`instance::instance_of`] implements the "is an instance of" relation
//! used to check principality (Prop. 2) in tests.

pub mod builtins_sig;
pub mod ctx;
pub mod env;
pub mod error;
pub mod generalize;
pub mod infer;
pub mod instance;
pub mod table;
pub mod unify;

pub use ctx::{Infer, InferStats};
pub use env::TypeEnv;
pub use error::TypeError;
pub use table::{NodeId, TypeTable};

use polyview_syntax::{Expr, Scheme};

impl Infer {
    /// Infer the principal scheme of an expression under `env`, generalizing
    /// subject to the value restriction.
    pub fn infer_scheme(&mut self, env: &mut TypeEnv, e: &Expr) -> Result<Scheme, TypeError> {
        let t = infer::infer(self, env, e)?;
        if generalize::is_nonexpansive(e) {
            Ok(self.generalize(env, &t))
        } else {
            Ok(Scheme::mono(self.resolve(&t)))
        }
    }
}

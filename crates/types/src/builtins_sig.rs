//! Type signatures of the builtin primitives.
//!
//! The paper assumes "constants `cτ` of type `τ`" and uses arithmetic,
//! comparison and functions like `This_year()` freely in its examples. We
//! provide them as a global environment of (curried) primitives; the
//! evaluator supplies matching implementations under the same names.

use crate::env::TypeEnv;
use polyview_syntax::{BaseTy, Mono, Scheme};

/// `(name, type)` pairs for every builtin. All builtins are monomorphic;
/// polymorphic operations (`eq`, `hom`, `union`, …) are syntax, not
/// builtins.
pub fn signatures() -> Vec<(&'static str, Mono)> {
    let int = || Mono::Base(BaseTy::Int);
    let boolean = || Mono::Base(BaseTy::Bool);
    let string = || Mono::Base(BaseTy::Str);
    let bin = |a: Mono, b: Mono, r: Mono| Mono::arrows([a, b], r);
    vec![
        ("add", bin(int(), int(), int())),
        ("sub", bin(int(), int(), int())),
        ("mul", bin(int(), int(), int())),
        ("div", bin(int(), int(), int())),
        ("imod", bin(int(), int(), int())),
        ("neg", Mono::arrow(int(), int())),
        ("lt", bin(int(), int(), boolean())),
        ("le", bin(int(), int(), boolean())),
        ("gt", bin(int(), int(), boolean())),
        ("ge", bin(int(), int(), boolean())),
        ("min", bin(int(), int(), int())),
        ("max", bin(int(), int(), int())),
        ("abs", Mono::arrow(int(), int())),
        ("not", Mono::arrow(boolean(), boolean())),
        ("concat", bin(string(), string(), string())),
        ("strlen", Mono::arrow(string(), int())),
        ("int_to_string", Mono::arrow(int(), string())),
        // The paper's computed-attribute example calls This_year().
        ("this_year", Mono::arrow(Mono::Unit, int())),
    ]
}

/// A [`TypeEnv`] pre-populated with all builtin signatures.
pub fn builtin_env() -> TypeEnv {
    let mut env = TypeEnv::new();
    for (name, ty) in signatures() {
        env.define_global(name, Scheme::mono(ty));
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::Label;

    #[test]
    fn builtin_env_contains_all_signatures() {
        let env = builtin_env();
        for (name, ty) in signatures() {
            let s = env.lookup(&Label::new(name)).expect("present");
            assert_eq!(s.body, ty);
            assert!(s.is_mono());
        }
    }

    #[test]
    fn signatures_are_ground() {
        for (name, ty) in signatures() {
            assert!(ty.is_ground(), "builtin {name} has non-ground type");
        }
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<_> = signatures().into_iter().map(|(n, _)| n).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}

//! Kinded unification (Ohori, POPL'92, adapted to mutability-refined kinds).
//!
//! Unification proceeds as in algorithm U of the record calculus:
//!
//! * variable–variable: the two kind constraints are *merged* — common
//!   fields have their types unified and their mutability requirements
//!   joined (`:=` absorbs `=`, the paper's `F < F'`);
//! * variable–record: the kind constraint is *discharged* against the
//!   record type — every required field must be present with an admissible
//!   mutability, and the constraint types unify with the field types;
//! * record–record: record types are exact, so the label sets and per-field
//!   mutabilities must agree and field types unify pointwise;
//! * all other constructors unify by congruence.

use crate::ctx::Infer;
use crate::error::TypeError;
use polyview_syntax::{FieldReq, Kind, Mono, TyVar};
use std::collections::BTreeMap;

impl Infer {
    /// Unify two types under the current substitution and kind assignment.
    pub fn unify(&mut self, t1: &Mono, t2: &Mono) -> Result<(), TypeError> {
        self.note(|s| s.unify_steps += 1);
        let a = self.shallow(t1);
        let b = self.shallow(t2);
        match (a, b) {
            (Mono::Var(v), Mono::Var(u)) if v == u => Ok(()),
            (Mono::Var(v), Mono::Var(u)) => self.unify_vars(v, u),
            (Mono::Var(v), t) | (t, Mono::Var(v)) => self.bind_var(v, t),
            (Mono::Base(x), Mono::Base(y)) if x == y => Ok(()),
            (Mono::Unit, Mono::Unit) => Ok(()),
            (Mono::Arrow(a1, r1), Mono::Arrow(a2, r2)) => {
                self.unify(&a1, &a2)?;
                self.unify(&r1, &r2)
            }
            (Mono::Set(x), Mono::Set(y))
            | (Mono::LVal(x), Mono::LVal(y))
            | (Mono::Obj(x), Mono::Obj(y))
            | (Mono::Class(x), Mono::Class(y)) => self.unify(&x, &y),
            (Mono::Record(f1), Mono::Record(f2)) => self.unify_records(f1, f2),
            (a, b) => Err(TypeError::Mismatch(self.resolve(&a), self.resolve(&b))),
        }
    }

    /// Merge the kinds of two distinct unbound variables and link them.
    fn unify_vars(&mut self, v: TyVar, u: TyVar) -> Result<(), TypeError> {
        let kv = self.kind_of(v);
        let ku = self.kind_of(u);
        // Link u to v first so that recursive field unifications see the
        // union through v.
        let merged = match (kv, ku) {
            (Kind::Univ, k) | (k, Kind::Univ) => {
                self.bind_raw(u, Mono::Var(v));
                k
            }
            (Kind::Record(rv), Kind::Record(ru)) => {
                self.note(|s| s.kind_merges += 1);
                self.bind_raw(u, Mono::Var(v));
                let mut merged: BTreeMap<_, FieldReq> = rv;
                let mut pending = Vec::new();
                for (l, req_u) in ru {
                    match merged.get_mut(&l) {
                        Some(req_v) => {
                            req_v.req = req_v.req.join(req_u.req);
                            pending.push((req_v.ty.clone(), req_u.ty));
                        }
                        None => {
                            merged.insert(l, req_u);
                        }
                    }
                }
                self.set_kind(v, Kind::Record(merged));
                for (a, b) in pending {
                    self.unify(&a, &b)?;
                }
                // Field unification may have bound v itself (through a
                // field type mentioning v — an occurs situation caught in
                // bind_var). Nothing more to do here.
                return Ok(());
            }
        };
        self.set_kind(v, merged);
        Ok(())
    }

    /// Bind variable `v` to non-variable type `t`, discharging `v`'s kind.
    fn bind_var(&mut self, v: TyVar, t: Mono) -> Result<(), TypeError> {
        if self.occurs(v, &t) {
            return Err(TypeError::Occurs(v, self.resolve(&t)));
        }
        match self.kind_of(v) {
            Kind::Univ => {
                self.bind_raw(v, t);
                Ok(())
            }
            Kind::Record(reqs) => {
                let fields = match &t {
                    Mono::Record(fs) => fs.clone(),
                    other => return Err(TypeError::NotARecord(self.resolve(other))),
                };
                // Bind first so recursive unifications of field types that
                // mention v resolve to t (they cannot, thanks to the occurs
                // check, but binding first also keeps error types resolved).
                self.bind_raw(v, t.clone());
                for (l, req) in reqs {
                    let f = match fields.get(&l) {
                        Some(f) => f,
                        None => {
                            return Err(TypeError::MissingField {
                                label: l,
                                record: self.resolve(&t),
                            })
                        }
                    };
                    if !req.req.admits(f.mutable) {
                        return Err(TypeError::MutabilityViolation {
                            label: l,
                            record: self.resolve(&t),
                        });
                    }
                    self.unify(&req.ty, &f.ty)?;
                }
                self.set_kind(v, Kind::Univ);
                Ok(())
            }
        }
    }

    fn unify_records(
        &mut self,
        f1: BTreeMap<polyview_syntax::Label, polyview_syntax::FieldTy>,
        f2: BTreeMap<polyview_syntax::Label, polyview_syntax::FieldTy>,
    ) -> Result<(), TypeError> {
        if f1.len() != f2.len() || !f1.keys().eq(f2.keys()) {
            return Err(TypeError::Mismatch(
                self.resolve(&Mono::Record(f1)),
                self.resolve(&Mono::Record(f2)),
            ));
        }
        for (l, a) in &f1 {
            let b = &f2[l];
            if a.mutable != b.mutable {
                return Err(TypeError::FieldMutabilityMismatch {
                    label: l.clone(),
                    left: self.resolve(&Mono::Record(f1.clone())),
                    right: self.resolve(&Mono::Record(f2.clone())),
                });
            }
            self.unify(&a.ty, &b.ty)?;
        }
        Ok(())
    }

    /// Impose the kind constraint `k` on type `t` (the judgement
    /// `K ⊢ τ :: K` of Fig. 1). For a variable this merges kinds; for a
    /// record type it discharges the constraint directly.
    pub fn constrain(&mut self, t: &Mono, k: Kind) -> Result<(), TypeError> {
        if k.is_univ() {
            return Ok(());
        }
        match self.shallow(t) {
            Mono::Var(v) => {
                // Merge k into v's kind by making a fresh variable of kind k
                // and unifying — reuses the var–var merge logic.
                let helper = self.fresh_with_kind(k);
                match helper {
                    Mono::Var(h) => self.unify_vars(v, h),
                    _ => unreachable!("fresh_with_kind returns a variable"),
                }
            }
            Mono::Record(fields) => {
                let reqs = match k {
                    Kind::Record(r) => r,
                    Kind::Univ => unreachable!("handled above"),
                };
                for (l, req) in reqs {
                    let f = match fields.get(&l) {
                        Some(f) => f.clone(),
                        None => {
                            return Err(TypeError::MissingField {
                                label: l,
                                record: self.resolve(&Mono::Record(fields)),
                            })
                        }
                    };
                    if !req.req.admits(f.mutable) {
                        return Err(TypeError::MutabilityViolation {
                            label: l,
                            record: self.resolve(&Mono::Record(fields)),
                        });
                    }
                    self.unify(&req.ty, &f.ty)?;
                }
                Ok(())
            }
            other => Err(TypeError::NotARecord(self.resolve(&other))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{FieldTy, Label, MutReq};

    fn rec(fields: Vec<(&str, bool, Mono)>) -> Mono {
        Mono::Record(
            fields
                .into_iter()
                .map(|(l, m, t)| (Label::new(l), FieldTy { mutable: m, ty: t }))
                .collect(),
        )
    }

    #[test]
    fn unify_base_types() {
        let mut cx = Infer::new();
        assert!(cx.unify(&Mono::int(), &Mono::int()).is_ok());
        assert!(matches!(
            cx.unify(&Mono::int(), &Mono::bool()),
            Err(TypeError::Mismatch(..))
        ));
    }

    #[test]
    fn unify_var_binds() {
        let mut cx = Infer::new();
        let a = cx.fresh();
        cx.unify(&a, &Mono::int()).expect("bind");
        assert_eq!(cx.resolve(&a), Mono::int());
    }

    #[test]
    fn occurs_check_fails() {
        let mut cx = Infer::new();
        let a = cx.fresh();
        let t = Mono::set(a.clone());
        assert!(matches!(cx.unify(&a, &t), Err(TypeError::Occurs(..))));
    }

    #[test]
    fn var_var_kind_merge_unifies_common_fields() {
        let mut cx = Infer::new();
        let fa = cx.fresh();
        let fb = cx.fresh();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), fa.clone()));
        let b = cx.fresh_with_kind(Kind::has_field(Label::new("x"), fb.clone()));
        cx.unify(&a, &b).expect("kind merge");
        cx.unify(&fa, &Mono::int()).expect("bind field");
        assert_eq!(cx.resolve(&fb), Mono::int());
    }

    #[test]
    fn var_var_merge_joins_mutability() {
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
        let b = cx.fresh_with_kind(Kind::has_mutable_field(Label::new("x"), Mono::int()));
        cx.unify(&a, &b).expect("merge");
        // The surviving variable's kind requires mutability.
        let v = match cx.shallow(&a) {
            Mono::Var(v) => v,
            other => panic!("expected var, got {other:?}"),
        };
        match cx.kind_of(v) {
            Kind::Record(reqs) => assert_eq!(reqs[&Label::new("x")].req, MutReq::Mutable),
            Kind::Univ => panic!("kind lost"),
        }
    }

    #[test]
    fn kinded_var_discharges_against_record() {
        let mut cx = Infer::new();
        let f = cx.fresh();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("Name"), f.clone()));
        let joe = rec(vec![
            ("Name", false, Mono::str()),
            ("Salary", true, Mono::int()),
        ]);
        cx.unify(&a, &joe).expect("discharge");
        assert_eq!(cx.resolve(&f), Mono::str());
        assert_eq!(cx.resolve(&a), cx.resolve(&joe));
    }

    #[test]
    fn kinded_var_missing_field() {
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("Age"), Mono::int()));
        let joe = rec(vec![("Name", false, Mono::str())]);
        assert!(matches!(
            cx.unify(&a, &joe),
            Err(TypeError::MissingField { .. })
        ));
    }

    #[test]
    fn mutable_requirement_rejects_immutable_field() {
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_mutable_field(Label::new("Name"), Mono::str()));
        let joe = rec(vec![("Name", false, Mono::str())]);
        assert!(matches!(
            cx.unify(&a, &joe),
            Err(TypeError::MutabilityViolation { .. })
        ));
    }

    #[test]
    fn any_requirement_accepts_mutable_field() {
        // The paper's F < F': kind [[l = τ]] admits a record with l := τ.
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("Salary"), Mono::int()));
        let joe = rec(vec![("Salary", true, Mono::int())]);
        cx.unify(&a, &joe).expect("admissible");
    }

    #[test]
    fn record_record_exact_labels() {
        let mut cx = Infer::new();
        let r1 = rec(vec![("x", false, Mono::int())]);
        let r2 = rec(vec![("x", false, Mono::int()), ("y", false, Mono::int())]);
        assert!(matches!(cx.unify(&r1, &r2), Err(TypeError::Mismatch(..))));
    }

    #[test]
    fn record_record_mutability_mismatch() {
        let mut cx = Infer::new();
        let r1 = rec(vec![("x", false, Mono::int())]);
        let r2 = rec(vec![("x", true, Mono::int())]);
        assert!(matches!(
            cx.unify(&r1, &r2),
            Err(TypeError::FieldMutabilityMismatch { .. })
        ));
    }

    #[test]
    fn congruence_on_constructors() {
        let mut cx = Infer::new();
        let a = cx.fresh();
        cx.unify(
            &Mono::obj(Mono::set(a.clone())),
            &Mono::obj(Mono::set(Mono::bool())),
        )
        .expect("congruence");
        assert_eq!(cx.resolve(&a), Mono::bool());
        assert!(cx
            .unify(&Mono::obj(Mono::int()), &Mono::class(Mono::int()))
            .is_err());
    }

    #[test]
    fn constrain_on_record_type_directly() {
        let mut cx = Infer::new();
        let f = cx.fresh();
        let joe = rec(vec![("Name", false, Mono::str())]);
        cx.constrain(&joe, Kind::has_field(Label::new("Name"), f.clone()))
            .expect("constrain");
        assert_eq!(cx.resolve(&f), Mono::str());
    }

    #[test]
    fn constrain_non_record_fails() {
        let mut cx = Infer::new();
        assert!(matches!(
            cx.constrain(&Mono::int(), Kind::any_record()),
            Err(TypeError::NotARecord(_))
        ));
    }

    #[test]
    fn constrain_univ_is_noop() {
        let mut cx = Infer::new();
        cx.constrain(&Mono::int(), Kind::Univ)
            .expect("U admits all");
    }

    #[test]
    fn unification_is_symmetric_on_success() {
        let mut cx1 = Infer::new();
        let a1 = cx1.fresh();
        let t = Mono::arrow(Mono::int(), Mono::bool());
        cx1.unify(&a1, &t).expect("left");
        let mut cx2 = Infer::new();
        let a2 = cx2.fresh();
        cx2.unify(&t, &a2).expect("right");
        assert_eq!(cx1.resolve(&a1), cx2.resolve(&a2));
    }

    #[test]
    fn chained_kinded_vars_accumulate_constraints() {
        // a :: [[x = int]], b :: [[y = bool]]; unify a b; then discharge
        // against a record having both fields.
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
        let b = cx.fresh_with_kind(Kind::has_field(Label::new("y"), Mono::bool()));
        cx.unify(&a, &b).expect("merge");
        let r = rec(vec![("x", false, Mono::int()), ("y", false, Mono::bool())]);
        cx.unify(&a, &r).expect("discharge");
        assert_eq!(cx.resolve(&b), cx.resolve(&r));

        // And a record missing y fails.
        let mut cx = Infer::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
        let b = cx.fresh_with_kind(Kind::has_field(Label::new("y"), Mono::bool()));
        cx.unify(&a, &b).expect("merge");
        let r = rec(vec![("x", false, Mono::int())]);
        assert!(cx.unify(&a, &r).is_err());
    }
}

//! Type inference for the full language (Figs. 1, 2, 4 and 6).
//!
//! The algorithm is W-style: each rule introduces fresh kinded variables and
//! unifies. All rules are syntax-directed, so inference for the view and
//! class layers is a direct extension of the core algorithm — this is the
//! paper's observation that "the extended language also preserves the
//! existence of a complete type inference algorithm".

use crate::ctx::Infer;
use crate::env::TypeEnv;
use crate::error::TypeError;
use polyview_syntax::visit::check_rec_class_scope;
use polyview_syntax::{ClassDef, Expr, FieldTy, Kind, Lit, Mono, Scheme};

/// Infer the type of `e` under `env`, extending the substitution in `cx`.
/// The returned type is *not* resolved; callers resolve or generalize.
pub fn infer(cx: &mut Infer, env: &mut TypeEnv, e: &Expr) -> Result<Mono, TypeError> {
    match e {
        // ---------- core (Fig. 1 and standard rules) ----------
        Expr::Lit(l) => Ok(lit_type(l)),
        Expr::Var(x) => match env.lookup(x) {
            Some(s) => {
                let s = s.clone();
                let (t, pairs) = cx.instantiate_mapped(&s);
                cx.record_instantiation(crate::table::node_id(e), pairs);
                Ok(t)
            }
            None => Err(TypeError::Unbound(x.clone())),
        },
        Expr::Eq(a, b) => {
            let ta = infer(cx, env, a)?;
            let tb = infer(cx, env, b)?;
            cx.unify(&ta, &tb)?;
            Ok(Mono::bool())
        }
        Expr::Lam(x, body) => {
            let a = cx.fresh();
            env.push(x.clone(), Scheme::mono(a.clone()));
            let r = infer(cx, env, body);
            env.pop();
            Ok(Mono::arrow(a, r?))
        }
        Expr::App(f, a) => {
            let tf = infer(cx, env, f)?;
            let ta = infer(cx, env, a)?;
            let r = cx.fresh();
            cx.unify(&tf, &Mono::arrow(ta, r.clone()))?;
            Ok(r)
        }
        Expr::Record(fields) => {
            // (rec): each field expression may have type τ or L(τ); an
            // L-value flows in only from `extract`, transferring the slot.
            let mut tys = std::collections::BTreeMap::new();
            for f in fields {
                let t = infer(cx, env, &f.expr)?;
                let t = match cx.shallow(&t) {
                    Mono::LVal(inner) => *inner,
                    other => other,
                };
                tys.insert(
                    f.label.clone(),
                    FieldTy {
                        mutable: f.mutable,
                        ty: t,
                    },
                );
            }
            Ok(Mono::Record(tys))
        }
        Expr::Dot(obj, l) => {
            // (dot): K,A ▷ e : τ1, K ⊢ τ1 :: [[l = τ2]] ⟹ e·l : τ2.
            let t = infer(cx, env, obj)?;
            cx.record_operand(crate::table::node_id(e), t.clone());
            let f = cx.fresh();
            cx.constrain(&t, Kind::has_field(l.clone(), f.clone()))?;
            Ok(f)
        }
        Expr::Extract(obj, l) => {
            // (ext): requires a *mutable* field; yields L(τ2).
            let t = infer(cx, env, obj)?;
            cx.record_operand(crate::table::node_id(e), t.clone());
            let f = cx.fresh();
            cx.constrain(&t, Kind::has_mutable_field(l.clone(), f.clone()))?;
            Ok(Mono::lval(f))
        }
        Expr::Update(obj, l, v) => {
            // (upd): requires a mutable field; yields unit.
            let t = infer(cx, env, obj)?;
            cx.record_operand(crate::table::node_id(e), t.clone());
            let tv = infer(cx, env, v)?;
            cx.constrain(&t, Kind::has_mutable_field(l.clone(), tv))?;
            Ok(Mono::Unit)
        }
        Expr::SetLit(es) => {
            let elem = cx.fresh();
            for e in es {
                let t = infer(cx, env, e)?;
                cx.unify(&elem, &t)?;
            }
            Ok(Mono::set(elem))
        }
        Expr::Union(a, b) => {
            let ta = infer(cx, env, a)?;
            let tb = infer(cx, env, b)?;
            let elem = cx.fresh();
            cx.unify(&ta, &Mono::set(elem.clone()))?;
            cx.unify(&tb, &Mono::set(elem.clone()))?;
            Ok(Mono::set(elem))
        }
        Expr::Hom(s, f, op, z) => {
            // hom(S, f, op, z) = op(f(e1), op(…, op(f(en), z)…))
            // S : {a}, f : a → b, op : b → c → c, z : c ⟹ c.
            let ts = infer(cx, env, s)?;
            let tf = infer(cx, env, f)?;
            let top = infer(cx, env, op)?;
            let tz = infer(cx, env, z)?;
            let a = cx.fresh();
            let b = cx.fresh();
            cx.unify(&ts, &Mono::set(a.clone()))?;
            cx.unify(&tf, &Mono::arrow(a, b.clone()))?;
            cx.unify(&top, &Mono::arrow(b, Mono::arrow(tz.clone(), tz.clone())))?;
            Ok(tz)
        }
        Expr::Fix(x, body) => {
            let a = cx.fresh();
            env.push(x.clone(), Scheme::mono(a.clone()));
            let t = infer(cx, env, body);
            env.pop();
            cx.unify(&a, &t?)?;
            Ok(a)
        }
        Expr::Let(x, rhs, body) => {
            let t_rhs = infer(cx, env, rhs)?;
            let scheme = if crate::generalize::is_nonexpansive(rhs) {
                cx.generalize(env, &t_rhs)
            } else {
                Scheme::mono(t_rhs)
            };
            cx.record_let_scheme(crate::table::node_id(e), &scheme);
            env.push(x.clone(), scheme);
            let t = infer(cx, env, body);
            env.pop();
            t
        }
        Expr::If(c, t, e2) => {
            let tc = infer(cx, env, c)?;
            cx.unify(&tc, &Mono::bool())?;
            let tt = infer(cx, env, t)?;
            let te = infer(cx, env, e2)?;
            cx.unify(&tt, &te)?;
            Ok(tt)
        }

        // ---------- views (Fig. 2) ----------
        Expr::IdView(e) => {
            // (id): e : τ with K ⊢ τ :: [[ ]] ⟹ IDView(e) : obj(τ).
            let t = infer(cx, env, e)?;
            cx.constrain(&t, Kind::any_record())?;
            Ok(Mono::obj(t))
        }
        Expr::AsView(o, f) => {
            // (vcomp): o : obj(τ1), f : τ1 → τ2 ⟹ (o as f) : obj(τ2).
            let to = infer(cx, env, o)?;
            let tf = infer(cx, env, f)?;
            let t1 = cx.fresh();
            let t2 = cx.fresh();
            cx.unify(&to, &Mono::obj(t1.clone()))?;
            cx.unify(&tf, &Mono::arrow(t1, t2.clone()))?;
            Ok(Mono::obj(t2))
        }
        Expr::Query(f, o) => {
            // (query): f : τ1 → τ2, o : obj(τ1) ⟹ query(f, o) : τ2.
            let tf = infer(cx, env, f)?;
            let to = infer(cx, env, o)?;
            let t1 = cx.fresh();
            let t2 = cx.fresh();
            cx.unify(&tf, &Mono::arrow(t1.clone(), t2.clone()))?;
            cx.unify(&to, &Mono::obj(t1))?;
            Ok(t2)
        }
        Expr::Fuse(a, b) => {
            // (fuse): obj(τ1), obj(τ2) ⟹ {obj(τ1 × τ2)}.
            let ta = infer(cx, env, a)?;
            let tb = infer(cx, env, b)?;
            let t1 = cx.fresh();
            let t2 = cx.fresh();
            cx.unify(&ta, &Mono::obj(t1.clone()))?;
            cx.unify(&tb, &Mono::obj(t2.clone()))?;
            Ok(Mono::set(Mono::obj(Mono::pair(t1, t2))))
        }
        Expr::RelObj(fields) => {
            // (vrel): each ei : obj(τi) ⟹ obj([l1 = τ1, …, ln = τn]).
            let mut tys = std::collections::BTreeMap::new();
            for (l, e) in fields {
                let t = infer(cx, env, e)?;
                let ti = cx.fresh();
                cx.unify(&t, &Mono::obj(ti.clone()))?;
                tys.insert(l.clone(), FieldTy::immutable(ti));
            }
            Ok(Mono::obj(Mono::Record(tys)))
        }

        // ---------- classes (Figs. 4 and 6) ----------
        Expr::ClassExpr(cd) => infer_class_def(cx, env, cd),
        Expr::CQuery(f, c) => {
            // (cquery): f : {obj(τ1)} → τ2, C : class(τ1) ⟹ τ2.
            let tf = infer(cx, env, f)?;
            let tc = infer(cx, env, c)?;
            let t1 = cx.fresh();
            let t2 = cx.fresh();
            cx.unify(
                &tf,
                &Mono::arrow(Mono::set(Mono::obj(t1.clone())), t2.clone()),
            )?;
            cx.unify(&tc, &Mono::class(t1))?;
            Ok(t2)
        }
        Expr::Insert(c, e) | Expr::Delete(c, e) => {
            // (insert)/(delete): C : class(τ1), e : obj(τ1) ⟹ unit.
            let tc = infer(cx, env, c)?;
            let te = infer(cx, env, e)?;
            let t1 = cx.fresh();
            cx.unify(&tc, &Mono::class(t1.clone()))?;
            cx.unify(&te, &Mono::obj(t1))?;
            Ok(Mono::Unit)
        }
        Expr::LetClasses(binds, body) => {
            // (rec-class), Fig. 6. The scope restriction guarantees the
            // class identifiers appear only as include sources, so typing
            // everything under the extended assignment coincides with the
            // rule's split assignment.
            check_rec_class_scope(binds)?;
            let depth = env.depth();
            let tvs: Vec<Mono> = binds.iter().map(|_| cx.fresh()).collect();
            for ((name, _), tv) in binds.iter().zip(&tvs) {
                env.push(name.clone(), Scheme::mono(Mono::class(tv.clone())));
            }
            let result = (|| {
                for ((_, cd), tv) in binds.iter().zip(&tvs) {
                    let tc = infer_class_def(cx, env, cd)?;
                    cx.unify(&tc, &Mono::class(tv.clone()))?;
                }
                infer(cx, env, body)
            })();
            env.truncate(depth);
            result
        }

        // ---------- lowered forms (produced only after inference) ----------
        Expr::DotAt(..) => Err(TypeError::LoweredForm("dot@i")),
        Expr::ExtractAt(..) => Err(TypeError::LoweredForm("extract@i")),
        Expr::UpdateAt(..) => Err(TypeError::LoweredForm("update@i")),
        Expr::RecordAt(..) => Err(TypeError::LoweredForm("record@layout")),
    }
}

/// The `(class)` rule of Fig. 4:
///
/// ```text
/// S : {obj(τ)}    Cʲᵢ : class(τʲᵢ)
/// eᵢ : τ¹ᵢ × … × τᵐᵢ → τ    pᵢ : obj(τ¹ᵢ × … × τᵐᵢ) → bool
/// ───────────────────────────────────────────────────────────
/// class S include … end : class(τ)
/// ```
fn infer_class_def(cx: &mut Infer, env: &mut TypeEnv, cd: &ClassDef) -> Result<Mono, TypeError> {
    let t = cx.fresh();
    let t_own = infer(cx, env, &cd.own)?;
    cx.unify(&t_own, &Mono::set(Mono::obj(t.clone())))?;
    for inc in &cd.includes {
        let mut source_tys = Vec::with_capacity(inc.sources.len());
        for s in &inc.sources {
            let ts = infer(cx, env, s)?;
            let ti = cx.fresh();
            cx.unify(&ts, &Mono::class(ti.clone()))?;
            source_tys.push(ti);
        }
        let product = Mono::include_product(source_tys);
        let tv = infer(cx, env, &inc.view)?;
        cx.unify(&tv, &Mono::arrow(product.clone(), t.clone()))?;
        let tp = infer(cx, env, &inc.pred)?;
        cx.unify(&tp, &Mono::arrow(Mono::obj(product), Mono::bool()))?;
    }
    Ok(Mono::class(t))
}

fn lit_type(l: &Lit) -> Mono {
    match l {
        Lit::Unit => Mono::Unit,
        Lit::Int(_) => Mono::int(),
        Lit::Bool(_) => Mono::bool(),
        Lit::Str(_) => Mono::str(),
    }
}

/// Convenience: infer and fully resolve.
pub fn infer_resolved(cx: &mut Infer, env: &mut TypeEnv, e: &Expr) -> Result<Mono, TypeError> {
    let t = infer(cx, env, e)?;
    Ok(cx.resolve(&t))
}

/// Convenience used pervasively in tests: infer the principal scheme of a
/// closed expression under the builtin environment.
pub fn infer_closed(e: &Expr) -> Result<Scheme, TypeError> {
    let mut cx = Infer::new();
    let mut env = crate::builtins_sig::builtin_env();
    cx.infer_scheme(&mut env, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::builder as b;
    use polyview_syntax::Label;

    fn infer_str_of(e: &Expr) -> String {
        infer_closed(e).expect("well-typed").to_string()
    }

    fn infer_err(e: &Expr) -> TypeError {
        infer_closed(e).expect_err("should be ill-typed")
    }

    // ----- core -----

    #[test]
    fn literals() {
        assert_eq!(infer_str_of(&b::int(1)), "int");
        assert_eq!(infer_str_of(&b::str("hi")), "string");
        assert_eq!(infer_str_of(&b::boolean(true)), "bool");
        assert_eq!(infer_str_of(&b::unit()), "unit");
    }

    #[test]
    fn identity_is_polymorphic() {
        assert_eq!(
            infer_closed(&b::lam("x", b::v("x"))).unwrap().to_string(),
            "∀t1::U. t1 -> t1"
        );
    }

    #[test]
    fn unbound_variable() {
        assert!(matches!(infer_err(&b::v("nope")), TypeError::Unbound(_)));
    }

    #[test]
    fn record_and_dot() {
        let e = b::dot(
            b::record([b::imm("Name", b::str("Joe")), b::mt("Salary", b::int(2000))]),
            "Name",
        );
        assert_eq!(infer_str_of(&e), "string");
    }

    #[test]
    fn dot_is_field_polymorphic() {
        // λx. x·Name : ∀t2::U. ∀t1::[[Name = t2]]. t1 → t2 (modulo binder
        // order/naming).
        let s = infer_closed(&b::lam("x", b::dot(b::v("x"), "Name"))).unwrap();
        assert_eq!(s.binders.len(), 2);
        let shown = s.to_string();
        assert!(shown.contains("[[Name = "), "got: {shown}");
    }

    #[test]
    fn update_requires_mutable_field() {
        // update(joe, Name, "Peter") is rejected: Name immutable (paper §2).
        let joe = b::record([b::imm("Name", b::str("Joe")), b::mt("Salary", b::int(2000))]);
        let bad = b::let_(
            "joe",
            joe.clone(),
            b::update(b::v("joe"), "Name", b::str("P")),
        );
        assert!(matches!(
            infer_err(&bad),
            TypeError::MutabilityViolation { .. }
        ));
        let good = b::let_("joe", joe, b::update(b::v("joe"), "Salary", b::int(4000)));
        assert_eq!(infer_str_of(&good), "unit");
    }

    #[test]
    fn extract_requires_mutable_field() {
        // [Name = extract(joe, Name)] is illegal: Name is immutable.
        let joe = b::record([b::imm("Name", b::str("Joe"))]);
        let bad = b::let_("joe", joe, b::extract(b::v("joe"), "Name"));
        assert!(matches!(
            infer_err(&bad),
            TypeError::MutabilityViolation { .. }
        ));
    }

    #[test]
    fn extracted_lvalue_usable_only_as_field_value() {
        // Legal: [Income := extract(joe, Salary)] — shares the slot.
        let joe = b::record([b::mt("Salary", b::int(2000))]);
        let ok = b::let_(
            "joe",
            joe.clone(),
            b::record([
                b::imm("Doe", b::str("D")),
                b::mt("Income", b::extract(b::v("joe"), "Salary")),
            ]),
        );
        assert_eq!(infer_str_of(&ok), "[Doe = string, Income := int]");

        // Legal even into an *immutable* field (the john example in §2).
        let ok2 = b::let_(
            "joe",
            joe.clone(),
            b::record([b::imm("Salary", b::extract(b::v("joe"), "Salary"))]),
        );
        assert_eq!(infer_str_of(&ok2), "[Salary = int]");

        // Illegal: arithmetic on an extracted L-value (paper's first
        // illegal example).
        let bad = b::let_(
            "joe",
            joe,
            b::mul(b::extract(b::v("joe"), "Salary"), b::int(2)),
        );
        assert!(matches!(infer_err(&bad), TypeError::Mismatch(..)));
    }

    #[test]
    fn set_literal_homogeneous() {
        assert_eq!(infer_str_of(&b::set([b::int(1), b::int(2)])), "{int}");
        assert!(matches!(
            infer_err(&b::set([b::int(1), b::str("x")])),
            TypeError::Mismatch(..)
        ));
    }

    #[test]
    fn empty_set_is_polymorphic() {
        assert_eq!(infer_str_of(&b::empty()), "∀t1::U. {t1}");
    }

    #[test]
    fn union_and_hom() {
        let e = b::union(b::set([b::int(1)]), b::set([b::int(2)]));
        assert_eq!(infer_str_of(&e), "{int}");

        // hom({1,2}, λx.x, λa.λb.add a b, 0) : int
        let h = b::hom(
            b::set([b::int(1), b::int(2)]),
            b::lam("x", b::v("x")),
            b::lam("a", b::lam("acc", b::add(b::v("a"), b::v("acc")))),
            b::int(0),
        );
        assert_eq!(infer_str_of(&h), "int");
    }

    #[test]
    fn eq_requires_same_types() {
        assert_eq!(infer_str_of(&b::eq(b::int(1), b::int(2))), "bool");
        assert!(matches!(
            infer_err(&b::eq(b::int(1), b::boolean(true))),
            TypeError::Mismatch(..)
        ));
    }

    #[test]
    fn if_branches_unify() {
        let e = b::if_(b::boolean(true), b::int(1), b::int(2));
        assert_eq!(infer_str_of(&e), "int");
        assert!(infer_closed(&b::if_(b::int(1), b::int(1), b::int(2))).is_err());
        assert!(infer_closed(&b::if_(b::boolean(true), b::int(1), b::str("x"))).is_err());
    }

    #[test]
    fn fix_types_recursion() {
        // fix f. λn. if eq(n, 0) then 0 else f (sub n 1) : int → int
        let e = Expr::fix(
            "f",
            b::lam(
                "n",
                b::if_(
                    b::eq(b::v("n"), b::int(0)),
                    b::int(0),
                    b::app(b::v("f"), b::sub(b::v("n"), b::int(1))),
                ),
            ),
        );
        assert_eq!(infer_str_of(&e), "int -> int");
    }

    #[test]
    fn let_polymorphism() {
        // let id = λx.x in (id 1, id "a") — needs polymorphic id.
        let e = b::let_(
            "id",
            b::lam("x", b::v("x")),
            b::pair(
                b::app(b::v("id"), b::int(1)),
                b::app(b::v("id"), b::str("a")),
            ),
        );
        assert_eq!(infer_str_of(&e), "[1 = int, 2 = string]");
    }

    #[test]
    fn value_restriction_blocks_generalizing_state() {
        // let r = [cell := …] is expansive; using it at two field types
        // must fail. Here: a polymorphic-looking record of an empty set.
        let e = b::let_(
            "r",
            b::record([b::imm("s", b::empty())]),
            b::pair(
                b::union(b::dot(b::v("r"), "s"), b::set([b::int(1)])),
                b::union(b::dot(b::v("r"), "s"), b::set([b::str("a")])),
            ),
        );
        assert!(infer_closed(&e).is_err());
    }

    // ----- views (Fig. 2) -----

    fn joe_raw() -> Expr {
        b::record([
            b::imm("Name", b::str("Joe")),
            b::imm("BirthYear", b::int(1955)),
            b::mt("Salary", b::int(2000)),
            b::mt("Bonus", b::int(5000)),
        ])
    }

    #[test]
    fn idview_types_as_obj() {
        assert_eq!(
            infer_str_of(&b::id_view(joe_raw())),
            "obj([BirthYear = int, Bonus := int, Name = string, Salary := int])"
        );
    }

    #[test]
    fn idview_rejects_non_record() {
        assert!(matches!(
            infer_err(&b::id_view(b::int(1))),
            TypeError::NotARecord(_)
        ));
    }

    #[test]
    fn paper_joe_view_type() {
        // joe_view from §3.3: renames Salary→Income (immutable), hides
        // BirthYear, computes Age, keeps Bonus mutable via extract.
        let joe_view = b::as_view(
            b::id_view(joe_raw()),
            b::lam(
                "x",
                b::record([
                    b::imm("Name", b::dot(b::v("x"), "Name")),
                    b::imm(
                        "Age",
                        b::sub(
                            b::app(b::v("this_year"), b::unit()),
                            b::dot(b::v("x"), "BirthYear"),
                        ),
                    ),
                    b::imm("Income", b::dot(b::v("x"), "Salary")),
                    b::mt("Bonus", b::extract(b::v("x"), "Bonus")),
                ]),
            ),
        );
        assert_eq!(
            infer_str_of(&joe_view),
            "obj([Age = int, Bonus := int, Income = int, Name = string])"
        );
    }

    #[test]
    fn query_applies_view() {
        let q = b::query(
            b::lam("x", b::dot(b::v("x"), "Name")),
            b::id_view(joe_raw()),
        );
        assert_eq!(infer_str_of(&q), "string");
    }

    #[test]
    fn annual_income_scheme_matches_paper() {
        // fun Annual_Income p = p·Income * 12 + p·Bonus
        //   : ∀t::[[Income = int, Bonus = int]]. t → int
        let f = b::lam(
            "p",
            b::add(
                b::mul(b::dot(b::v("p"), "Income"), b::int(12)),
                b::dot(b::v("p"), "Bonus"),
            ),
        );
        assert_eq!(
            infer_str_of(&f),
            "∀t1::[[Bonus = int, Income = int]]. t1 -> int"
        );
    }

    #[test]
    fn adjust_bonus_scheme_matches_paper() {
        // adjustBonus = λp. query(λx. update(x, Bonus, x·Income * 3), p)
        //   : ∀t::[[Income = int, Bonus := int]]. obj(t) → unit
        let f = b::lam(
            "p",
            b::query(
                b::lam(
                    "x",
                    b::update(
                        b::v("x"),
                        "Bonus",
                        b::mul(b::dot(b::v("x"), "Income"), b::int(3)),
                    ),
                ),
                b::v("p"),
            ),
        );
        assert_eq!(
            infer_str_of(&f),
            "∀t1::[[Bonus := int, Income = int]]. obj(t1) -> unit"
        );
    }

    #[test]
    fn fuse_produces_product_view_set() {
        let e = b::fuse(b::id_view(joe_raw()), b::id_view(joe_raw()));
        let s = infer_str_of(&e);
        assert!(s.starts_with("{obj([1 = "), "got {s}");
    }

    #[test]
    fn relobj_builds_record_of_views() {
        let e = b::relobj([
            ("emp", b::id_view(joe_raw())),
            (
                "dept",
                b::id_view(b::record([b::imm("DName", b::str("RIMS"))])),
            ),
        ]);
        let s = infer_str_of(&e);
        assert!(s.starts_with("obj([dept = ["), "got {s}");
    }

    #[test]
    fn relobj_rejects_non_objects() {
        assert!(infer_closed(&b::relobj([("x", b::int(1))])).is_err());
    }

    // ----- classes (Figs. 4 and 6) -----

    fn staff_class() -> Expr {
        // class {IDView([Name = …, Age = …, Sex = …])} end
        b::class(
            b::set([b::id_view(b::record([
                b::imm("Name", b::str("Alice")),
                b::imm("Age", b::int(30)),
                b::imm("Sex", b::str("female")),
            ]))]),
            vec![],
        )
    }

    #[test]
    fn class_of_own_extent() {
        assert_eq!(
            infer_str_of(&staff_class()),
            "class([Age = int, Name = string, Sex = string])"
        );
    }

    #[test]
    fn female_member_class_types() {
        // FemaleMember from §4.2, over one source class.
        let e = b::let_(
            "Staff",
            staff_class(),
            b::class(
                b::empty(),
                vec![b::include(
                    vec![b::v("Staff")],
                    b::lam(
                        "s",
                        b::record([
                            b::imm("Name", b::dot(b::v("s"), "Name")),
                            b::imm("Age", b::dot(b::v("s"), "Age")),
                            b::imm("Category", b::str("staff")),
                        ]),
                    ),
                    b::lam(
                        "s",
                        b::query(
                            b::lam("x", b::eq(b::dot(b::v("x"), "Sex"), b::str("female"))),
                            b::v("s"),
                        ),
                    ),
                )],
            ),
        );
        assert_eq!(
            infer_str_of(&e),
            "class([Age = int, Category = string, Name = string])"
        );
    }

    #[test]
    fn cquery_insert_delete_type() {
        let names = b::lam("s", b::v("s"));
        let e = b::let_("Staff", staff_class(), b::cquery(names, b::v("Staff")));
        let s = infer_str_of(&e);
        assert!(s.starts_with("{obj("), "got {s}");

        let obj = b::id_view(b::record([
            b::imm("Name", b::str("Bob")),
            b::imm("Age", b::int(40)),
            b::imm("Sex", b::str("male")),
        ]));
        let ins = b::let_(
            "Staff",
            staff_class(),
            b::insert(b::v("Staff"), obj.clone()),
        );
        assert_eq!(infer_str_of(&ins), "unit");
        let del = b::let_("Staff", staff_class(), b::delete(b::v("Staff"), obj));
        assert_eq!(infer_str_of(&del), "unit");
    }

    #[test]
    fn insert_of_wrong_view_type_rejected() {
        let wrong = b::id_view(b::record([b::imm("Other", b::int(1))]));
        let e = b::let_("Staff", staff_class(), b::insert(b::v("Staff"), wrong));
        assert!(infer_closed(&e).is_err());
    }

    #[test]
    fn multi_source_include_uses_tuple_views() {
        // StudentStaff from §4.2: include Staff, Student as λp.[… p·1 … p·2 …]
        let staff = staff_class();
        let student = b::class(
            b::set([b::id_view(b::record([
                b::imm("Name", b::str("Carol")),
                b::imm("Degree", b::str("MSc")),
            ]))]),
            vec![],
        );
        let e = b::let_(
            "Staff",
            staff,
            b::let_(
                "Student",
                student,
                b::class(
                    b::empty(),
                    vec![b::include(
                        vec![b::v("Staff"), b::v("Student")],
                        b::lam(
                            "p",
                            b::record([
                                b::imm("Name", b::dot(b::proj(b::v("p"), 1), "Name")),
                                b::imm("Deg", b::dot(b::proj(b::v("p"), 2), "Degree")),
                            ]),
                        ),
                        b::lam("p", b::boolean(true)),
                    )],
                ),
            ),
        );
        assert_eq!(infer_str_of(&e), "class([Deg = string, Name = string])");
    }

    #[test]
    fn recursive_classes_type_with_fig6_rule() {
        // Simplified Fig. 7: two classes sharing each other's extents.
        let view = |cat: &str| {
            b::lam(
                "f",
                b::record([
                    b::imm("Name", b::dot(b::v("f"), "Name")),
                    b::imm("Cat", b::str(cat)),
                ]),
            )
        };
        let pred = |cat: &str| {
            b::lam(
                "f",
                b::query(
                    b::lam("x", b::eq(b::dot(b::v("x"), "Cat"), b::str(cat))),
                    b::v("f"),
                ),
            )
        };
        let e = b::let_classes(
            vec![
                (
                    "A",
                    b::class(
                        b::empty(),
                        vec![b::include(vec![b::v("B")], view("a"), pred("a"))],
                    ),
                ),
                (
                    "B",
                    b::class(
                        b::empty(),
                        vec![b::include(vec![b::v("A")], view("b"), pred("b"))],
                    ),
                ),
            ],
            b::v("A"),
        );
        let s = infer_str_of(&e);
        assert!(s.starts_with("class(["), "got {s}");
    }

    #[test]
    fn recursive_class_scope_violation_is_type_error() {
        // The ill-typed C1 = C \ C2 and C2 = C \ C1 from §4.4.
        let pred = |other: &str| b::lam("c", b::cquery(b::lam("s", b::boolean(true)), b::v(other)));
        let e = b::let_(
            "C",
            staff_class(),
            b::let_classes(
                vec![
                    (
                        "C1",
                        b::class(
                            b::empty(),
                            vec![b::include(
                                vec![b::v("C")],
                                b::lam("x", b::v("x")),
                                pred("C2"),
                            )],
                        ),
                    ),
                    (
                        "C2",
                        b::class(
                            b::empty(),
                            vec![b::include(
                                vec![b::v("C")],
                                b::lam("x", b::v("x")),
                                pred("C1"),
                            )],
                        ),
                    ),
                ],
                b::v("C1"),
            ),
        );
        assert!(matches!(infer_err(&e), TypeError::RecClass(_)));
    }

    #[test]
    fn classes_are_first_class() {
        // A class-creating function: λs. class s end.
        let f = b::lam("s", b::class(b::v("s"), vec![]));
        let s = infer_closed(&f).unwrap().to_string();
        assert!(s.contains("{obj(t1)} -> class(t1)"), "got {s}");
    }

    // ----- derived forms stay well-typed -----

    #[test]
    fn sugar_member_map_filter_type() {
        use polyview_syntax::sugar;
        let m = sugar::member(b::int(1), b::set([b::int(1), b::int(2)]));
        assert_eq!(infer_str_of(&m), "bool");
        let mp = sugar::map(
            b::lam("x", b::mul(b::v("x"), b::int(2))),
            b::set([b::int(1)]),
        );
        assert_eq!(infer_str_of(&mp), "{int}");
        let fl = sugar::filter(
            b::lam("x", b::gt(b::v("x"), b::int(0))),
            b::set([b::int(1)]),
        );
        assert_eq!(infer_str_of(&fl), "{int}");
    }

    #[test]
    fn sugar_objeq_and_intersect_type() {
        use polyview_syntax::sugar;
        let o1 = b::id_view(b::record([b::imm("a", b::int(1))]));
        let o2 = b::id_view(b::record([b::imm("b", b::int(2))]));
        assert_eq!(infer_str_of(&sugar::objeq(o1.clone(), o2.clone())), "bool");
        let i = sugar::intersect2(b::set([o1]), b::set([o2]));
        let s = infer_str_of(&i);
        assert!(
            s.starts_with("{obj([1 = [a = int], 2 = [b = int]])}"),
            "got {s}"
        );
    }

    #[test]
    fn sugar_select_types_as_paper_wealthy() {
        use polyview_syntax::sugar;
        // fun wealthy S = select as λx.[Name=x·Name, Age=x·Age] from S
        //                 where λx. query(Annual_Income, x) > 100000
        let annual = b::lam(
            "p",
            b::add(
                b::mul(b::dot(b::v("p"), "Income"), b::int(12)),
                b::dot(b::v("p"), "Bonus"),
            ),
        );
        let wealthy = b::lam(
            "S",
            sugar::select_as_from_where(
                b::lam(
                    "x",
                    b::record([
                        b::imm("Name", b::dot(b::v("x"), "Name")),
                        b::imm("Age", b::dot(b::v("x"), "Age")),
                    ]),
                ),
                b::v("S"),
                b::lam("x", b::gt(b::query(annual, b::v("x")), b::int(100000))),
            ),
        );
        let s = infer_closed(&wealthy).unwrap().to_string();
        // ∀…::[[Age = …, Bonus = int, Income = int, Name = …]].
        //   {obj(t)} → {obj([Age = …, Name = …])}
        assert!(s.contains("Income = int"), "got {s}");
        assert!(s.contains("Bonus = int"), "got {s}");
        assert!(s.contains("{obj("), "got {s}");
        assert!(s.ends_with("])}"), "got {s}");
    }

    #[test]
    fn sugar_relation_query_types() {
        use polyview_syntax::sugar;
        let s1 = b::set([b::id_view(b::record([b::imm("a", b::int(1))]))]);
        let s2 = b::set([b::id_view(b::record([b::imm("b", b::int(2))]))]);
        let e = sugar::relation_from_where(
            vec![(Label::new("x"), b::v("x1")), (Label::new("y"), b::v("x2"))],
            vec![(Label::new("x1"), s1), (Label::new("x2"), s2)],
            b::boolean(true),
        );
        let s = infer_str_of(&e);
        assert!(
            s.starts_with("{obj([x = [a = int], y = [b = int]])}"),
            "got {s}"
        );
    }
}

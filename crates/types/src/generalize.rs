//! Generalization (`gen`), instantiation (`inst`), and the value
//! restriction.
//!
//! Generalization quantifies the type variables free in the inferred type
//! (including variables reachable only through kinds) that are not free in
//! the environment, capturing each variable's kind constraint in its binder
//! — yielding polytypes like the paper's
//! `∀t::[[Income = int, Bonus = int]]. t → int`.
//!
//! ML-style polymorphic typing is unsound in the presence of mutable values
//! (Section 2, citing Milner/Tofte); the paper restricts mutable field types
//! to ground monotypes. We enforce this with a syntactic value restriction:
//! only *non-expansive* expressions — those that cannot create record
//! identities or other state — receive polymorphic types at `let`.

use crate::ctx::Infer;
use crate::env::TypeEnv;
use crate::error::TypeError;
use polyview_syntax::{Expr, FieldReq, Kind, Mono, Scheme, TyVar};
use std::collections::{HashMap, HashSet};

impl Infer {
    /// Generalize `t` over the variables not free in `env`.
    pub fn generalize(&mut self, env: &TypeEnv, t: &Mono) -> Scheme {
        let env_fvs = env.free_vars(self);
        let mut fvs = Vec::new();
        let mut seen = HashSet::new();
        self.free_vars_deep(t, &mut fvs, &mut seen);
        let quantified: Vec<TyVar> = fvs.into_iter().filter(|v| !env_fvs.contains(v)).collect();
        let body = self.resolve(t);
        let binders = quantified
            .iter()
            .map(|v| (*v, self.resolve_kind(&self.kind_of(*v))))
            .collect();
        Scheme { binders, body }
    }

    /// Instantiate a scheme with fresh variables carrying the binders'
    /// kinds. Substitution into the kinds is simultaneous, so binder order
    /// does not matter.
    pub fn instantiate(&mut self, s: &Scheme) -> Mono {
        self.instantiate_mapped(s).0
    }

    /// Instantiate, also returning the `(binder, fresh variable)` pairs in
    /// binder order — the record the compile tier needs to synthesize
    /// index arguments at this use site.
    pub fn instantiate_mapped(&mut self, s: &Scheme) -> (Mono, Vec<(TyVar, TyVar)>) {
        self.note(|st| st.instantiations += 1);
        if s.binders.is_empty() {
            return (s.body.clone(), Vec::new());
        }
        let pairs: Vec<(TyVar, TyVar)> = s
            .binders
            .iter()
            .map(|(v, _)| (*v, self.fresh_var_id()))
            .collect();
        let mapping: HashMap<TyVar, TyVar> = pairs.iter().copied().collect();
        for (v, k) in &s.binders {
            let k2 = rename_kind(k, &mapping);
            self.set_kind(mapping[v], k2);
        }
        (rename_mono(&s.body, &mapping), pairs)
    }

    /// Check the paper's ground-monotype restriction on a fully resolved
    /// top-level type: every mutable field's type must be ground.
    pub fn check_ground_mutables(&self, t: &Mono) -> Result<(), TypeError> {
        let t = self.resolve(t);
        check_ground(&t)
    }
}

fn check_ground(t: &Mono) -> Result<(), TypeError> {
    match t {
        Mono::Base(_) | Mono::Unit | Mono::Var(_) => Ok(()),
        Mono::Arrow(a, b) => {
            check_ground(a)?;
            check_ground(b)
        }
        Mono::Set(e) | Mono::LVal(e) | Mono::Obj(e) | Mono::Class(e) => check_ground(e),
        Mono::Record(fs) => {
            for (l, f) in fs {
                if f.mutable && !f.ty.is_ground() {
                    return Err(TypeError::NonGroundMutable {
                        label: l.clone(),
                        ty: f.ty.clone(),
                    });
                }
                check_ground(&f.ty)?;
            }
            Ok(())
        }
    }
}

/// Rename variables in a type by a (partial) mapping; unmapped variables are
/// left alone.
pub fn rename_mono(t: &Mono, mapping: &HashMap<TyVar, TyVar>) -> Mono {
    match t {
        Mono::Var(v) => Mono::Var(*mapping.get(v).unwrap_or(v)),
        Mono::Base(b) => Mono::Base(*b),
        Mono::Unit => Mono::Unit,
        Mono::Arrow(a, b) => Mono::arrow(rename_mono(a, mapping), rename_mono(b, mapping)),
        Mono::Set(e) => Mono::set(rename_mono(e, mapping)),
        Mono::LVal(e) => Mono::lval(rename_mono(e, mapping)),
        Mono::Obj(e) => Mono::obj(rename_mono(e, mapping)),
        Mono::Class(e) => Mono::class(rename_mono(e, mapping)),
        Mono::Record(fs) => Mono::Record(
            fs.iter()
                .map(|(l, f)| {
                    (
                        l.clone(),
                        polyview_syntax::FieldTy {
                            mutable: f.mutable,
                            ty: rename_mono(&f.ty, mapping),
                        },
                    )
                })
                .collect(),
        ),
    }
}

/// Rename variables inside a kind's field types.
pub fn rename_kind(k: &Kind, mapping: &HashMap<TyVar, TyVar>) -> Kind {
    match k {
        Kind::Univ => Kind::Univ,
        Kind::Record(reqs) => Kind::Record(
            reqs.iter()
                .map(|(l, r)| {
                    (
                        l.clone(),
                        FieldReq {
                            req: r.req,
                            ty: rename_mono(&r.ty, mapping),
                        },
                    )
                })
                .collect(),
        ),
    }
}

/// Syntactic values that are safe to generalize: literals, variables,
/// lambda abstractions, and `fix`-wrapped lambdas. Everything else —
/// record creation (new identity), set construction from arbitrary
/// expressions, applications, object and class formation — is expansive.
pub fn is_nonexpansive(e: &Expr) -> bool {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Lam(..) => true,
        Expr::Fix(_, body) => matches!(**body, Expr::Lam(..)),
        Expr::Let(_, rhs, body) => is_nonexpansive(rhs) && is_nonexpansive(body),
        // Sets are pure values (no identity); a set of values is a value.
        Expr::SetLit(es) => es.iter().all(is_nonexpansive),
        Expr::Union(a, b) => is_nonexpansive(a) && is_nonexpansive(b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{FieldTy, Label};

    #[test]
    fn generalize_quantifies_unconstrained_var() {
        let mut cx = Infer::new();
        let env = TypeEnv::new();
        let a = cx.fresh();
        let s = cx.generalize(&env, &Mono::arrow(a.clone(), a));
        assert_eq!(s.binders.len(), 1);
        assert_eq!(s.binders[0].1, Kind::Univ);
    }

    #[test]
    fn generalize_keeps_env_vars_free() {
        let mut cx = Infer::new();
        let mut env = TypeEnv::new();
        let a = cx.fresh();
        if let Mono::Var(v) = a {
            env.push(Label::new("x"), Scheme::mono(Mono::Var(v)));
        }
        let s = cx.generalize(&env, &a);
        assert!(s.binders.is_empty());
        assert!(matches!(s.body, Mono::Var(_)));
    }

    #[test]
    fn generalize_captures_kinds() {
        let mut cx = Infer::new();
        let env = TypeEnv::new();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("Income"), Mono::int()));
        let s = cx.generalize(&env, &Mono::arrow(a, Mono::int()));
        assert_eq!(s.binders.len(), 1);
        assert_eq!(
            s.binders[0].1,
            Kind::has_field(Label::new("Income"), Mono::int())
        );
    }

    #[test]
    fn generalize_includes_vars_reachable_via_kinds() {
        // a :: [[x = b]]; generalizing a must also quantify b.
        let mut cx = Infer::new();
        let env = TypeEnv::new();
        let b = cx.fresh_var_id();
        let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::Var(b)));
        let s = cx.generalize(&env, &a);
        let bound: Vec<TyVar> = s.binders.iter().map(|(v, _)| *v).collect();
        assert!(bound.contains(&b), "kind-reachable var must be quantified");
        assert_eq!(s.binders.len(), 2);
    }

    #[test]
    fn instantiate_freshens_and_carries_kinds() {
        let mut cx = Infer::new();
        let s = Scheme::poly(
            vec![(0, Kind::has_field(Label::new("x"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        let t = cx.instantiate(&s);
        match &t {
            Mono::Arrow(a, _) => match **a {
                Mono::Var(v) => {
                    assert_eq!(cx.kind_of(v), Kind::has_field(Label::new("x"), Mono::int()));
                }
                ref other => panic!("expected var, got {other:?}"),
            },
            other => panic!("expected arrow, got {other:?}"),
        }
        // Two instantiations give distinct variables.
        let t2 = cx.instantiate(&s);
        assert_ne!(t, t2);
    }

    #[test]
    fn instantiate_renames_kind_references_between_binders() {
        // ∀t0::U. ∀t1::[[x = t0]]. t1 — instantiating must keep the kind of
        // the second fresh var pointing at the first fresh var.
        let mut cx = Infer::new();
        let s = Scheme::poly(
            vec![
                (0, Kind::Univ),
                (1, Kind::has_field(Label::new("x"), Mono::Var(0))),
            ],
            Mono::pair(Mono::Var(0), Mono::Var(1)),
        );
        let t = cx.instantiate(&s);
        let fvs = t.free_vars();
        assert_eq!(fvs.len(), 2);
        let (v0, v1) = (fvs[0], fvs[1]);
        assert_eq!(
            cx.kind_of(v1),
            Kind::has_field(Label::new("x"), Mono::Var(v0))
        );
    }

    #[test]
    fn ground_mutables_check() {
        let cx = Infer::new();
        let ok = Mono::record([(Label::new("Salary"), FieldTy::mutable(Mono::int()))]);
        assert!(cx.check_ground_mutables(&ok).is_ok());
        let bad = Mono::record([(Label::new("Cell"), FieldTy::mutable(Mono::Var(1)))]);
        assert!(matches!(
            cx.check_ground_mutables(&bad),
            Err(TypeError::NonGroundMutable { .. })
        ));
        // Immutable fields may be polymorphic.
        let poly_imm = Mono::record([(Label::new("Id"), FieldTy::immutable(Mono::Var(1)))]);
        assert!(cx.check_ground_mutables(&poly_imm).is_ok());
    }

    #[test]
    fn expansiveness_classification() {
        use polyview_syntax::builder as b;
        assert!(is_nonexpansive(&b::lam("x", b::v("x"))));
        assert!(is_nonexpansive(&b::int(1)));
        assert!(is_nonexpansive(&Expr::fix("f", b::lam("x", b::v("x")))));
        // Record creation mints identity: expansive.
        assert!(!is_nonexpansive(&b::record([b::imm("x", b::int(1))])));
        assert!(!is_nonexpansive(&b::app(b::v("f"), b::int(1))));
        // Sets of values are values; sets of effectful expressions are not.
        assert!(is_nonexpansive(&b::set([b::int(1)])));
        assert!(!is_nonexpansive(&b::set([b::record([])])));
        // let of values is a value.
        assert!(is_nonexpansive(&b::let_("x", b::int(1), b::v("x"))));
        assert!(!is_nonexpansive(&b::let_("x", b::record([]), b::v("x"))));
    }
}

//! The instance relation on polytypes, used to check principality
//! (Prop. 2): `σ' ⊑ σ` holds when `σ'` can be obtained from `σ` by
//! kind-respecting instantiation of σ's bound variables (the `(inst)` rule
//! of Fig. 1 applied under fresh quantification of σ'‘s own binders).
//!
//! The checker skolemizes the candidate instance's binders into *rigid*
//! variables and matches the general scheme's body against the instance
//! body, binding only the general scheme's (flexible) variables. A flexible
//! variable with a record kind may be instantiated by:
//!
//! * a record type containing the required fields with admissible
//!   mutabilities (third kinding rule of Fig. 1), or
//! * a rigid variable whose declared kind *entails* the requirement
//!   (second kinding rule: `K(t) = [[F'…]]` with `F < F'`).

use polyview_syntax::{Kind, Mono, MutReq, Scheme, TyVar};
use std::collections::HashMap;

/// Is `specific` an instance of `general`?
pub fn instance_of(general: &Scheme, specific: &Scheme) -> bool {
    let max_id = scheme_max_var(general).max(scheme_max_var(specific));
    let mut next = max_id + 1;

    // Freshen the general scheme's binders as flexible variables.
    let mut flex_map = HashMap::new();
    for (v, _) in &general.binders {
        flex_map.insert(*v, next);
        next += 1;
    }
    let mut m = Matcher::default();
    for (v, k) in &general.binders {
        let nk = crate::generalize::rename_kind(k, &flex_map);
        m.fkinds.insert(flex_map[v], nk);
    }
    let gen_body = crate::generalize::rename_mono(&general.body, &flex_map);

    // Skolemize the specific scheme's binders as rigid variables.
    let mut rigid_map = HashMap::new();
    for (v, _) in &specific.binders {
        rigid_map.insert(*v, next);
        next += 1;
    }
    for (v, k) in &specific.binders {
        let nk = crate::generalize::rename_kind(k, &rigid_map);
        m.rkinds.insert(rigid_map[v], nk);
    }
    let spec_body = crate::generalize::rename_mono(&specific.body, &rigid_map);

    m.mtch(&gen_body, &spec_body)
}

/// Are the two schemes equivalent (instances of each other)?
pub fn equivalent(a: &Scheme, b: &Scheme) -> bool {
    instance_of(a, b) && instance_of(b, a)
}

fn scheme_max_var(s: &Scheme) -> TyVar {
    let mut max = 0;
    for v in s.free_vars() {
        max = max.max(v);
    }
    for (v, k) in &s.binders {
        max = max.max(*v);
        for u in k.free_vars() {
            max = max.max(u);
        }
    }
    for v in s.body.free_vars() {
        max = max.max(v);
    }
    max
}

#[derive(Default)]
struct Matcher {
    subst: HashMap<TyVar, Mono>,
    fkinds: HashMap<TyVar, Kind>,
    rkinds: HashMap<TyVar, Kind>,
}

impl Matcher {
    fn is_flexible(&self, v: TyVar) -> bool {
        self.fkinds.contains_key(&v) || self.subst.contains_key(&v)
    }

    fn shallow(&self, t: &Mono) -> Mono {
        let mut cur = t.clone();
        loop {
            match cur {
                Mono::Var(v) => match self.subst.get(&v) {
                    Some(next) => cur = next.clone(),
                    None => return Mono::Var(v),
                },
                other => return other,
            }
        }
    }

    fn occurs(&self, v: TyVar, t: &Mono) -> bool {
        match self.shallow(t) {
            Mono::Var(u) => {
                if u == v {
                    return true;
                }
                if let Some(Kind::Record(reqs)) = self.fkinds.get(&u) {
                    return reqs.values().any(|r| self.occurs(v, &r.ty));
                }
                false
            }
            Mono::Base(_) | Mono::Unit => false,
            Mono::Arrow(a, b) => self.occurs(v, &a) || self.occurs(v, &b),
            Mono::Set(e) | Mono::LVal(e) | Mono::Obj(e) | Mono::Class(e) => self.occurs(v, &e),
            Mono::Record(fs) => fs.values().any(|f| self.occurs(v, &f.ty)),
        }
    }

    fn mtch(&mut self, a: &Mono, b: &Mono) -> bool {
        let a = self.shallow(a);
        let b = self.shallow(b);
        match (a, b) {
            (Mono::Var(v), Mono::Var(u)) if v == u => true,
            (Mono::Var(v), t) if self.is_flexible(v) => self.bind(v, t),
            (t, Mono::Var(v)) if self.is_flexible(v) => self.bind(v, t),
            // Two distinct rigid (or free) variables never match.
            (Mono::Var(_), _) | (_, Mono::Var(_)) => false,
            (Mono::Base(x), Mono::Base(y)) => x == y,
            (Mono::Unit, Mono::Unit) => true,
            (Mono::Arrow(a1, r1), Mono::Arrow(a2, r2)) => {
                self.mtch(&a1, &a2) && self.mtch(&r1, &r2)
            }
            (Mono::Set(x), Mono::Set(y))
            | (Mono::LVal(x), Mono::LVal(y))
            | (Mono::Obj(x), Mono::Obj(y))
            | (Mono::Class(x), Mono::Class(y)) => self.mtch(&x, &y),
            (Mono::Record(f1), Mono::Record(f2)) => {
                if f1.len() != f2.len() || !f1.keys().eq(f2.keys()) {
                    return false;
                }
                f1.iter().all(|(l, x)| {
                    let y = &f2[l];
                    x.mutable == y.mutable && {
                        let (xt, yt) = (x.ty.clone(), y.ty.clone());
                        self.mtch(&xt, &yt)
                    }
                })
            }
            _ => false,
        }
    }

    /// Bind flexible `v` to `t`, discharging `v`'s kind. `t` is shallow.
    fn bind(&mut self, v: TyVar, t: Mono) -> bool {
        if let Mono::Var(u) = t {
            if u == v {
                return true;
            }
            if self.is_flexible(u) {
                return self.merge_flexible(v, u);
            }
        }
        if self.occurs(v, &t) {
            return false;
        }
        let kind = self.fkinds.get(&v).cloned().unwrap_or(Kind::Univ);
        match kind {
            Kind::Univ => {
                self.subst.insert(v, t);
                true
            }
            Kind::Record(reqs) => match &t {
                Mono::Record(fields) => {
                    self.subst.insert(v, t.clone());
                    let fields = fields.clone();
                    for (l, req) in reqs {
                        let f = match fields.get(&l) {
                            Some(f) => f.clone(),
                            None => return false,
                        };
                        if !req.req.admits(f.mutable) {
                            return false;
                        }
                        if !self.mtch(&req.ty, &f.ty) {
                            return false;
                        }
                    }
                    true
                }
                Mono::Var(r) => {
                    // Rigid variable: its declared kind must entail every
                    // requirement (second kinding rule of Fig. 1).
                    let rk = self.rkinds.get(r).cloned().unwrap_or(Kind::Univ);
                    let rreqs = match rk {
                        Kind::Record(rr) => rr,
                        Kind::Univ => return false,
                    };
                    self.subst.insert(v, t.clone());
                    for (l, req) in reqs {
                        let rr = match rreqs.get(&l) {
                            Some(rr) => rr.clone(),
                            None => return false,
                        };
                        // Flexible requires mutable ⟹ rigid must promise
                        // mutable; flexible Any is satisfied either way.
                        if req.req == MutReq::Mutable && rr.req != MutReq::Mutable {
                            return false;
                        }
                        if !self.mtch(&req.ty, &rr.ty) {
                            return false;
                        }
                    }
                    true
                }
                _ => false,
            },
        }
    }

    /// Merge two flexible variables: link `u` to `v`, joining kinds.
    fn merge_flexible(&mut self, v: TyVar, u: TyVar) -> bool {
        let kv = self.fkinds.get(&v).cloned().unwrap_or(Kind::Univ);
        let ku = self.fkinds.get(&u).cloned().unwrap_or(Kind::Univ);
        self.subst.insert(u, Mono::Var(v));
        match (kv, ku) {
            (Kind::Univ, k) | (k, Kind::Univ) => {
                self.fkinds.insert(v, k);
                true
            }
            (Kind::Record(mut rv), Kind::Record(ru)) => {
                let mut pending = Vec::new();
                for (l, req_u) in ru {
                    match rv.get_mut(&l) {
                        Some(req_v) => {
                            req_v.req = req_v.req.join(req_u.req);
                            pending.push((req_v.ty.clone(), req_u.ty));
                        }
                        None => {
                            rv.insert(l, req_u);
                        }
                    }
                }
                self.fkinds.insert(v, Kind::Record(rv));
                pending.iter().all(|(a, b)| self.mtch(a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use polyview_syntax::{FieldReq, Label};

    fn univ(v: TyVar) -> (TyVar, Kind) {
        (v, Kind::Univ)
    }

    #[test]
    fn mono_instance_of_forall() {
        // int → int is an instance of ∀t::U. t → t.
        let gen = Scheme::poly(vec![univ(0)], Mono::arrow(Mono::Var(0), Mono::Var(0)));
        let spec = Scheme::mono(Mono::arrow(Mono::int(), Mono::int()));
        assert!(instance_of(&gen, &spec));
        assert!(!instance_of(&spec, &gen));
    }

    #[test]
    fn non_instance_rejected() {
        // int → bool is NOT an instance of ∀t. t → t.
        let gen = Scheme::poly(vec![univ(0)], Mono::arrow(Mono::Var(0), Mono::Var(0)));
        let spec = Scheme::mono(Mono::arrow(Mono::int(), Mono::bool()));
        assert!(!instance_of(&gen, &spec));
    }

    #[test]
    fn alpha_equivalent_schemes_are_equivalent() {
        let a = Scheme::poly(vec![univ(0)], Mono::arrow(Mono::Var(0), Mono::Var(0)));
        let b = Scheme::poly(vec![univ(7)], Mono::arrow(Mono::Var(7), Mono::Var(7)));
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn kinded_binder_instantiated_by_record() {
        // ∀t::[[Income = int]]. t → int  ⊒  [Income = int, Age = int] → int
        let gen = Scheme::poly(
            vec![(0, Kind::has_field(Label::new("Income"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        let spec = Scheme::mono(Mono::arrow(
            Mono::record_imm([
                (Label::new("Income"), Mono::int()),
                (Label::new("Age"), Mono::int()),
            ]),
            Mono::int(),
        ));
        assert!(instance_of(&gen, &spec));
    }

    #[test]
    fn kinded_binder_rejects_record_without_field() {
        let gen = Scheme::poly(
            vec![(0, Kind::has_field(Label::new("Income"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        let spec = Scheme::mono(Mono::arrow(
            Mono::record_imm([(Label::new("Age"), Mono::int())]),
            Mono::int(),
        ));
        assert!(!instance_of(&gen, &spec));
    }

    #[test]
    fn kinded_binder_instantiated_by_kinded_binder() {
        // ∀t::[[x = int]]. t → int  ⊒  ∀t::[[x = int, y = bool]]. t → int
        let gen = Scheme::poly(
            vec![(0, Kind::has_field(Label::new("x"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        let spec = Scheme::poly(
            vec![(
                0,
                Kind::Record(
                    [
                        (Label::new("x"), FieldReq::any(Mono::int())),
                        (Label::new("y"), FieldReq::any(Mono::bool())),
                    ]
                    .into_iter()
                    .collect(),
                ),
            )],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        assert!(instance_of(&gen, &spec));
        assert!(!instance_of(&spec, &gen));
    }

    #[test]
    fn mutable_requirement_direction() {
        // ∀t::[[x = int]] admits a rigid var promising x := int …
        let gen_any = Scheme::poly(
            vec![(0, Kind::has_field(Label::new("x"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        let spec_mut = Scheme::poly(
            vec![(0, Kind::has_mutable_field(Label::new("x"), Mono::int()))],
            Mono::arrow(Mono::Var(0), Mono::int()),
        );
        assert!(instance_of(&gen_any, &spec_mut));
        // … but ∀t::[[x := int]] does not admit a rigid var promising only
        // x = int.
        assert!(!instance_of(&spec_mut, &gen_any));
        // And a record with an immutable x does not satisfy [[x := int]].
        let spec_rec = Scheme::mono(Mono::arrow(
            Mono::record_imm([(Label::new("x"), Mono::int())]),
            Mono::int(),
        ));
        assert!(!instance_of(&spec_mut, &spec_rec));
        assert!(instance_of(&gen_any, &spec_rec));
    }

    #[test]
    fn repeated_variable_must_instantiate_consistently() {
        // ∀t. t → t ⋢ via t ↦ int on the left and bool on the right.
        let gen = Scheme::poly(vec![univ(0)], Mono::arrow(Mono::Var(0), Mono::Var(0)));
        let ok = Scheme::poly(vec![univ(1)], Mono::arrow(Mono::Var(1), Mono::Var(1)));
        assert!(instance_of(&gen, &ok));
        let bad = Scheme::poly(
            vec![univ(1), univ(2)],
            Mono::arrow(Mono::Var(1), Mono::Var(2)),
        );
        assert!(!instance_of(&gen, &bad));
        // The other direction holds: ∀t1 t2. t1→t2 ⊒ ∀t. t→t.
        assert!(instance_of(&bad, &gen));
    }

    #[test]
    fn instance_under_type_constructors() {
        // ∀t. {obj(t)} → t ⊒ {obj(int)} → int.
        let gen = Scheme::poly(
            vec![univ(0)],
            Mono::arrow(Mono::set(Mono::obj(Mono::Var(0))), Mono::Var(0)),
        );
        let spec = Scheme::mono(Mono::arrow(Mono::set(Mono::obj(Mono::int())), Mono::int()));
        assert!(instance_of(&gen, &spec));
    }

    #[test]
    fn occurs_prevents_cyclic_instantiation() {
        // ∀t. t → t cannot be instantiated to t ↦ {t}.
        let gen = Scheme::poly(vec![univ(0)], Mono::arrow(Mono::Var(0), Mono::Var(0)));
        let spec = Scheme::poly(
            vec![univ(1)],
            Mono::arrow(Mono::Var(1), Mono::set(Mono::Var(1))),
        );
        assert!(!instance_of(&gen, &spec));
    }
}

//! Per-node inference results consumed by the compile tier.
//!
//! The lowering pass (`polyview-trans`) turns `dot`/`extract`/`update`
//! into offset-resolved forms, but the offsets come from *types*: the
//! operand's record type fixes the canonical field order, and a kinded
//! record variable in a binding's scheme names the index parameters a
//! polymorphic function must abstract over. Inference records exactly
//! that information here, keyed by AST node address — nodes must
//! therefore be pinned (behind an `Rc`) before inference and the *same*
//! nodes handed to the lowering pass.
//!
//! Recording is opt-in ([`crate::Infer::enable_table`]); the pure
//! type-checking paths pay nothing. Types are stored unresolved during
//! inference and resolved against the final substitution when the table
//! is taken ([`crate::Infer::take_table`]), so consumers never need the
//! inference context.

use polyview_syntax::{Expr, Kind, Mono, TyVar};
use std::collections::HashMap;

/// Identity of an AST node: its address. Valid only while the tree it
/// came from is alive and unmoved (the prepare pipeline keeps statement
/// ASTs behind `Rc`).
pub type NodeId = usize;

/// The node id of an expression.
pub fn node_id(e: &Expr) -> NodeId {
    e as *const Expr as usize
}

/// Inference results addressed by AST node, produced by running
/// inference with recording enabled.
#[derive(Debug, Default)]
pub struct TypeTable {
    /// `Dot`/`Extract`/`Update` node → the record operand's type. When it
    /// resolves to a concrete `Mono::Record`, the field offset is the
    /// label's rank in the type (record types are width-exact, so every
    /// runtime value agrees); when it resolves to a kinded variable, the
    /// offset must come from an index parameter.
    pub operand_types: HashMap<NodeId, Mono>,
    /// `Var` node → `(scheme binder, instantiation type)` pairs in binder
    /// order: what each quantified variable of the variable's scheme was
    /// instantiated to at this use site. This is where index *arguments*
    /// are synthesized for calls to index-abstracted functions.
    pub instantiations: HashMap<NodeId, Vec<(TyVar, Mono)>>,
    /// `Let` node → the binders of the scheme its right-hand side was
    /// generalized to (empty when the value restriction forced a
    /// monotype). Kinded binders here are what make a *local* binding a
    /// candidate for index abstraction.
    pub let_schemes: HashMap<NodeId, Vec<(TyVar, Kind)>>,
}

//! Golden principal-type tests through the surface syntax: the inference
//! engine's output for characteristic programs of every layer, pinned as
//! strings (display renames binders canonically, so these are stable).

use polyview_parser::parse_expr;
use polyview_types::{builtins_sig, Infer};

fn principal(src: &str) -> String {
    let e = parse_expr(src).expect("parses");
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    cx.infer_scheme(&mut env, &e)
        .unwrap_or_else(|err| panic!("ill-typed ({err}): {src}"))
        .to_string()
}

fn rejected(src: &str) {
    let e = parse_expr(src).expect("parses");
    let mut cx = Infer::new();
    let mut env = builtins_sig::builtin_env();
    assert!(
        cx.infer_scheme(&mut env, &e).is_err(),
        "expected rejection: {src}"
    );
}

#[test]
fn core_polymorphism() {
    assert_eq!(principal("fn x => x"), "∀t1::U. t1 -> t1");
    assert_eq!(
        principal("fn f => fn x => f (f x)"),
        "∀t1::U. (t1 -> t1) -> t1 -> t1"
    );
    assert_eq!(
        principal("fn x => fn y => x"),
        "∀t1::U.∀t2::U. t1 -> t2 -> t1"
    );
    assert_eq!(principal("{}"), "∀t1::U. {t1}");
    assert_eq!(principal("fn s => union(s, s)"), "∀t1::U. {t1} -> {t1}");
}

#[test]
fn record_polymorphism_kinds() {
    // (Binder numbering follows first appearance during printing, so the
    // record-kinded binder prints first with its field type named t2.)
    assert_eq!(
        principal("fn x => x.Name"),
        "∀t1::[[Name = t2]].∀t2::U. t1 -> t2"
    );
    assert_eq!(
        principal("fn x => x.Name ^ x.Name"),
        "∀t1::[[Name = string]]. t1 -> string"
    );
    // Two field constraints merge into one kind.
    assert_eq!(
        principal("fn x => x.A + x.B"),
        "∀t1::[[A = int, B = int]]. t1 -> int"
    );
    // update imposes a mutable-field requirement.
    assert_eq!(
        principal("fn x => update(x, Salary, 0)"),
        "∀t1::[[Salary := int]]. t1 -> unit"
    );
    // extract yields an L-value type.
    assert_eq!(
        principal("fn x => extract(x, Salary)"),
        "∀t1::[[Salary := t2]].∀t2::U. t1 -> L(t2)"
    );
}

#[test]
fn hom_is_fully_polymorphic() {
    assert_eq!(
        principal("fn s => fn f => fn op => fn z => hom(s, f, op, z)"),
        "∀t1::U.∀t2::U.∀t3::U. {t1} -> (t1 -> t2) -> (t2 -> t3 -> t3) -> t3 -> t3"
    );
}

#[test]
fn view_layer_types() {
    assert_eq!(principal("fn r => IDView(r)"), "∀t1::[[]]. t1 -> obj(t1)");
    assert_eq!(
        principal("fn o => fn f => o as f"),
        "∀t1::U.∀t2::U. obj(t1) -> (t1 -> t2) -> obj(t2)"
    );
    assert_eq!(
        principal("fn f => fn o => query(f, o)"),
        "∀t1::U.∀t2::U. (t1 -> t2) -> obj(t1) -> t2"
    );
    assert_eq!(
        principal("fn a => fn b => fuse(a, b)"),
        "∀t1::U.∀t2::U. obj(t1) -> obj(t2) -> {obj([1 = t1, 2 = t2])}"
    );
    assert_eq!(
        principal("fn a => fn b => relobj(x = a, y = b)"),
        "∀t1::U.∀t2::U. obj(t1) -> obj(t2) -> obj([x = t1, y = t2])"
    );
    assert_eq!(
        principal("fn a => fn b => objeq(a, b)"),
        "∀t1::U.∀t2::U. obj(t1) -> obj(t2) -> bool"
    );
}

#[test]
fn class_layer_types() {
    assert_eq!(
        principal("fn s => class s end"),
        "∀t1::U. {obj(t1)} -> class(t1)"
    );
    assert_eq!(
        principal("fn c => fn o => insert(c, o)"),
        "∀t1::U. class(t1) -> obj(t1) -> unit"
    );
    assert_eq!(
        principal("fn f => fn c => cquery(f, c)"),
        "∀t1::U.∀t2::U. ({obj(t1)} -> t2) -> class(t1) -> t2"
    );
    // A generic "view class" combinator: any class, any view, any pred.
    assert_eq!(
        principal(
            "fn c => fn view => fn pred => \
             class {} include c as view where pred end"
        ),
        "∀t1::U.∀t2::U. class(t1) -> (t1 -> t2) -> (obj(t1) -> bool) -> class(t2)"
    );
}

#[test]
fn select_is_the_papers_polymorphic_view_query() {
    // select as … from … where … over any set of objects whose view
    // exposes Name.
    let s = principal("fn S => select as fn x => [N = x.Name] from S where fn o => true");
    assert_eq!(s, "∀t1::[[Name = t2]].∀t2::U. {obj(t1)} -> {obj([N = t2])}");
}

#[test]
fn lvalue_types_do_not_leak() {
    // L(τ) cannot be consumed where a τ is expected…
    rejected("fn x => extract(x, F) + 1");
    rejected("fn x => extract(x, F) = 1");
    // …but flows into both mutable and immutable fields (the john example),
    // including via a let binding.
    assert_eq!(
        principal("fn x => [copy := extract(x, F)]"),
        "∀t1::[[F := t2]].∀t2::U. t1 -> [copy := t2]"
    );
    assert_eq!(
        principal("fn x => [copy = extract(x, F)]"),
        "∀t1::[[F := t2]].∀t2::U. t1 -> [copy = t2]"
    );
    assert_eq!(
        principal("fn x => let lv = extract(x, F) in [copy := lv] end"),
        "∀t1::[[F := t2]].∀t2::U. t1 -> [copy := t2]"
    );
}

#[test]
fn mutability_requirements_propagate_through_composition() {
    // A function updating through a view requires the *view type* to have
    // the mutable field — composing with a view that re-exposes the field
    // immutably must therefore be rejected.
    rejected(
        "fn joe => query(fn x => update(x, Income, 1), \
                         joe as fn y => [Income = y.Salary])",
    );
    // Re-exposing via extract keeps it updatable.
    assert_eq!(
        principal(
            "fn joe => query(fn x => update(x, Income, 1), \
                             joe as fn y => [Income := extract(y, Salary)])"
        ),
        "∀t1::[[Salary := int]]. obj(t1) -> unit"
    );
}

#[test]
fn shadowing_and_let_polymorphism() {
    assert_eq!(
        principal("let id = fn x => x in (id 1, id \"s\") end"),
        "[1 = int, 2 = string]"
    );
    // Monomorphic lambda-bound variables stay monomorphic.
    rejected("(fn id => (id 1, id \"s\")) (fn x => x)");
}

#[test]
fn recursive_function_types() {
    assert_eq!(
        principal("fix f => fn n => if n = 0 then 0 else n + f (n - 1)"),
        "int -> int"
    );
    // Polymorphic recursion is not inferred (ML-style): the result is the
    // monomorphic instance.
    assert_eq!(
        principal("fix len => fn s => hom(s, fn x => 1, fn a => fn b => a + b, 0)"),
        "∀t1::U. {t1} -> int"
    );
}

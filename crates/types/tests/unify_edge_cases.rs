//! Edge cases of kinded unification and the instance relation that the
//! inline unit tests don't reach: kind constraints flowing through
//! `obj`/`class` constructors, chained merges, occurs through kinds, and
//! instance checks with interdependent binders.

use polyview_syntax::{FieldReq, FieldTy, Kind, Label, Mono, MutReq, Scheme};
use polyview_types::{instance, Infer, TypeError};

fn rec(fields: Vec<(&str, bool, Mono)>) -> Mono {
    Mono::Record(
        fields
            .into_iter()
            .map(|(l, m, t)| (Label::new(l), FieldTy { mutable: m, ty: t }))
            .collect(),
    )
}

#[test]
fn kind_constraint_through_obj_constructor() {
    // obj(a) ~ obj([x = int]) discharges a's kind against the record.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let target = Mono::obj(rec(vec![
        ("x", false, Mono::int()),
        ("y", false, Mono::bool()),
    ]));
    cx.unify(&Mono::obj(a.clone()), &target).expect("unifies");
    assert_eq!(cx.resolve(&Mono::obj(a)), cx.resolve(&target));
}

#[test]
fn kind_violation_through_class_constructor() {
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_mutable_field(Label::new("x"), Mono::int()));
    let target = Mono::class(rec(vec![("x", false, Mono::int())]));
    assert!(matches!(
        cx.unify(&Mono::class(a), &target),
        Err(TypeError::MutabilityViolation { .. })
    ));
}

#[test]
fn three_way_merge_chain() {
    // a::[[x=int]] ~ b::[[y=bool]] ~ c::[[z=string]]; discharge against a
    // record with all three.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let b = cx.fresh_with_kind(Kind::has_field(Label::new("y"), Mono::bool()));
    let c = cx.fresh_with_kind(Kind::has_field(Label::new("z"), Mono::str()));
    cx.unify(&a, &b).expect("merge ab");
    cx.unify(&b, &c).expect("merge bc");
    let full = rec(vec![
        ("x", false, Mono::int()),
        ("y", true, Mono::bool()),
        ("z", false, Mono::str()),
    ]);
    cx.unify(&c, &full).expect("discharge");
    assert_eq!(cx.resolve(&a), cx.resolve(&full));

    // And a record missing z fails through the same chain.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let b = cx.fresh_with_kind(Kind::has_field(Label::new("z"), Mono::str()));
    cx.unify(&a, &b).expect("merge");
    let partial = rec(vec![("x", false, Mono::int())]);
    assert!(cx.unify(&a, &partial).is_err());
}

#[test]
fn conflicting_field_types_across_merge() {
    // a::[[x = int]] ~ b::[[x = bool]] must fail on the common field.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let b = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::bool()));
    assert!(matches!(cx.unify(&a, &b), Err(TypeError::Mismatch(..))));
}

#[test]
fn occurs_check_via_kind_field() {
    // a::[[x = {a}]] — binding a to any record containing x : {a} is an
    // infinite type and must be caught.
    let mut cx = Infer::new();
    let a = cx.fresh_var_id();
    cx.set_kind(a, Kind::has_field(Label::new("x"), Mono::set(Mono::Var(a))));
    let target = rec(vec![("x", false, Mono::set(Mono::Var(a)))]);
    assert!(matches!(
        cx.unify(&Mono::Var(a), &target),
        Err(TypeError::Occurs(..))
    ));
}

#[test]
fn lval_types_unify_congruently() {
    let mut cx = Infer::new();
    let a = cx.fresh();
    cx.unify(&Mono::lval(a.clone()), &Mono::lval(Mono::int()))
        .expect("congruence");
    assert_eq!(cx.resolve(&a), Mono::int());
    assert!(cx.unify(&Mono::lval(Mono::int()), &Mono::int()).is_err());
}

#[test]
fn mutable_req_survives_merge_then_discharge() {
    // Merge Any + Mutable, then try an immutable record: must fail.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let b = cx.fresh_with_kind(Kind::has_mutable_field(Label::new("x"), Mono::int()));
    cx.unify(&a, &b).expect("merge");
    let imm = rec(vec![("x", false, Mono::int())]);
    assert!(matches!(
        cx.unify(&a, &imm),
        Err(TypeError::MutabilityViolation { .. })
    ));
    // The mutable record succeeds.
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::has_field(Label::new("x"), Mono::int()));
    let b = cx.fresh_with_kind(Kind::has_mutable_field(Label::new("x"), Mono::int()));
    cx.unify(&a, &b).expect("merge");
    let mt = rec(vec![("x", true, Mono::int())]);
    cx.unify(&a, &mt).expect("mutable record admissible");
}

#[test]
fn instance_with_dependent_binder_kinds() {
    // ∀t1::U. ∀t2::[[x = t1]]. t2 → t1   ⊒   ∀t::[[x = int]]. t → int
    let gen = Scheme::poly(
        vec![
            (0, Kind::Univ),
            (1, Kind::has_field(Label::new("x"), Mono::Var(0))),
        ],
        Mono::arrow(Mono::Var(1), Mono::Var(0)),
    );
    let spec = Scheme::poly(
        vec![(5, Kind::has_field(Label::new("x"), Mono::int()))],
        Mono::arrow(Mono::Var(5), Mono::int()),
    );
    assert!(instance::instance_of(&gen, &spec));
    assert!(!instance::instance_of(&spec, &gen));
}

#[test]
fn instance_rejects_wrong_field_type_through_rigid_kind() {
    // ∀t::[[x = int]]. t → t   ⋣ by   ∀u::[[x = bool]]. u → u.
    let gen = Scheme::poly(
        vec![(0, Kind::has_field(Label::new("x"), Mono::int()))],
        Mono::arrow(Mono::Var(0), Mono::Var(0)),
    );
    let spec = Scheme::poly(
        vec![(1, Kind::has_field(Label::new("x"), Mono::bool()))],
        Mono::arrow(Mono::Var(1), Mono::Var(1)),
    );
    assert!(!instance::instance_of(&gen, &spec));
}

#[test]
fn instance_through_obj_and_class_constructors() {
    // ∀t::[[Name = string]]. class(t) → {obj(t)} generalizes the concrete
    // staff instance.
    let gen = Scheme::poly(
        vec![(0, Kind::has_field(Label::new("Name"), Mono::str()))],
        Mono::arrow(
            Mono::class(Mono::Var(0)),
            Mono::set(Mono::obj(Mono::Var(0))),
        ),
    );
    let staff = rec(vec![
        ("Name", false, Mono::str()),
        ("Age", false, Mono::int()),
    ]);
    let spec = Scheme::mono(Mono::arrow(
        Mono::class(staff.clone()),
        Mono::set(Mono::obj(staff)),
    ));
    assert!(instance::instance_of(&gen, &spec));
    // But not for a record without Name.
    let anon = rec(vec![("Age", false, Mono::int())]);
    let bad = Scheme::mono(Mono::arrow(
        Mono::class(anon.clone()),
        Mono::set(Mono::obj(anon)),
    ));
    assert!(!instance::instance_of(&gen, &bad));
}

#[test]
fn merged_kind_joins_field_sets() {
    let mut cx = Infer::new();
    let a = cx.fresh_with_kind(Kind::Record(
        [
            (Label::new("x"), FieldReq::any(Mono::int())),
            (Label::new("y"), FieldReq::mutable(Mono::bool())),
        ]
        .into_iter()
        .collect(),
    ));
    let b = cx.fresh_with_kind(Kind::Record(
        [
            (Label::new("y"), FieldReq::any(Mono::bool())),
            (Label::new("z"), FieldReq::any(Mono::str())),
        ]
        .into_iter()
        .collect(),
    ));
    cx.unify(&a, &b).expect("merge");
    let v = match cx.shallow(&a) {
        Mono::Var(v) => v,
        other => panic!("expected var, got {other:?}"),
    };
    match cx.kind_of(v) {
        Kind::Record(reqs) => {
            assert_eq!(reqs.len(), 3);
            assert_eq!(reqs[&Label::new("y")].req, MutReq::Mutable);
            assert_eq!(reqs[&Label::new("x")].req, MutReq::Any);
        }
        Kind::Univ => panic!("kind lost in merge"),
    }
}

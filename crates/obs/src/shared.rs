//! Thread-safe telemetry: the atomic twins of the `Rc`-based metrics and
//! sinks, for layers that span threads (the serving pool).
//!
//! The engine-side registry (`crate::metrics`) is deliberately
//! single-threaded — `Rc<Cell<_>>` handles cost an increment, not an
//! atomic. A replicated pool is different: a request's life crosses the
//! router thread, a worker thread, and whichever thread waits on the
//! ticket, so anything that observes it must be `Send + Sync`. This module
//! provides exactly that, still std-only:
//!
//! * [`SharedCounter`] / [`SharedGauge`] — `AtomicU64`-backed twins of
//!   [`crate::Counter`] / [`crate::Gauge`].
//! * [`SharedHistogram`] — the same log2 buckets as [`crate::Histogram`]
//!   ([`crate::metrics::bucket_index`]), all-atomic, producing the same
//!   [`HistogramSnapshot`] (so `quantile`/`mean` are shared code).
//! * [`SharedRegistry`] — get-or-create metric naming with the same
//!   `to_json_lines` contract as [`crate::Registry`] (one JSON object per
//!   line; counters, then gauges, then histograms, each sorted by name).
//! * [`EventSink`] + [`EventRecord`] — cross-thread trace events. An
//!   `EventRecord` is a [`crate::SpanRecord`] extended with `trace_id` and
//!   `parent` correlation fields; its JSON keeps `"kind":"span"` so span
//!   tooling consumes both streams uniformly.
//! * [`SharedClock`] — the `Send + Sync` time source; [`SharedWallClock`]
//!   for production, [`SharedManualClock`] (atomic, step-advance,
//!   read-counting) for deterministic tests.
//!
//! Consistency note: a [`SharedHistogram`] observation updates five atomics
//! without a lock, so a concurrent snapshot is *monotone* (every recorded
//! field is a value that existed) but not a consistent cut; under
//! quiescence — barriers, test assertions — it is exact.

use crate::json_escape;
use crate::metrics::{
    bucket_index, json_histogram_line, json_metric_value_line, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named monotone counter shared across threads. Cloning shares the
/// underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct SharedCounter(Arc<AtomicU64>);

impl SharedCounter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value (mirroring a counter owned by another layer at
    /// export time — same contract as [`crate::Counter::set`]).
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level shared across threads (queue depth, replay lag).
/// Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct SharedGauge(Arc<AtomicU64>);

impl SharedGauge {
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement: a gauge never wraps below zero.
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct SharedHistogramData {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for SharedHistogramData {
    fn default() -> Self {
        SharedHistogramData {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The thread-safe twin of [`crate::Histogram`]: identical log2 buckets,
/// identical snapshot type, atomic updates. Cloning shares the data.
#[derive(Clone, Debug, Default)]
pub struct SharedHistogram(Arc<SharedHistogramData>);

impl SharedHistogram {
    pub fn observe(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        // Saturating, matching `crate::Histogram` — `fetch_add` would wrap.
        let _ = h
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Snapshot into the same [`HistogramSnapshot`] the single-threaded
    /// histogram produces (shared `mean`/`quantile` estimation).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let c = c.load(Ordering::Relaxed);
                    (c > 0).then_some((i, c))
                })
                .collect(),
        }
    }

    fn reset(&self) {
        let h = &self.0;
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A thread-safe registry of named shared metrics, with the same
/// get-or-create handle semantics and the same JSON-lines export contract
/// as [`crate::Registry`]. The maps are behind one mutex, taken only when
/// *resolving* a handle or exporting — never per observation.
#[derive(Debug, Default)]
pub struct SharedRegistry {
    inner: Mutex<SharedRegistryMaps>,
}

#[derive(Debug, Default)]
struct SharedRegistryMaps {
    counters: BTreeMap<String, SharedCounter>,
    gauges: BTreeMap<String, SharedGauge>,
    histograms: BTreeMap<String, SharedHistogram>,
}

impl SharedRegistry {
    pub fn new() -> Self {
        SharedRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedRegistryMaps> {
        // Poison-tolerant: metric maps are only ever inserted into, so a
        // panic mid-insert leaves them structurally sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn counter(&self, name: &str) -> SharedCounter {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> SharedGauge {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> SharedHistogram {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a counter (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).map(|c| c.get()).unwrap_or(0)
    }

    /// Current value of a gauge (0 if it was never created).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.lock().gauges.get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Zero every metric in place; existing handles stay live.
    pub fn reset(&self) {
        let maps = self.lock();
        for c in maps.counters.values() {
            c.set(0);
        }
        for g in maps.gauges.values() {
            g.set(0);
        }
        for h in maps.histograms.values() {
            h.reset();
        }
    }

    /// Capture every metric's current value into a point-in-time
    /// [`crate::window::RegistrySnapshot`] stamped `at_ns`.
    ///
    /// The timestamp is **caller-supplied**, not read from a clock here:
    /// windowing is a reader-side view, and a layer that never ticks its
    /// window must be able to prove it performs zero clock reads (the
    /// [`SharedManualClock::reads`] discipline).
    pub fn snapshot(&self, at_ns: u64) -> crate::window::RegistrySnapshot {
        let maps = self.lock();
        crate::window::RegistrySnapshot {
            at_ns,
            counters: maps
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: maps
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: maps
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Same format contract as [`crate::Registry::to_json_lines`]: one JSON
    /// object per line — counters, then gauges, then histograms, each
    /// sorted by name.
    pub fn to_json_lines(&self) -> String {
        let maps = self.lock();
        let mut out = String::new();
        for (name, c) in maps.counters.iter() {
            json_metric_value_line(&mut out, "counter", name, c.get());
        }
        for (name, g) in maps.gauges.iter() {
            json_metric_value_line(&mut out, "gauge", name, g.get());
        }
        for (name, h) in maps.histograms.iter() {
            json_histogram_line(&mut out, name, &h.snapshot());
        }
        out
    }
}

/// One cross-thread trace event: a [`crate::SpanRecord`] extended with the
/// correlation fields that stitch a request's life together across
/// threads.
///
/// * `trace_id` — the request this event belongs to (0 = no request, e.g.
///   background replay work).
/// * `parent` — set on events emitted *inside* another component on behalf
///   of the request (a worker's engine phase spans carry the owning
///   request id here); `None` on top-level lifecycle events.
///
/// Instantaneous lifecycle stamps are events with `dur_ns == 0`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    pub name: String,
    pub trace_id: u64,
    pub parent: Option<u64>,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(String, u64)>,
}

impl EventRecord {
    /// Render as a single-line JSON object. The shape is
    /// [`crate::SpanRecord::to_json`]'s (`"kind":"span"`, flat integer
    /// attributes) plus `trace_id` and — when present — `parent`, so span
    /// tooling reads both streams.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"kind\":\"span\",\"name\":\"");
        json_escape(&self.name, &mut out);
        out.push_str(&format!("\",\"trace_id\":{}", self.trace_id));
        if let Some(p) = self.parent {
            out.push_str(&format!(",\"parent\":{p}"));
        }
        out.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{}",
            self.start_ns, self.dur_ns
        ));
        for (k, v) in &self.attrs {
            out.push_str(",\"");
            json_escape(k, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
        out
    }
}

/// A thread-safe consumer of trace events — the `Send + Sync` twin of
/// [`crate::TraceSink`]. Emission must never fail the traced request.
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &EventRecord);
}

/// Discards every event.
#[derive(Debug, Default)]
pub struct NullEventSink;

impl EventSink for NullEventSink {
    fn emit(&self, _event: &EventRecord) {}
}

/// Keeps every event in memory, in emission order — the test sink.
#[derive(Debug, Default)]
pub struct CollectingEventSink {
    events: Mutex<Vec<EventRecord>>,
}

impl CollectingEventSink {
    pub fn new() -> Self {
        CollectingEventSink::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<EventRecord>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn len(&self) -> usize {
        self.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// A copy of the collected events, in emission order.
    pub fn events(&self) -> Vec<EventRecord> {
        self.lock().clone()
    }

    /// Drain the collected events.
    pub fn take(&self) -> Vec<EventRecord> {
        std::mem::take(&mut *self.lock())
    }
}

impl EventSink for CollectingEventSink {
    fn emit(&self, event: &EventRecord) {
        self.lock().push(event.clone());
    }
}

/// Writes one JSON object per event to the wrapped writer. Write errors
/// are swallowed: tracing must never fail the traced request.
#[derive(Debug)]
pub struct JsonLinesEventSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLinesEventSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesEventSink {
            out: Mutex::new(out),
        }
    }

    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<W: Write + Send> EventSink for JsonLinesEventSink<W> {
    fn emit(&self, event: &EventRecord) {
        let mut line = event.to_json();
        line.push('\n');
        if let Ok(mut out) = self.out.lock() {
            let _ = out.write_all(line.as_bytes());
        }
    }
}

/// A monotone nanosecond time source shared across threads — the
/// `Send + Sync` twin of [`crate::Clock`].
pub trait SharedClock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// [`Instant`]-backed shared clock; the origin is the moment of
/// construction.
#[derive(Debug)]
pub struct SharedWallClock {
    origin: Instant,
}

impl SharedWallClock {
    pub fn new() -> Self {
        SharedWallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SharedWallClock {
    fn default() -> Self {
        SharedWallClock::new()
    }
}

impl SharedClock for SharedWallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic shared clock for tests: every read returns the current
/// time and advances it by a fixed step (the atomic twin of
/// [`crate::ManualClock`]), and reads are counted — the hook the
/// "disabled tracing performs zero clock reads" assertions use.
#[derive(Debug)]
pub struct SharedManualClock {
    now: AtomicU64,
    step: AtomicU64,
    reads: AtomicU64,
}

impl SharedManualClock {
    /// A frozen clock (step 0): time moves only via
    /// [`SharedManualClock::advance`].
    pub fn new() -> Self {
        SharedManualClock::with_step(0)
    }

    /// A self-advancing clock: each read moves time forward by `step_ns`.
    pub fn with_step(step_ns: u64) -> Self {
        SharedManualClock {
            now: AtomicU64::new(0),
            step: AtomicU64::new(step_ns),
            reads: AtomicU64::new(0),
        }
    }

    /// Move time forward explicitly.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }

    /// Change the per-read step.
    pub fn set_step(&self, step_ns: u64) {
        self.step.store(step_ns, Ordering::Relaxed);
    }

    /// The current reading, without advancing (and without counting a
    /// read).
    pub fn peek(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// How many times [`SharedClock::now_ns`] has been called.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl Default for SharedManualClock {
    fn default() -> Self {
        SharedManualClock::new()
    }
}

impl SharedClock for SharedManualClock {
    fn now_ns(&self) -> u64 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.now
            .fetch_add(self.step.load(Ordering::Relaxed), Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_counter_and_gauge_share_state_across_clones_and_threads() {
        let reg = SharedRegistry::new();
        let c = reg.counter("x");
        let g = reg.gauge("d");
        let (c2, g2) = (c.clone(), g.clone());
        std::thread::scope(|s| {
            s.spawn(|| {
                c2.add(2);
                g2.add(5);
            });
        });
        c.inc();
        g.sub(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(reg.gauge_value("d"), 3);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauges saturate at zero");
    }

    #[test]
    fn shared_histogram_matches_local_histogram_snapshot() {
        let shared = SharedHistogram::default();
        let local = crate::Histogram::default();
        for v in [0, 1, 5, 5, 300, u64::MAX] {
            shared.observe(v);
            local.observe(v);
        }
        assert_eq!(shared.snapshot(), local.snapshot());
        assert_eq!(
            shared.snapshot().quantile(0.5),
            local.snapshot().quantile(0.5)
        );
    }

    #[test]
    fn shared_registry_json_lines_match_contract() {
        let reg = SharedRegistry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").inc();
        reg.gauge("depth").set(4);
        reg.histogram("h").observe(3);
        let out = reg.to_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"a.count\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"counter\",\"name\":\"b.count\",\"value\":2}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"gauge\",\"name\":\"depth\",\"value\":4}"
        );
        assert_eq!(
            lines[3],
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[[2,1]]}"
        );
        reg.reset();
        assert_eq!(reg.counter_value("a.count"), 0);
        assert_eq!(reg.gauge_value("depth"), 0);
        assert_eq!(reg.histogram("h").count(), 0);
    }

    #[test]
    fn event_record_json_shape() {
        let ev = EventRecord {
            name: "pool.dequeued".into(),
            trace_id: 7,
            parent: None,
            start_ns: 10,
            dur_ns: 3,
            attrs: vec![("worker".into(), 1)],
        };
        assert_eq!(
            ev.to_json(),
            "{\"kind\":\"span\",\"name\":\"pool.dequeued\",\"trace_id\":7,\"start_ns\":10,\"dur_ns\":3,\"worker\":1}"
        );
        let child = EventRecord {
            name: "engine.parse".into(),
            trace_id: 7,
            parent: Some(7),
            start_ns: 12,
            dur_ns: 1,
            attrs: vec![],
        };
        assert_eq!(
            child.to_json(),
            "{\"kind\":\"span\",\"name\":\"engine.parse\",\"trace_id\":7,\"parent\":7,\"start_ns\":12,\"dur_ns\":1}"
        );
    }

    #[test]
    fn sinks_collect_and_serialize_across_threads() {
        let sink = Arc::new(CollectingEventSink::new());
        let ev = EventRecord {
            name: "e".into(),
            trace_id: 1,
            parent: None,
            start_ns: 0,
            dur_ns: 0,
            attrs: vec![],
        };
        std::thread::scope(|s| {
            let sink2 = Arc::clone(&sink);
            let ev2 = ev.clone();
            s.spawn(move || sink2.emit(&ev2));
        });
        sink.emit(&ev);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());

        let json = JsonLinesEventSink::new(Vec::new());
        json.emit(&ev);
        json.emit(&ev);
        let text = String::from_utf8(json.into_inner()).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        NullEventSink.emit(&ev);
    }

    #[test]
    fn shared_manual_clock_steps_and_counts_reads() {
        let c = SharedManualClock::with_step(100);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 100);
        c.advance(5);
        assert_eq!(c.now_ns(), 205);
        assert_eq!(c.peek(), 305);
        assert_eq!(c.reads(), 3, "peek does not count as a read");
        let frozen = SharedManualClock::new();
        assert_eq!(frozen.now_ns(), 0);
        assert_eq!(frozen.now_ns(), 0);
    }

    #[test]
    fn shared_wall_clock_is_monotone() {
        let c = SharedWallClock::new();
        let a = c.now_ns();
        assert!(c.now_ns() >= a);
    }
}

//! Sliding-window views over cumulative registries.
//!
//! Every metric in this crate is cumulative-since-boot by design: counters
//! only go up, histograms only accumulate. That is the right *storage*
//! discipline (no data is ever thrown away, and the hot path stays an
//! increment), but an operator of a long-running server asks windowed
//! questions — "what is the p99 *right now*", "how many requests per
//! second over the last few seconds". This module answers them without
//! touching the write side at all:
//!
//! * [`RegistrySnapshot`] — a point-in-time copy of a
//!   [`crate::SharedRegistry`]'s values, stamped with a caller-supplied
//!   timestamp ([`crate::SharedRegistry::snapshot`]).
//! * [`SnapshotRing`] — a bounded ring of snapshots taken at (roughly)
//!   regular intervals. Pushing evicts the oldest; the ring is the only
//!   state windowing adds.
//! * [`WindowView`] — the delta between the ring's oldest and newest
//!   snapshots: counter deltas with [`WindowView::rate_per_sec`], and
//!   histogram deltas ([`HistogramSnapshot::delta`]) whose
//!   `quantile`/`mean` answer for the window alone.
//!
//! Windowing is entirely **reader-driven**: nothing here reads a clock or
//! spawns a thread. The owner of a ring decides when to tick (and stamps
//! the snapshot with a time it read itself), so a layer with windowing
//! disabled performs zero clock reads — provable with
//! [`crate::SharedManualClock::reads`] — and under a manual clock the
//! whole view is deterministic.

use crate::metrics::HistogramSnapshot;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A point-in-time copy of a registry's metrics, stamped with the
/// caller-supplied capture time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// When the snapshot was taken (caller's clock, nanoseconds).
    pub at_ns: u64,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// A bounded ring of [`RegistrySnapshot`]s: push evicts the oldest once
/// `capacity` is reached, so the window it describes spans at most
/// `capacity − 1` intervals.
#[derive(Debug)]
pub struct SnapshotRing {
    capacity: usize,
    ring: VecDeque<RegistrySnapshot>,
}

impl SnapshotRing {
    /// A ring holding at most `capacity` snapshots (clamped to ≥ 2 — a
    /// window needs two endpoints).
    pub fn new(capacity: usize) -> Self {
        SnapshotRing {
            capacity: capacity.max(2),
            ring: VecDeque::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Append a snapshot, evicting the oldest at capacity.
    pub fn push(&mut self, snap: RegistrySnapshot) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snap);
    }

    pub fn oldest(&self) -> Option<&RegistrySnapshot> {
        self.ring.front()
    }

    pub fn newest(&self) -> Option<&RegistrySnapshot> {
        self.ring.back()
    }

    /// The window between the oldest and newest snapshots, or `None` until
    /// two snapshots exist (one endpoint is not a window).
    pub fn window(&self) -> Option<WindowView> {
        if self.ring.len() < 2 {
            return None;
        }
        Some(WindowView::between(
            self.ring.front().expect("len >= 2"),
            self.ring.back().expect("len >= 2"),
        ))
    }
}

/// The delta between two snapshots of the same registry: what happened
/// *during* the window, derived purely from cumulative values.
///
/// Counters are `saturating_sub` deltas (a counter that went backwards —
/// reset, respawn — clamps to 0). Gauges are levels, not rates, so the
/// view keeps the **newest** level. Histograms are
/// [`HistogramSnapshot::delta`]s, so `quantile` on them answers for the
/// window alone.
#[derive(Clone, Debug, Default)]
pub struct WindowView {
    pub from_ns: u64,
    pub to_ns: u64,
    /// Per-counter increase over the window.
    pub counters: BTreeMap<String, u64>,
    /// Latest level of each gauge (a gauge has no meaningful delta).
    pub gauges: BTreeMap<String, u64>,
    /// Per-histogram windowed observations.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl WindowView {
    /// The delta from `earlier` to `later`. Metrics minted after `earlier`
    /// was taken contribute their full cumulative value (their implicit
    /// earlier value is 0).
    pub fn between(earlier: &RegistrySnapshot, later: &RegistrySnapshot) -> WindowView {
        WindowView {
            from_ns: earlier.at_ns,
            to_ns: later.at_ns,
            counters: later
                .counters
                .iter()
                .map(|(n, &v)| {
                    let before = earlier.counters.get(n).copied().unwrap_or(0);
                    (n.clone(), v.saturating_sub(before))
                })
                .collect(),
            gauges: later.gauges.clone(),
            histograms: later
                .histograms
                .iter()
                .map(|(n, h)| {
                    let d = match earlier.histograms.get(n) {
                        Some(before) => h.delta(before),
                        None => h.clone(),
                    };
                    (n.clone(), d)
                })
                .collect(),
        }
    }

    /// Window length in nanoseconds (0 if the clock stood still or went
    /// backwards).
    pub fn span_ns(&self) -> u64 {
        self.to_ns.saturating_sub(self.from_ns)
    }

    /// A counter's increase over the window (0 if absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A counter's windowed rate in events per second — the delta divided
    /// by the window span. 0.0 for a zero-length window (rates need time).
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let span = self.span_ns();
        if span == 0 {
            return 0.0;
        }
        self.counter_delta(name) as f64 * 1e9 / span as f64
    }

    /// A histogram's windowed `q`-quantile (0 if absent or empty in the
    /// window) — [`HistogramSnapshot::quantile`] over the delta.
    pub fn quantile(&self, name: &str, q: f64) -> u64 {
        self.histograms
            .get(name)
            .map(|h| h.quantile(q))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedRegistry;

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let mut ring = SnapshotRing::new(3);
        assert!(ring.window().is_none(), "no window from an empty ring");
        for t in 0..5u64 {
            ring.push(RegistrySnapshot {
                at_ns: t,
                ..Default::default()
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.oldest().unwrap().at_ns, 2);
        assert_eq!(ring.newest().unwrap().at_ns, 4);
        let w = ring.window().unwrap();
        assert_eq!((w.from_ns, w.to_ns), (2, 4));
        assert_eq!(w.span_ns(), 2);
    }

    #[test]
    fn ring_capacity_clamps_to_two() {
        let ring = SnapshotRing::new(0);
        assert_eq!(ring.capacity(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn window_rates_and_quantiles_are_deterministic_deltas() {
        let reg = SharedRegistry::new();
        let c = reg.counter("req");
        let h = reg.histogram("lat");
        c.add(10);
        h.observe(1);
        let mut ring = SnapshotRing::new(8);
        ring.push(reg.snapshot(1_000_000_000));
        assert!(ring.window().is_none(), "one snapshot is not a window");

        c.add(30);
        for _ in 0..4 {
            h.observe(100); // bucket 7, upper bound 127
        }
        reg.gauge("depth").set(9);
        ring.push(reg.snapshot(3_000_000_000));

        let w = ring.window().unwrap();
        assert_eq!(w.counter_delta("req"), 30, "cumulative 40 minus 10");
        assert_eq!(w.rate_per_sec("req"), 15.0, "30 events over 2 seconds");
        assert_eq!(w.quantile("lat", 0.5), 100, "window sees only the 100s");
        assert_eq!(w.gauges.get("depth"), Some(&9), "gauges report the level");
        assert_eq!(w.counter_delta("absent"), 0);
        assert_eq!(w.rate_per_sec("absent"), 0.0);
        assert_eq!(w.quantile("absent", 0.99), 0);
    }

    #[test]
    fn window_handles_metrics_minted_mid_window() {
        let reg = SharedRegistry::new();
        reg.counter("old").add(5);
        let earlier = reg.snapshot(0);
        reg.counter("new").add(7);
        reg.histogram("h2").observe(3);
        let later = reg.snapshot(1_000_000_000);
        let w = WindowView::between(&earlier, &later);
        assert_eq!(w.counter_delta("new"), 7, "implicit earlier value is 0");
        assert_eq!(w.quantile("h2", 0.5), 3);
        assert_eq!(w.counter_delta("old"), 0);
    }

    #[test]
    fn zero_span_window_has_zero_rates() {
        let reg = SharedRegistry::new();
        reg.counter("c").add(3);
        let a = reg.snapshot(5);
        reg.counter("c").add(3);
        let b = reg.snapshot(5);
        let w = WindowView::between(&a, &b);
        assert_eq!(w.counter_delta("c"), 3);
        assert_eq!(w.rate_per_sec("c"), 0.0, "no time elapsed, no rate");
    }

    #[test]
    fn snapshotting_never_reads_a_clock() {
        use crate::{SharedClock, SharedManualClock};
        let clock = SharedManualClock::new();
        let reg = SharedRegistry::new();
        reg.counter("c").inc();
        // The caller stamps the time: the snapshot itself takes whatever
        // it is handed and performs no reads of its own.
        let t = clock.now_ns();
        let _ = reg.snapshot(t);
        let _ = reg.snapshot(t);
        assert_eq!(clock.reads(), 1, "only the caller's explicit read");
    }
}

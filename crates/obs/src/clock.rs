//! Time sources: wall-clock for production, a manual clock for tests.
//!
//! Everything downstream (spans, phase histograms) reads time through the
//! [`Clock`] trait, so an engine can be handed a [`ManualClock`] and every
//! reported duration becomes a deterministic function of the number of
//! clock reads — the property the `:explain` integration tests assert.

use std::cell::Cell;
use std::time::Instant;

/// A monotone nanosecond time source.
pub trait Clock {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_ns(&self) -> u64;
}

/// [`std::time::Instant`]-backed clock; the origin is the moment of
/// construction.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // Saturate at u64::MAX (≈584 years of uptime) rather than wrap.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: every [`Clock::now_ns`] read returns
/// the current time and then advances it by a fixed step, so a span that
/// reads the clock twice always measures exactly `step` (plus whatever was
/// advanced manually in between).
///
/// Reads are counted ([`ManualClock::reads`]) — the hook the "disabled
/// profiling performs zero clock reads" assertions use (mirroring
/// [`crate::SharedManualClock`], its cross-thread twin).
pub struct ManualClock {
    now: Cell<u64>,
    step: Cell<u64>,
    reads: Cell<u64>,
}

impl ManualClock {
    /// A frozen clock (step 0): time moves only via [`ManualClock::advance`].
    pub fn new() -> Self {
        ManualClock::with_step(0)
    }

    /// A self-advancing clock: each read moves time forward by `step_ns`.
    pub fn with_step(step_ns: u64) -> Self {
        ManualClock {
            now: Cell::new(0),
            step: Cell::new(step_ns),
            reads: Cell::new(0),
        }
    }

    /// Move time forward explicitly.
    pub fn advance(&self, ns: u64) {
        self.now.set(self.now.get().saturating_add(ns));
    }

    /// Change the per-read step.
    pub fn set_step(&self, step_ns: u64) {
        self.step.set(step_ns);
    }

    /// The current reading, without advancing.
    pub fn peek(&self) -> u64 {
        self.now.get()
    }

    /// How many times [`Clock::now_ns`] has been called on this clock.
    /// `peek` and `advance` do not count.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.reads.set(self.reads.get() + 1);
        let t = self.now.get();
        self.now.set(t.saturating_add(self.step.get()));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_steps_per_read() {
        let c = ManualClock::with_step(100);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 100);
        c.advance(5);
        assert_eq!(c.now_ns(), 205);
        assert_eq!(c.peek(), 305);
    }

    #[test]
    fn frozen_clock_only_moves_manually() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance(42);
        assert_eq!(c.now_ns(), 42);
    }

    #[test]
    fn manual_clock_counts_reads() {
        let c = ManualClock::with_step(10);
        assert_eq!(c.reads(), 0);
        c.now_ns();
        c.now_ns();
        assert_eq!(c.reads(), 2);
        c.advance(5);
        assert_eq!(c.peek(), 25);
        assert_eq!(c.reads(), 2, "peek and advance are not reads");
    }
}

//! Zero-dependency observability for the polyview pipeline.
//!
//! The paper's workflow (Section 4) is a database session: classes are
//! declared once and then served many queries. Optimising that loop —
//! kinded unification in Fig. 1's sense, the Fig. 3/5 translation size,
//! evaluation fuel — requires a measurement substrate first. This crate is
//! that substrate, built on `std` alone so the tier-1 pipeline stays fully
//! offline (DESIGN.md §7: no external crates, not even `tracing`):
//!
//! * [`Clock`] — a nanosecond time source. [`WallClock`] wraps
//!   [`std::time::Instant`]; [`ManualClock`] is injectable and advances
//!   deterministically, so phase-timing assertions are exact in tests.
//! * [`Span`] / [`Tracer`] — lightweight begin/finish spans. Finishing a
//!   span yields its duration and, when tracing is enabled, emits a
//!   [`SpanRecord`] to the configured [`TraceSink`].
//! * [`Registry`] — named monotone [`Counter`]s and log2-bucketed
//!   [`Histogram`]s (latencies, sizes), exportable as JSON lines (one JSON
//!   object per line) without any serialization dependency.
//! * [`TraceSink`] — [`NullSink`] (drop everything), [`CollectingSink`]
//!   (keep records in memory, for tests), and [`JsonLinesSink`] (write one
//!   JSON object per record to any [`std::io::Write`]).
//!
//! The engine-side types are single-threaded by design, matching the
//! engine: handles are `Rc`-shared with `Cell`/`RefCell` interiors, so hot
//! paths pay an increment, not an atomic. Layers that cross threads (the
//! serving pool) use the [`shared`] module — the `Send + Sync` atomic
//! twins of the same vocabulary ([`SharedRegistry`], [`EventSink`],
//! [`SharedClock`]) — and [`jsonl`] provides a tiny std-only JSON line
//! checker for smoke-testing the exports. The [`window`] module layers
//! sliding-window views (rates, windowed quantiles) over the cumulative
//! registries as reader-side snapshot deltas — storage stays cumulative,
//! and a layer that never ticks a window never reads a clock.

pub mod clock;
pub mod jsonl;
pub mod metrics;
pub mod shared;
pub mod sink;
pub mod span;
pub mod window;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use shared::{
    CollectingEventSink, EventRecord, EventSink, JsonLinesEventSink, NullEventSink, SharedClock,
    SharedCounter, SharedGauge, SharedHistogram, SharedManualClock, SharedRegistry,
    SharedWallClock,
};
pub use sink::{CollectingSink, JsonLinesSink, NullSink, SpanRecord, TraceSink};
pub use span::{Span, Tracer};
pub use window::{RegistrySnapshot, SnapshotRing, WindowView};

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// Metric and span names are ASCII identifiers in practice, but the escape
/// keeps the JSON-lines exports well-formed for arbitrary input. Public so
/// downstream JSON-lines renderers (the engine's profile export) share one
/// escaping discipline with the registry's.
pub fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json_escape;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let mut out = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}

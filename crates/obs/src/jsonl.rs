//! A tiny std-only JSON *line* validator — enough to smoke-test our own
//! JSON-lines exports (metrics, spans, events) without pulling in serde.
//!
//! [`check_object_line`] validates that a line is exactly one syntactically
//! well-formed JSON object (full recursive-descent over values, UTF-8
//! escapes included) and returns its top-level keys in order of
//! appearance. It deliberately does *not* build a value tree: callers only
//! need "is this parseable?" plus "which keys are present?" — the contract
//! the `verify.sh` trace-smoke gate and `pool_server --trace` self-check
//! assert.

/// Why a line failed validation. The offset is a byte position into the
/// line, for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &'static str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(message)
        }
    }

    /// Parse a string literal, returning its unescaped contents.
    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.bump() else {
                return self.err("unterminated string");
            };
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired high surrogate");
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return self.err("invalid low surrogate");
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid surrogate pair"),
                            }
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return self.err("unpaired low surrogate");
                        } else {
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                0x00..=0x1F => return self.err("unescaped control character"),
                0x20..=0x7F => out.push(b as char),
                _ => {
                    // Re-assemble the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or(JsonError {
                        offset: start,
                        message: "invalid utf-8",
                    })?;
                    while self.pos < start + len {
                        self.pos += 1;
                    }
                    let slice = self.bytes.get(start..start + len).ok_or(JsonError {
                        offset: start,
                        message: "truncated utf-8",
                    })?;
                    let s = std::str::from_utf8(slice).map_err(|_| JsonError {
                        offset: start,
                        message: "invalid utf-8",
                    })?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return self.err("truncated \\u escape");
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return self.err("invalid \\u escape"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("invalid number"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("invalid number fraction");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("invalid number exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &'static str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            self.err(message)
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object()?;
                Ok(())
            }
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true", "invalid literal"),
            Some(b'f') => self.literal("false", "invalid literal"),
            Some(b'n') => self.literal("null", "invalid literal"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected value"),
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[', "expected array")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b']') => return Ok(()),
                Some(b',') => continue,
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    /// Parse an object, returning its keys in order of appearance.
    fn object(&mut self) -> Result<Vec<String>, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b'}') => return Ok(keys),
                Some(b',') => continue,
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

/// Validate that `line` is exactly one well-formed JSON object (with
/// nothing but whitespace around it) and return its top-level keys in
/// order of appearance.
pub fn check_object_line(line: &str) -> Result<Vec<String>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after object");
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_our_export_shapes() {
        let keys = check_object_line(
            "{\"kind\":\"span\",\"name\":\"pool.completed\",\"trace_id\":3,\"parent\":3,\"start_ns\":1,\"dur_ns\":9,\"worker\":0}",
        )
        .expect("valid");
        assert_eq!(
            keys,
            vec!["kind", "name", "trace_id", "parent", "start_ns", "dur_ns", "worker"]
        );
        let keys = check_object_line(
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[[2,1]]}",
        )
        .expect("valid");
        assert_eq!(keys[0], "kind");
    }

    #[test]
    fn accepts_nested_values_and_escapes() {
        let keys = check_object_line(
            " {\"a\\n\\u00e9\": [1, -2.5e3, true, false, null, {\"x\": []}], \"b\": \"\\ud83d\\ude00\"} ",
        )
        .expect("valid");
        assert_eq!(keys, vec!["a\né", "b"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "[1,2]",
            "{\"a\":1} trailing",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "{\"a\":01}",
            "{\"a\":+1}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":nul}",
            "{\"a\":1",
        ] {
            assert!(check_object_line(bad).is_err(), "accepted: {bad}");
        }
    }
}

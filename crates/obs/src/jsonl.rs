//! A tiny std-only JSON *line* codec — enough to smoke-test our own
//! JSON-lines exports (metrics, spans, events) and to carry the network
//! front door's wire protocol (`crates/net`) without pulling in serde.
//!
//! Three layers, all sharing one recursive-descent core:
//!
//! * [`check_object_line`] validates that a line is exactly one
//!   syntactically well-formed JSON object (UTF-8 escapes included) and
//!   returns its top-level keys in order of appearance. It does *not*
//!   build a value tree: callers only need "is this parseable?" plus
//!   "which keys are present?" — the contract the `verify.sh` trace-smoke
//!   gate and `pool_server --trace` self-check assert.
//! * [`parse_object_line`] builds the value tree as ordered
//!   `(key, `[`JsonValue`]`)` pairs — the decode half of the wire frame
//!   codec. [`JsonValue`] carries typed accessors ([`JsonValue::as_str`],
//!   [`JsonValue::as_u64`], …) so frame handlers read fields without
//!   pattern-matching boilerplate.
//! * [`ObjectBuilder`] renders a single-line JSON object with correct
//!   string escaping — the encode half, shared by responses and any other
//!   hand-rolled JSON-lines export.

/// Why a line failed validation. The offset is a byte position into the
/// line, for error messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// One parsed JSON value. Numbers are carried as `f64` (integers up to
/// 2^53 round-trip exactly — wire ids and counters are far below that);
/// object members keep their order of appearance.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer (a `Num` with no
    /// fractional part, within `f64`'s exact-integer range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// First member with key `key` (objects preserve appearance order and
    /// may, per JSON, repeat keys — first wins here).
    pub fn get<'v>(members: &'v [(String, JsonValue)], key: &str) -> Option<&'v JsonValue> {
        members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &'static str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(message)
        }
    }

    /// Parse a string literal, returning its unescaped contents.
    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.bump() else {
                return self.err("unterminated string");
            };
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return self.err("unpaired high surrogate");
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return self.err("invalid low surrogate");
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid surrogate pair"),
                            }
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return self.err("unpaired low surrogate");
                        } else {
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                0x00..=0x1F => return self.err("unescaped control character"),
                0x20..=0x7F => out.push(b as char),
                _ => {
                    // Re-assemble the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or(JsonError {
                        offset: start,
                        message: "invalid utf-8",
                    })?;
                    while self.pos < start + len {
                        self.pos += 1;
                    }
                    let slice = self.bytes.get(start..start + len).ok_or(JsonError {
                        offset: start,
                        message: "truncated utf-8",
                    })?;
                    let s = std::str::from_utf8(slice).map_err(|_| JsonError {
                        offset: start,
                        message: "invalid utf-8",
                    })?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.bump() else {
                return self.err("truncated \\u escape");
            };
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return self.err("invalid \\u escape"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return self.err("invalid number"),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("invalid number fraction");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return self.err("invalid number exponent");
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &'static str, message: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            self.err(message)
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.object()?;
                Ok(())
            }
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true", "invalid literal"),
            Some(b'f') => self.literal("false", "invalid literal"),
            Some(b'n') => self.literal("null", "invalid literal"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected value"),
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[', "expected array")?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b']') => return Ok(()),
                Some(b',') => continue,
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    /// Value-building twin of [`Parser::value`].
    fn value_tree(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => Ok(JsonValue::Obj(self.object_tree()?)),
            Some(b'[') => self.array_tree(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self
                .literal("true", "invalid literal")
                .map(|()| JsonValue::Bool(true)),
            Some(b'f') => self
                .literal("false", "invalid literal")
                .map(|()| JsonValue::Bool(false)),
            Some(b'n') => self
                .literal("null", "invalid literal")
                .map(|()| JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                self.number()?;
                // `number` validated the grammar, which is a strict subset
                // of Rust's float syntax, so the text parse cannot fail.
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
                        offset: start,
                        message: "invalid utf-8",
                    })?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| JsonError {
                        offset: start,
                        message: "invalid number",
                    })
            }
            _ => self.err("expected value"),
        }
    }

    fn array_tree(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected array")?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value_tree()?);
            self.skip_ws();
            match self.bump() {
                Some(b']') => return Ok(JsonValue::Arr(items)),
                Some(b',') => continue,
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    /// Value-building twin of [`Parser::object`].
    fn object_tree(&mut self) -> Result<Vec<(String, JsonValue)>, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(members);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            let value = self.value_tree()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b'}') => return Ok(members),
                Some(b',') => continue,
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    /// Parse an object, returning its keys in order of appearance.
    fn object(&mut self) -> Result<Vec<String>, JsonError> {
        self.expect(b'{', "expected object")?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b'}') => return Ok(keys),
                Some(b',') => continue,
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn utf8_len(b: u8) -> Option<usize> {
    match b {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

/// Validate that `line` is exactly one well-formed JSON object (with
/// nothing but whitespace around it) and return its top-level keys in
/// order of appearance.
pub fn check_object_line(line: &str) -> Result<Vec<String>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let keys = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after object");
    }
    Ok(keys)
}

/// Parse `line` as exactly one JSON object (nothing but whitespace around
/// it), returning its members as ordered `(key, value)` pairs — the decode
/// half of the wire frame codec.
pub fn parse_object_line(line: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let members = p.object_tree()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after object");
    }
    Ok(members)
}

/// Builds a single-line JSON object with correct string escaping — the
/// encode half of the wire frame codec. Keys render in insertion order;
/// the caller is responsible for not repeating them.
///
/// ```
/// use polyview_obs::jsonl::ObjectBuilder;
/// let line = ObjectBuilder::new()
///     .field_u64("id", 7)
///     .field_str("ok", "1 + 1 = \"2\"")
///     .finish();
/// assert_eq!(line, "{\"id\":7,\"ok\":\"1 + 1 = \\\"2\\\"\"}");
/// ```
#[derive(Clone, Debug)]
pub struct ObjectBuilder {
    out: String,
    first: bool,
}

impl Default for ObjectBuilder {
    fn default() -> Self {
        ObjectBuilder::new()
    }
}

impl ObjectBuilder {
    pub fn new() -> Self {
        ObjectBuilder {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        crate::json_escape(key, &mut self.out);
        self.out.push_str("\":");
    }

    pub fn field_str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push('"');
        crate::json_escape(value, &mut self.out);
        self.out.push('"');
        self
    }

    pub fn field_u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    pub fn field_bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    pub fn field_str_array<S: AsRef<str>>(mut self, key: &str, items: &[S]) -> Self {
        self.key(key);
        self.out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push('"');
            crate::json_escape(item.as_ref(), &mut self.out);
            self.out.push('"');
        }
        self.out.push(']');
        self
    }

    /// Splice a pre-rendered JSON value (e.g. a nested array of objects
    /// built with more [`ObjectBuilder`]s). The caller guarantees `raw` is
    /// well-formed JSON.
    pub fn field_raw(mut self, key: &str, raw: &str) -> Self {
        self.key(key);
        self.out.push_str(raw);
        self
    }

    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_our_export_shapes() {
        let keys = check_object_line(
            "{\"kind\":\"span\",\"name\":\"pool.completed\",\"trace_id\":3,\"parent\":3,\"start_ns\":1,\"dur_ns\":9,\"worker\":0}",
        )
        .expect("valid");
        assert_eq!(
            keys,
            vec!["kind", "name", "trace_id", "parent", "start_ns", "dur_ns", "worker"]
        );
        let keys = check_object_line(
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[[2,1]]}",
        )
        .expect("valid");
        assert_eq!(keys[0], "kind");
    }

    #[test]
    fn accepts_nested_values_and_escapes() {
        let keys = check_object_line(
            " {\"a\\n\\u00e9\": [1, -2.5e3, true, false, null, {\"x\": []}], \"b\": \"\\ud83d\\ude00\"} ",
        )
        .expect("valid");
        assert_eq!(keys, vec!["a\né", "b"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "[1,2]",
            "{\"a\":1} trailing",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "{\"a\":01}",
            "{\"a\":+1}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\ud800\"}",
            "{\"a\":nul}",
            "{\"a\":1",
        ] {
            assert!(check_object_line(bad).is_err(), "accepted: {bad}");
            assert!(
                parse_object_line(bad).is_err(),
                "tree parse accepted: {bad}"
            );
        }
    }

    #[test]
    fn parse_object_line_builds_typed_values() {
        let members = parse_object_line(
            "{\"op\":\"batch\",\"id\":41,\"stmts\":[\"val x = 1;\",\"x\"],\"deep\":{\"ok\":true,\"none\":null},\"f\":-2.5}",
        )
        .expect("valid");
        assert_eq!(
            members.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
            vec!["op", "id", "stmts", "deep", "f"]
        );
        assert_eq!(
            JsonValue::get(&members, "op").unwrap().as_str(),
            Some("batch")
        );
        assert_eq!(JsonValue::get(&members, "id").unwrap().as_u64(), Some(41));
        let stmts = JsonValue::get(&members, "stmts")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].as_str(), Some("val x = 1;"));
        let deep = JsonValue::get(&members, "deep")
            .unwrap()
            .as_object()
            .unwrap();
        assert_eq!(JsonValue::get(deep, "ok").unwrap().as_bool(), Some(true));
        assert_eq!(JsonValue::get(deep, "none"), Some(&JsonValue::Null));
        assert_eq!(JsonValue::get(&members, "f"), Some(&JsonValue::Num(-2.5)));
        // Typed accessors refuse mismatches rather than coercing.
        assert_eq!(JsonValue::get(&members, "f").unwrap().as_u64(), None);
        assert_eq!(JsonValue::get(&members, "id").unwrap().as_str(), None);
        assert_eq!(JsonValue::get(&members, "missing"), None);
    }

    #[test]
    fn string_escapes_round_trip_exactly() {
        // Every simple escape, a \u escape, a surrogate pair, and raw
        // multi-byte UTF-8 — the `stats` op ships operator-visible strings
        // through this path, so unescaping must be byte-exact.
        let members = parse_object_line(
            "{\"s\":\"q\\\" b\\\\ s\\/ \\b\\f\\n\\r\\t u\\u00e9 p\\ud83d\\ude00 raw é\"}",
        )
        .expect("valid");
        assert_eq!(
            JsonValue::get(&members, "s").unwrap().as_str(),
            Some("q\" b\\ s/ \u{8}\u{c}\n\r\t ué p😀 raw é")
        );
        // Escaped characters in *keys* too.
        let members = parse_object_line("{\"a\\tb\":1}").expect("valid");
        assert_eq!(members[0].0, "a\tb");
    }

    #[test]
    fn deeply_nested_objects_parse_and_preserve_structure() {
        let line = "{\"a\":{\"b\":{\"c\":{\"d\":[{\"e\":1},{\"e\":2}]}}}}";
        let members = parse_object_line(line).expect("valid");
        let b = JsonValue::get(&members, "a").unwrap().as_object().unwrap();
        let c = JsonValue::get(b, "b").unwrap().as_object().unwrap();
        let d = JsonValue::get(c, "c").unwrap().as_object().unwrap();
        let arr = JsonValue::get(d, "d").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            JsonValue::get(arr[1].as_object().unwrap(), "e")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        // Duplicate keys are legal JSON; first wins through the accessor,
        // both survive in the member list.
        let dup = parse_object_line("{\"k\":1,\"k\":2}").expect("valid");
        assert_eq!(dup.len(), 2);
        assert_eq!(JsonValue::get(&dup, "k").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn numeric_overflow_and_precision_edges() {
        // 2^53 is the last exactly-representable integer: as_u64 accepts
        // it and refuses anything that cannot round-trip exactly.
        let members =
            parse_object_line("{\"max\":9007199254740992,\"over\":9007199254740993,\"huge\":18446744073709551615,\"neg\":-1,\"frac\":1.5,\"exp\":1e3,\"bigexp\":1e400}")
                .expect("valid grammar even when magnitudes overflow");
        let get = |k: &str| JsonValue::get(&members, k).unwrap();
        assert_eq!(get("max").as_u64(), Some(9_007_199_254_740_992));
        // 2^53 + 1 rounds *down* to 2^53 in f64 — indistinguishable from
        // the legitimate value, so the accessor's bound must sit at the
        // first value where integrality is still provable. Either answer
        // (None, or the rounded neighbour) would be defensible; the
        // implementation admits the rounded f64 since fract()==0 — pin
        // that it never fabricates a *larger* integer.
        assert!(get("over")
            .as_u64()
            .is_some_and(|v| v <= 9_007_199_254_740_992));
        // u64::MAX overflows the exact range: refused, not wrapped.
        assert_eq!(get("huge").as_u64(), None);
        assert_eq!(get("neg").as_u64(), None);
        assert_eq!(get("frac").as_u64(), None);
        assert_eq!(get("exp").as_u64(), Some(1000));
        // An exponent beyond f64's range parses as infinity per the
        // grammar; the typed accessor refuses it (fract() of inf is NaN).
        assert_eq!(get("bigexp").as_u64(), None);
        assert_eq!(*get("bigexp"), JsonValue::Num(f64::INFINITY));
    }

    #[test]
    fn truncated_input_is_an_error_never_a_panic() {
        // Prefixes of a valid line must all fail cleanly: the reader can
        // hand the parser a line cut anywhere (bounded reads truncate).
        let full = "{\"op\":\"stats\",\"id\":12,\"deep\":{\"arr\":[1,\"s\\u00e9\"]}}";
        assert!(parse_object_line(full).is_ok());
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            assert!(
                parse_object_line(prefix).is_err(),
                "truncated prefix accepted: {prefix:?}"
            );
            assert!(check_object_line(prefix).is_err());
        }
        // Truncation inside escapes and surrogate pairs specifically.
        for bad in [
            "{\"s\":\"\\",
            "{\"s\":\"\\u00",
            "{\"s\":\"\\ud83d\"}",
            "{\"s\":\"\\ud83d\\u0041\"}",
            "{\"s\":\"\\ud83d\\ude",
        ] {
            assert!(parse_object_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn object_builder_round_trips_through_the_parser() {
        let nested = ObjectBuilder::new()
            .field_str("err", "bad \"thing\"\n")
            .finish();
        let line = ObjectBuilder::new()
            .field_u64("id", 9)
            .field_bool("busy", true)
            .field_str_array("stmts", &["a", "b\\c"])
            .field_raw("results", &format!("[{nested}]"))
            .finish();
        let members = parse_object_line(&line).expect("builder output parses");
        assert_eq!(JsonValue::get(&members, "id").unwrap().as_u64(), Some(9));
        assert_eq!(
            JsonValue::get(&members, "busy").unwrap().as_bool(),
            Some(true)
        );
        let stmts = JsonValue::get(&members, "stmts")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(stmts[1].as_str(), Some("b\\c"));
        let results = JsonValue::get(&members, "results")
            .unwrap()
            .as_array()
            .unwrap();
        let inner = results[0].as_object().unwrap();
        assert_eq!(
            JsonValue::get(inner, "err").unwrap().as_str(),
            Some("bad \"thing\"\n")
        );
        // And the validator agrees the builder emits exactly one object.
        assert!(check_object_line(&line).is_ok());
    }
}

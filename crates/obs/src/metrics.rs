//! A metrics registry: named monotone counters and log2-bucketed
//! histograms, with a JSON-lines export.
//!
//! Handles ([`Counter`], [`Histogram`]) are `Rc`-shared with the registry,
//! so a hot path resolves its metric once at construction time and then
//! pays a `Cell` increment per event — no string hashing per observation.

use crate::json_escape;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and bucket 64 holds the top of the
/// `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index of a value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (for rendering).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A named monotone counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Overwrite the value — used to mirror counters owned by another layer
    /// (e.g. the evaluator's fuel tally) into the registry at export time.
    pub fn set(&self, n: u64) {
        self.0.set(n);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// An immutable view of a histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Meaningless (`u64::MAX`) when `count == 0`.
    pub min: u64,
    pub max: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A log2-bucketed histogram for latencies and sizes. Cloning shares the
/// underlying data.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Rc<RefCell<HistogramData>>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        h.count += 1;
        h.sum = h.sum.saturating_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.borrow();
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }

    fn reset(&self) {
        *self.0.borrow_mut() = HistogramData::default();
    }
}

/// A registry of named counters and histograms.
///
/// `counter`/`histogram` are get-or-create: the first call mints the
/// metric, later calls (and clones of the returned handle) share it.
/// [`Registry::reset`] zeroes every metric *in place*, so handles resolved
/// before the reset keep working.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RefCell<BTreeMap<String, Counter>>,
    histograms: RefCell<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a counter (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .borrow()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Zero every counter and histogram, keeping existing handles live.
    pub fn reset(&self) {
        for c in self.counters.borrow().values() {
            c.set(0);
        }
        for h in self.histograms.borrow().values() {
            h.reset();
        }
    }

    /// Export the registry as JSON lines: exactly one JSON object per line,
    /// counters first, then histograms, each sorted by name.
    ///
    /// ```text
    /// {"kind":"counter","name":"engine.parses","value":3}
    /// {"kind":"histogram","name":"phase.parse_ns","count":2,"sum":700,"min":300,"max":400,"buckets":[[9,2]]}
    /// ```
    ///
    /// Bucket entries are `[index, count]` pairs where index `i` covers
    /// values in `[2^(i-1), 2^i)` (index 0 is the value 0).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.borrow().iter() {
            out.push_str("{\"kind\":\"counter\",\"name\":\"");
            json_escape(name, &mut out);
            out.push_str(&format!("\",\"value\":{}}}\n", c.get()));
        }
        for (name, h) in self.histograms.borrow().iter() {
            let s = h.snapshot();
            out.push_str("{\"kind\":\"histogram\",\"name\":\"");
            json_escape(name, &mut out);
            let min = if s.count == 0 { 0 } else { s.min };
            out.push_str(&format!(
                "\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                s.count, s.sum, min, s.max
            ));
            for (i, (idx, c)) in s.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{idx},{c}]"));
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(11), 1024);
    }

    #[test]
    fn counters_share_state_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 5, 5, 300] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 311);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 300);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (9, 1)]);
        assert_eq!(s.mean(), 62);
    }

    #[test]
    fn reset_zeroes_in_place_and_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(7);
        h.observe(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(reg.counter_value("c"), 1);
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").inc();
        reg.histogram("h").observe(3);
        let out = reg.to_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // Counters sorted by name, then histograms.
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"a.count\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"counter\",\"name\":\"b.count\",\"value\":2}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[[2,1]]}"
        );
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn empty_histogram_exports_zero_min() {
        let reg = Registry::new();
        reg.histogram("h");
        let out = reg.to_json_lines();
        assert!(out.contains("\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]"));
    }
}

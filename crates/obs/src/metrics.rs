//! A metrics registry: named monotone counters, settable gauges, and
//! log2-bucketed histograms, with a JSON-lines export.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Rc`-shared with the
//! registry, so a hot path resolves its metric once at construction time and
//! then pays a `Cell` increment per event — no string hashing per
//! observation.

use crate::json_escape;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, and bucket 64 holds the top of the
/// `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket index of a value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket (for rendering).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of a bucket: the largest value the bucket can
/// hold. Bucket 0 holds only 0; bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, so
/// its upper bound is `2^i - 1`; bucket 64 tops out at `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A named monotone counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    /// Overwrite the value — used to mirror counters owned by another layer
    /// (e.g. the evaluator's fuel tally) into the registry at export time.
    pub fn set(&self, n: u64) {
        self.0.set(n);
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A named settable gauge: a point-in-time level (queue depth, replay
/// lag), not a monotone tally. Cloning shares the underlying cell. In the
/// JSON-lines export a gauge carries `"kind":"gauge"`, so dashboards can
/// tell levels from rates without name conventions.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<u64>>);

impl Gauge {
    pub fn set(&self, n: u64) {
        self.0.set(n);
    }

    pub fn add(&self, n: u64) {
        self.0.set(self.0.get().saturating_add(n));
    }

    pub fn sub(&self, n: u64) {
        self.0.set(self.0.get().saturating_sub(n));
    }

    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

#[derive(Debug)]
struct HistogramData {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// An immutable view of a histogram's state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Meaningless (`u64::MAX`) when `count == 0`.
    pub min: u64,
    pub max: u64,
    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the log2 buckets.
    ///
    /// Walks the buckets until the cumulative count reaches `⌈q·count⌉`
    /// observations and reports that bucket's **upper bound**
    /// ([`bucket_upper_bound`]) — a conservative (over-)estimate with at
    /// most 2× error, which is exactly the resolution the buckets store.
    /// Refinements: an empty histogram reports 0, and the top bucket
    /// reports the true recorded maximum instead of its bound (so p99 of a
    /// histogram never exceeds the largest value ever observed).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        let mut last = 0usize;
        for &(i, c) in &self.buckets {
            seen += c;
            last = i;
            if seen >= target {
                break;
            }
        }
        bucket_upper_bound(last).min(self.max)
    }

    /// The observations recorded in `self` but not yet in `earlier` — the
    /// windowed view of a cumulative histogram, given two snapshots of it.
    ///
    /// Every field is a `saturating_sub` per bucket: when a counter has
    /// gone *backwards* between the snapshots (a pool worker respawned and
    /// its generation bump reset per-worker tallies, or the two snapshots
    /// raced a [`Registry::reset`]), the delta clamps to zero instead of
    /// wrapping — a window quantile can report "no data", never a
    /// 2^64-flavoured garbage latency. `count` is recomputed as the sum of
    /// the per-bucket deltas (not `count − count`), so [`Self::quantile`]
    /// on the delta is always internally consistent with its buckets.
    ///
    /// `min`/`max` of a window are not recoverable from cumulative
    /// extremes, so they are re-derived from the delta buckets: `min` is
    /// the lower bound of the lowest non-empty delta bucket, `max` the
    /// upper bound of the highest — clamped to the cumulative `max`, which
    /// bounds every observation the window can contain.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut prev = earlier.buckets.iter().copied().peekable();
        let mut buckets: Vec<(usize, u64)> = Vec::new();
        for &(i, c) in &self.buckets {
            let mut before = 0u64;
            while let Some(&(pi, pc)) = prev.peek() {
                if pi < i {
                    prev.next();
                } else {
                    if pi == i {
                        before = pc;
                        prev.next();
                    }
                    break;
                }
            }
            let d = c.saturating_sub(before);
            if d > 0 {
                buckets.push((i, d));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        if count == 0 {
            return HistogramSnapshot::default();
        }
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: bucket_lower_bound(buckets.first().expect("non-empty").0),
            max: bucket_upper_bound(buckets.last().expect("non-empty").0).min(self.max),
            buckets,
        }
    }
}

/// A log2-bucketed histogram for latencies and sizes. Cloning shares the
/// underlying data.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Rc<RefCell<HistogramData>>);

impl Histogram {
    pub fn observe(&self, v: u64) {
        let mut h = self.0.borrow_mut();
        h.count += 1;
        h.sum = h.sum.saturating_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }

    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }

    pub fn sum(&self) -> u64 {
        self.0.borrow().sum
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = self.0.borrow();
        HistogramSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i, c))
                .collect(),
        }
    }

    fn reset(&self) {
        *self.0.borrow_mut() = HistogramData::default();
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first call mints
/// the metric, later calls (and clones of the returned handle) share it.
/// [`Registry::reset`] zeroes every metric *in place*, so handles resolved
/// before the reset keep working.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RefCell<BTreeMap<String, Counter>>,
    gauges: RefCell<BTreeMap<String, Gauge>>,
    histograms: RefCell<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a counter (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .borrow()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Current value of a gauge (0 if it was never created).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.borrow().get(name).map(|g| g.get()).unwrap_or(0)
    }

    /// Zero every counter, gauge, and histogram, keeping existing handles
    /// live.
    pub fn reset(&self) {
        for c in self.counters.borrow().values() {
            c.set(0);
        }
        for g in self.gauges.borrow().values() {
            g.set(0);
        }
        for h in self.histograms.borrow().values() {
            h.reset();
        }
    }

    /// Export the registry as JSON lines: exactly one JSON object per line
    /// — counters first, then gauges, then histograms, each sorted by name.
    ///
    /// ```text
    /// {"kind":"counter","name":"engine.parses","value":3}
    /// {"kind":"gauge","name":"pool.worker0.queue_depth","value":2}
    /// {"kind":"histogram","name":"phase.parse_ns","count":2,"sum":700,"min":300,"max":400,"buckets":[[9,2]]}
    /// ```
    ///
    /// Bucket entries are `[index, count]` pairs where index `i` covers
    /// values in `[2^(i-1), 2^i)` (index 0 is the value 0).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.borrow().iter() {
            json_metric_value_line(&mut out, "counter", name, c.get());
        }
        for (name, g) in self.gauges.borrow().iter() {
            json_metric_value_line(&mut out, "gauge", name, g.get());
        }
        for (name, h) in self.histograms.borrow().iter() {
            json_histogram_line(&mut out, name, &h.snapshot());
        }
        out
    }
}

/// Render one `{"kind":…,"name":…,"value":…}` metric line (plus newline).
pub(crate) fn json_metric_value_line(out: &mut String, kind: &str, name: &str, value: u64) {
    out.push_str("{\"kind\":\"");
    out.push_str(kind);
    out.push_str("\",\"name\":\"");
    json_escape(name, out);
    out.push_str(&format!("\",\"value\":{value}}}\n"));
}

/// Render one histogram metric line (plus newline) from a snapshot.
pub(crate) fn json_histogram_line(out: &mut String, name: &str, s: &HistogramSnapshot) {
    out.push_str("{\"kind\":\"histogram\",\"name\":\"");
    json_escape(name, out);
    let min = if s.count == 0 { 0 } else { s.min };
    out.push_str(&format!(
        "\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
        s.count, s.sum, min, s.max
    ));
    for (i, (idx, c)) in s.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{idx},{c}]"));
    }
    out.push_str("]}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(11), 1024);
    }

    #[test]
    fn counters_share_state_across_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 5, 5, 300] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 311);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 300);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (3, 2), (9, 1)]);
        assert_eq!(s.mean(), 62);
    }

    #[test]
    fn reset_zeroes_in_place_and_keeps_handles() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(7);
        h.observe(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(reg.counter_value("c"), 1);
    }

    #[test]
    fn json_lines_are_one_object_per_line() {
        let reg = Registry::new();
        reg.counter("b.count").add(2);
        reg.counter("a.count").inc();
        reg.histogram("h").observe(3);
        let out = reg.to_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        // Counters sorted by name, then histograms.
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"a.count\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"counter\",\"name\":\"b.count\",\"value\":2}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"histogram\",\"name\":\"h\",\"count\":1,\"sum\":3,\"min\":3,\"max\":3,\"buckets\":[[2,1]]}"
        );
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn quantile_estimates_bucket_upper_bounds() {
        let h = Histogram::default();
        // 10 observations: 0, 1, 3, 3, 5, 9, 17, 33, 100, 1000.
        // Buckets: 0→[0], 1→[1], 2→[3,3], 3→[5], 4→[9], 5→[17], 6→[33],
        // 7→[100], 10→[1000].
        for v in [0, 1, 3, 3, 5, 9, 17, 33, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        // p50 → 5th observation → bucket 3 (values 4..=7) → upper bound 7.
        assert_eq!(s.quantile(0.5), 7);
        // p90 → 9th observation → bucket 7 (values 64..=127) → 127.
        assert_eq!(s.quantile(0.9), 127);
        // p99 → 10th observation → bucket 10, but the recorded max (1000)
        // is tighter than the bucket bound (1023).
        assert_eq!(s.quantile(0.99), 1000);
        // p0 clamps to the first observation's bucket.
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 1000);
        // Empty histogram → 0.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
        // A single observation answers every quantile with (at most) its
        // own bucket bound clamped to itself.
        let one = Histogram::default();
        one.observe(6);
        assert_eq!(one.snapshot().quantile(0.5), 6);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile (including the bounds) reports 0.
        let empty = HistogramSnapshot::default();
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(empty.quantile(q), 0);
        }

        // Single sample: every quantile collapses onto that sample
        // (bucket upper bound clamped by the recorded max).
        let one = Histogram::default();
        one.observe(42); // bucket 6 (33..=64), bound 63, max 42
        let s = one.snapshot();
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 42, "q={q}");
        }

        // All mass in the top (saturation) bucket: the bucket bound is
        // u64::MAX, and the recorded-max clamp keeps the estimate honest.
        let top = Histogram::default();
        for _ in 0..3 {
            top.observe(u64::MAX);
        }
        let s = top.snapshot();
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(s.quantile(0.5), u64::MAX);
        assert_eq!(s.quantile(1.0), u64::MAX);
        // Saturating values just below the bound land in the same bucket
        // but report their own max, not the bucket's.
        let near = Histogram::default();
        near.observe(u64::MAX - 7);
        assert_eq!(near.snapshot().quantile(0.99), u64::MAX - 7);

        // q = 0.0 and q = 1.0 clamp to the first and last observation.
        let h = Histogram::default();
        h.observe(1);
        h.observe(500);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1, "q=0 targets the first observation");
        assert_eq!(s.quantile(1.0), 500, "q=1 targets the last observation");
    }

    #[test]
    fn delta_isolates_the_window() {
        let h = Histogram::default();
        for v in [1, 3, 100] {
            h.observe(v);
        }
        let before = h.snapshot();
        for v in [5, 5, 1000] {
            h.observe(v);
        }
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 3);
        assert_eq!(d.sum, 1010);
        assert_eq!(d.buckets, vec![(3, 2), (10, 1)]);
        // Window quantiles see only the window's observations.
        assert_eq!(d.quantile(0.5), 7); // bucket 3 upper bound
        assert_eq!(d.quantile(1.0), 1000); // clamped by cumulative max
        assert_eq!(d.min, bucket_lower_bound(3));
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let h = Histogram::default();
        h.observe(7);
        let s = h.snapshot();
        let d = s.delta(&s);
        assert_eq!(d, HistogramSnapshot::default());
        assert_eq!(d.quantile(0.99), 0);
    }

    #[test]
    fn delta_saturates_across_counter_resets() {
        // A worker respawn (generation bump) zeroes its per-worker
        // histogram, so the "later" snapshot can be *smaller* than the
        // earlier one. Every diff saturates: quantiles stay in-range
        // (never the 2^64 wraparound), and partially-reset buckets clamp
        // per bucket, not globally.
        let h = Histogram::default();
        for v in [1, 5, 5, 900] {
            h.observe(v);
        }
        let before = h.snapshot();

        // Full reset, fewer observations than before.
        let respawned = Histogram::default();
        respawned.observe(3);
        let d = respawned.snapshot().delta(&before);
        assert_eq!(d.count, 1, "only the post-reset observation survives");
        assert_eq!(d.buckets, vec![(2, 1)]);
        assert!(d.quantile(0.99) <= 3, "quantile never exceeds observed max");
        assert_eq!(d.sum, 0, "sum saturates rather than wrapping");

        // Reset to *empty*: the delta is the empty snapshot, with the
        // empty-snapshot sentinels (min = u64::MAX, max = 0) intact.
        let empty = Histogram::default().snapshot().delta(&before);
        assert_eq!(empty, HistogramSnapshot::default());
        assert_eq!(empty.quantile(0.5), 0);

        // Per-bucket wraparound: one bucket shrank (reset) while another
        // grew; the shrunken bucket contributes 0, the grown one its
        // genuine delta.
        let later = HistogramSnapshot {
            count: 3,
            sum: 30,
            min: 1,
            max: 20,
            buckets: vec![(1, 1), (5, 2)],
        };
        let earlier = HistogramSnapshot {
            count: 4,
            sum: 40,
            min: 1,
            max: 20,
            buckets: vec![(1, 3), (5, 1)],
        };
        let d = later.delta(&earlier);
        assert_eq!(d.buckets, vec![(5, 1)]);
        assert_eq!(d.count, 1, "count is the bucket-delta sum, not count−count");
        assert_eq!(d.quantile(1.0), 20, "clamped to cumulative max");
        assert_eq!(d.min, bucket_lower_bound(5));
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn gauges_are_settable_and_export_their_own_kind() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(5);
        g.add(2);
        g.sub(3);
        assert_eq!(g.get(), 4);
        assert_eq!(reg.gauge_value("depth"), 4);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.set(9);
        reg.counter("c").inc();
        reg.histogram("h").observe(1);
        let out = reg.to_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        // Counters, then gauges, then histograms.
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"c\",\"value\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"gauge\",\"name\":\"depth\",\"value\":9}"
        );
        assert!(lines[2].starts_with("{\"kind\":\"histogram\""));
        reg.reset();
        assert_eq!(g.get(), 0, "reset zeroes gauges in place");
    }

    #[test]
    fn empty_histogram_exports_zero_min() {
        let reg = Registry::new();
        reg.histogram("h");
        let out = reg.to_json_lines();
        assert!(out.contains("\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]"));
    }
}

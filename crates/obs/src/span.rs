//! Spans and the tracer that times them.
//!
//! A [`Tracer`] bundles a [`Clock`] and a [`TraceSink`]. Starting a span
//! reads the clock once; finishing it reads the clock again, returns the
//! duration (callers feed it into a histogram), and — only when tracing is
//! enabled — emits a [`SpanRecord`] to the sink. A span does not borrow
//! the tracer while open, so the traced computation is free to take `&mut`
//! over whatever owns the tracer.

use crate::clock::{Clock, WallClock};
use crate::sink::{NullSink, SpanRecord, TraceSink};
use std::rc::Rc;

/// Clock + sink + an on/off switch for record emission. Timing itself is
/// always on; only the per-span records are gated.
pub struct Tracer {
    clock: Rc<dyn Clock>,
    sink: Rc<dyn TraceSink>,
    enabled: bool,
    tag: Option<(String, u64)>,
}

impl Tracer {
    /// Wall clock, null sink, emission disabled — the production default.
    pub fn disabled() -> Self {
        Tracer {
            clock: Rc::new(WallClock::new()),
            sink: Rc::new(NullSink),
            enabled: false,
            tag: None,
        }
    }

    pub fn new(clock: Rc<dyn Clock>, sink: Rc<dyn TraceSink>) -> Self {
        Tracer {
            clock,
            sink,
            enabled: true,
            tag: None,
        }
    }

    pub fn set_clock(&mut self, clock: Rc<dyn Clock>) {
        self.clock = clock;
    }

    /// A handle on the tracer's clock (shared, not copied) — so other
    /// consumers of the same timeline (the evaluation profiler) can be
    /// wired to it.
    pub fn clock(&self) -> Rc<dyn Clock> {
        Rc::clone(&self.clock)
    }

    /// Install a sink and enable emission.
    pub fn set_sink(&mut self, sink: Rc<dyn TraceSink>) {
        self.sink = sink;
        self.enabled = true;
    }

    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Set (or clear, with `None`) a correlation tag. While set, every
    /// span started by this tracer carries it as its first attribute —
    /// this is how an embedding layer (the pool worker) stamps engine
    /// phase spans with the request they run on behalf of.
    pub fn set_tag(&mut self, tag: Option<(String, u64)>) {
        self.tag = tag;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Start a span at the current clock reading. If a correlation tag is
    /// set, the span starts with it as its first attribute.
    pub fn span(&self, name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            start_ns: self.clock.now_ns(),
            attrs: self
                .tag
                .as_ref()
                .map(|(k, v)| vec![(k.clone(), *v)])
                .unwrap_or_default(),
        }
    }

    /// Emit a record (only when enabled).
    pub fn emit(&self, record: &SpanRecord) {
        if self.enabled {
            self.sink.emit(record);
        }
    }
}

/// An open span: a name, a start time, and integer attributes attached
/// along the way. Finish with [`Span::finish`] to get the duration.
#[derive(Clone, Debug)]
pub struct Span {
    name: String,
    start_ns: u64,
    attrs: Vec<(String, u64)>,
}

impl Span {
    pub fn attr(&mut self, key: impl Into<String>, value: u64) {
        self.attrs.push((key.into(), value));
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Close the span against `tracer`: reads the clock, emits the record
    /// if tracing is enabled, and returns the measured duration in ns.
    pub fn finish(self, tracer: &Tracer) -> u64 {
        let dur_ns = tracer.now_ns().saturating_sub(self.start_ns);
        if tracer.is_enabled() {
            tracer.emit(&SpanRecord {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns,
                attrs: self.attrs,
            });
        }
        dur_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::sink::CollectingSink;

    #[test]
    fn span_measures_clock_delta() {
        let clock = Rc::new(ManualClock::new());
        let tracer = Tracer::new(clock.clone(), Rc::new(NullSink));
        let sp = tracer.span("parse");
        clock.advance(250);
        assert_eq!(sp.finish(&tracer), 250);
    }

    #[test]
    fn stepping_clock_gives_nonzero_spans() {
        let tracer = Tracer::new(Rc::new(ManualClock::with_step(100)), Rc::new(NullSink));
        let sp = tracer.span("infer");
        assert_eq!(sp.finish(&tracer), 100);
    }

    #[test]
    fn enabled_tracer_emits_records_with_attrs() {
        let sink = Rc::new(CollectingSink::new());
        let mut tracer = Tracer::new(Rc::new(ManualClock::with_step(10)), sink.clone());
        let mut sp = tracer.span("eval");
        sp.attr("fuel", 7);
        sp.finish(&tracer);
        let spans = sink.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "eval");
        assert_eq!(spans[0].dur_ns, 10);
        assert_eq!(spans[0].attrs, vec![("fuel".to_string(), 7)]);

        tracer.set_enabled(false);
        tracer.span("eval").finish(&tracer);
        assert_eq!(sink.len(), 1, "disabled tracer must not emit");
    }

    #[test]
    fn disabled_tracer_still_times() {
        let mut tracer = Tracer::disabled();
        tracer.set_clock(Rc::new(ManualClock::with_step(33)));
        let sp = tracer.span("parse");
        assert_eq!(sp.finish(&tracer), 33);
    }

    #[test]
    fn tag_is_seeded_as_first_attr_while_set() {
        let sink = Rc::new(CollectingSink::new());
        let mut tracer = Tracer::new(Rc::new(ManualClock::with_step(1)), sink.clone());
        tracer.set_tag(Some(("request_id".into(), 42)));
        let mut sp = tracer.span("parse");
        sp.attr("tokens", 9);
        sp.finish(&tracer);
        tracer.set_tag(None);
        tracer.span("parse").finish(&tracer);
        let spans = sink.spans();
        assert_eq!(
            spans[0].attrs,
            vec![("request_id".to_string(), 42), ("tokens".to_string(), 9)]
        );
        assert!(spans[1].attrs.is_empty(), "cleared tag must not leak");
    }
}

//! Trace sinks: where finished spans go.
//!
//! The engine always *times* phases (histograms are cheap); emitting
//! per-span records is opt-in via a [`TraceSink`]. [`NullSink`] is the
//! default, [`CollectingSink`] backs tests, and [`JsonLinesSink`] streams
//! one JSON object per span to any writer (the REPL's `:trace on`).

use crate::json_escape;
use std::cell::RefCell;
use std::io::Write;

/// One finished span: a named phase with a start time, a duration, and
/// integer attributes (counts, sizes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub attrs: Vec<(String, u64)>,
}

impl SpanRecord {
    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"kind\":\"span\",\"name\":\"");
        json_escape(&self.name, &mut out);
        out.push_str(&format!(
            "\",\"start_ns\":{},\"dur_ns\":{}",
            self.start_ns, self.dur_ns
        ));
        for (k, v) in &self.attrs {
            out.push_str(",\"");
            json_escape(k, &mut out);
            out.push_str(&format!("\":{v}"));
        }
        out.push('}');
        out
    }
}

/// A consumer of finished spans. `&self` with interior mutability so sinks
/// can be shared via `Rc` with the engine.
pub trait TraceSink {
    fn emit(&self, span: &SpanRecord);
}

/// Discards every span.
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _span: &SpanRecord) {}
}

/// Keeps every span in memory — the test sink.
#[derive(Debug, Default)]
pub struct CollectingSink {
    spans: RefCell<Vec<SpanRecord>>,
}

impl CollectingSink {
    pub fn new() -> Self {
        CollectingSink::default()
    }

    pub fn len(&self) -> usize {
        self.spans.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.spans.borrow().is_empty()
    }

    /// A copy of the collected spans, in emission order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.borrow().clone()
    }

    /// Drain the collected spans.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.borrow_mut())
    }
}

impl TraceSink for CollectingSink {
    fn emit(&self, span: &SpanRecord) {
        self.spans.borrow_mut().push(span.clone());
    }
}

/// Writes one JSON object per span to the wrapped writer. Write errors are
/// swallowed: tracing must never fail the traced computation.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: RefCell<W>,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(out: W) -> Self {
        JsonLinesSink {
            out: RefCell::new(out),
        }
    }

    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn emit(&self, span: &SpanRecord) {
        let mut line = span.to_json();
        line.push('\n');
        let _ = self.out.borrow_mut().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SpanRecord {
        SpanRecord {
            name: "infer".into(),
            start_ns: 10,
            dur_ns: 32,
            attrs: vec![("unify_steps".into(), 4)],
        }
    }

    #[test]
    fn span_record_json_shape() {
        assert_eq!(
            record().to_json(),
            "{\"kind\":\"span\",\"name\":\"infer\",\"start_ns\":10,\"dur_ns\":32,\"unify_steps\":4}"
        );
    }

    #[test]
    fn collecting_sink_collects_in_order() {
        let s = CollectingSink::new();
        assert!(s.is_empty());
        s.emit(&record());
        s.emit(&SpanRecord {
            name: "eval".into(),
            start_ns: 50,
            dur_ns: 9,
            attrs: vec![],
        });
        assert_eq!(s.len(), 2);
        let spans = s.take();
        assert_eq!(spans[0].name, "infer");
        assert_eq!(spans[1].name, "eval");
        assert!(s.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_span() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.emit(&record());
        sink.emit(&record());
        let buf = sink.into_inner();
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        for l in text.lines() {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn null_sink_is_a_noop() {
        NullSink.emit(&record());
    }
}

//! The pool health model and windowed-stats plumbing: a typed
//! `Healthy` / `Degraded` / `Unhealthy` verdict computed **without any
//! worker round-trip**, plus the snapshot ring that gives the pool
//! windowed rates and quantiles (`obs::window`).
//!
//! # Why no round-trip
//!
//! [`Pool::stats`] asks every replica for a report over its request queue
//! — exactly the channel that is wedged when the operator most needs an
//! answer. Health reads only what the router can see lock-free: the
//! [`crate::worker::WorkerShared`] atomics each worker publishes (queue
//! depth, applied offset, replay errors), thread liveness
//! (`JoinHandle::is_finished`), the log length, and — when windowing is
//! on — the windowed busy/error rates from the snapshot ring. That makes
//! [`Pool::health`] cheap enough for a load-balancer probe and safe to
//! call while every queue is full, which is the contract the network
//! door's `health` wire op relies on (it answers as an immediate, like
//! `ping`).
//!
//! # Windowing is pull-driven
//!
//! The pool never spawns a timer thread: whoever serves `stats` calls
//! [`Pool::tick_window`], which reads the telemetry clock **once** and
//! pushes a snapshot only if the configured interval has elapsed. With
//! windowing disabled ([`crate::PoolConfig::stats_window`] unset) the
//! tick is a single branch and performs **zero clock reads** — the same
//! discipline (and the same [`polyview::obs::SharedManualClock::reads`]
//! proof) the disabled-telemetry path follows.

use crate::router::Pool;
use polyview::obs::window::{RegistrySnapshot, SnapshotRing, WindowView};
use std::sync::atomic::Ordering;

/// Windowed-stats knobs (see [`crate::PoolConfig::stats_window`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowConfig {
    /// Snapshots kept in the ring (clamped to ≥ 2): the window spans at
    /// most `capacity − 1` intervals.
    pub capacity: usize,
    /// Minimum time between snapshots; ticks inside the interval are
    /// no-ops, so callers may tick as often as they like.
    pub interval_ns: u64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            capacity: 16,
            interval_ns: 1_000_000_000,
        }
    }
}

/// Thresholds the health verdict folds worker state against
/// ([`crate::PoolConfig::health`]). Defaults are deliberately permissive:
/// health is for load balancers, which must not flap on routine jitter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthThresholds {
    /// A replica whose replay lag (sequenced − applied) reaches this many
    /// entries is degraded: reads routed to it stall catching up.
    pub max_replay_lag: u64,
    /// A replica whose queue depth reaches this percentage of
    /// `queue_capacity` is degraded (admission is about to reject).
    pub queue_watermark_pct: u8,
    /// Windowed backpressure-rejection rate (per second) above which the
    /// pool is degraded. Only meaningful with windowing on.
    pub max_busy_rate: f64,
    /// Windowed replay-error rate (per second) above which the pool is
    /// degraded. Only meaningful with windowing on.
    pub max_error_rate: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            max_replay_lag: 256,
            queue_watermark_pct: 90,
            max_busy_rate: 100.0,
            max_error_rate: 1.0,
        }
    }
}

/// The typed verdict. `Degraded` means "serves, but something needs
/// attention"; `Unhealthy` means "stop sending traffic here" (a dead
/// replica awaiting respawn, or every queue at capacity).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Health {
    Healthy,
    Degraded { reasons: Vec<String> },
    Unhealthy { reasons: Vec<String> },
}

impl Health {
    /// The wire/display name: `healthy`, `degraded`, or `unhealthy`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded { .. } => "degraded",
            Health::Unhealthy { .. } => "unhealthy",
        }
    }

    pub fn is_healthy(&self) -> bool {
        matches!(self, Health::Healthy)
    }

    /// The reasons behind a non-healthy verdict (empty for `Healthy`).
    pub fn reasons(&self) -> &[String] {
        match self {
            Health::Healthy => &[],
            Health::Degraded { reasons } | Health::Unhealthy { reasons } => reasons,
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())?;
        if !self.reasons().is_empty() {
            write!(f, " ({})", self.reasons().join("; "))?;
        }
        Ok(())
    }
}

/// The verdict plus the observations it was folded from — what the
/// `health` wire op serializes.
#[derive(Clone, Debug)]
pub struct HealthReport {
    pub health: Health,
    pub workers: usize,
    pub log_len: u64,
    /// Worst replay lag across replicas.
    pub max_replay_lag: u64,
    /// Deepest queue across replicas.
    pub max_queue_depth: u64,
    /// Windowed `Submit::Full` rejections per second (0 without a window).
    pub busy_rate: f64,
    /// Windowed replay errors per second (0 without a window).
    pub error_rate: f64,
    /// Span of the window the rates came from (0 without a window).
    pub window_span_ns: u64,
}

/// One replica's router-visible state — everything the health model and
/// the `stats` wire op's per-worker rows read, all lock-free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerRow {
    pub worker: usize,
    /// Respawn generation of the thread currently in the slot.
    pub generation: u64,
    /// Whether the worker thread is running (a dead slot respawns on the
    /// next pool interaction).
    pub live: bool,
    /// Log offset applied (exclusive).
    pub applied: u64,
    /// Sequenced-but-unapplied entries.
    pub replay_lag: u64,
    pub queue_depth: u64,
    pub replay_errors: u64,
}

/// The router-side window state: the ring plus the tick gate.
pub(crate) struct PoolWindow {
    pub(crate) ring: SnapshotRing,
    pub(crate) interval_ns: u64,
    pub(crate) last_ns: Option<u64>,
}

impl PoolWindow {
    pub(crate) fn new(cfg: WindowConfig) -> PoolWindow {
        PoolWindow {
            ring: SnapshotRing::new(cfg.capacity),
            interval_ns: cfg.interval_ns,
            last_ns: None,
        }
    }
}

impl Pool {
    /// Every replica's router-visible state, lock-free (`&self`, no
    /// worker round-trip — safe while replicas are paused or wedged).
    pub fn worker_rows(&self) -> Vec<WorkerRow> {
        let log_len = self.log.len();
        self.workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let applied = w.shared.applied.load(Ordering::Relaxed);
                WorkerRow {
                    worker: i,
                    generation: w.generation,
                    live: !w.join.is_finished(),
                    applied,
                    replay_lag: log_len.saturating_sub(applied),
                    queue_depth: w.shared.depth.load(Ordering::Relaxed),
                    replay_errors: w.shared.replay_errors.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Take a windowed snapshot if the configured interval has elapsed,
    /// reading the telemetry clock once. Returns whether a snapshot was
    /// taken. With windowing disabled this is **one branch and zero clock
    /// reads** — provable under an injected
    /// [`polyview::obs::SharedManualClock`].
    pub fn tick_window(&mut self) -> bool {
        if self.window.is_none() {
            return false;
        }
        let now = self.telemetry.clock.now_ns();
        self.tick_window_at(now)
    }

    /// [`Pool::tick_window`] with a caller-supplied timestamp — the
    /// deterministic entry point for manual-clock tests (no clock read at
    /// all).
    pub fn tick_window_at(&mut self, now_ns: u64) -> bool {
        let Some(w) = self.window.as_ref() else {
            return false;
        };
        if let Some(last) = w.last_ns {
            if now_ns.saturating_sub(last) < w.interval_ns {
                return false;
            }
        }
        let snap = self.window_snapshot(now_ns);
        let w = self.window.as_mut().expect("checked above");
        w.last_ns = Some(now_ns);
        w.ring.push(snap);
        true
    }

    /// The current window (oldest ring snapshot → newest), or `None`
    /// until windowing is enabled and two snapshots exist.
    pub fn window(&self) -> Option<WindowView> {
        self.window.as_ref().and_then(|w| w.ring.window())
    }

    /// A point-in-time copy of every cumulative pool metric — the shared
    /// telemetry registry plus the router-only counters and per-worker
    /// gauges — stamped with the caller-supplied time. This is both what
    /// the window ring stores and what the `stats` wire op serializes as
    /// its cumulative section.
    pub fn registry_snapshot(&self, at_ns: u64) -> RegistrySnapshot {
        self.window_snapshot(at_ns)
    }

    /// One windowed snapshot: the shared telemetry registry (latency
    /// histograms) plus the pool counters and per-worker gauges only the
    /// router can see. The timestamp is caller-supplied (see the module
    /// docs on clock discipline).
    fn window_snapshot(&self, at_ns: u64) -> RegistrySnapshot {
        let mut snap = self.telemetry.registry.snapshot(at_ns);
        let log_len = self.log.len();
        let c = &mut snap.counters;
        c.insert("pool.submitted_reads".to_string(), self.submitted_reads);
        c.insert("pool.submitted_writes".to_string(), self.submitted_writes);
        c.insert("pool.rejected_full".to_string(), self.rejected_full);
        c.insert("pool.respawns".to_string(), self.respawns);
        c.insert("pool.log_len".to_string(), log_len);
        c.insert("pool.log_base".to_string(), self.log.base());
        let mut replay_errors = 0u64;
        let mut checkpoints = 0u64;
        let mut checkpoint_ns = 0u64;
        let mut respawn_replayed = 0u64;
        for (i, w) in self.workers.iter().enumerate() {
            let applied = w.shared.applied.load(Ordering::Relaxed);
            snap.gauges.insert(
                format!("pool.worker{i}.queue_depth"),
                w.shared.depth.load(Ordering::Relaxed),
            );
            snap.gauges.insert(
                format!("pool.worker{i}.replay_lag"),
                log_len.saturating_sub(applied),
            );
            snap.gauges.insert(
                format!("pool.worker{i}.respawn_replayed"),
                w.shared.respawn_replayed.load(Ordering::Relaxed),
            );
            replay_errors =
                replay_errors.saturating_add(w.shared.replay_errors.load(Ordering::Relaxed));
            checkpoints = checkpoints.saturating_add(w.shared.checkpoints.load(Ordering::Relaxed));
            checkpoint_ns =
                checkpoint_ns.saturating_add(w.shared.checkpoint_ns.load(Ordering::Relaxed));
            respawn_replayed =
                respawn_replayed.saturating_add(w.shared.respawn_replayed.load(Ordering::Relaxed));
        }
        // Summed across replicas; a respawn resets one replica's tally,
        // which the windowed saturating delta absorbs.
        c.insert("pool.replay_errors".to_string(), replay_errors);
        c.insert("pool.checkpoints".to_string(), checkpoints);
        c.insert("pool.checkpoint_ns".to_string(), checkpoint_ns);
        c.insert("pool.respawn_replayed".to_string(), respawn_replayed);
        snap
    }

    /// Fold worker liveness, replay lag, queue watermarks, and windowed
    /// busy/error rates into a [`HealthReport`] against
    /// [`crate::PoolConfig::health`]. `&self`, lock-free, no worker
    /// round-trip — callable while every queue is full.
    pub fn health(&self) -> HealthReport {
        let t = &self.cfg.health;
        let rows = self.worker_rows();
        let capacity = self.cfg.queue_capacity as u64;
        let mut degraded: Vec<String> = Vec::new();
        let mut unhealthy: Vec<String> = Vec::new();
        for r in &rows {
            if !r.live {
                unhealthy.push(format!(
                    "worker {} dead (gen {}, respawn pending)",
                    r.worker, r.generation
                ));
                continue;
            }
            if r.replay_lag >= t.max_replay_lag {
                degraded.push(format!(
                    "worker {} replay lag {} >= {}",
                    r.worker, r.replay_lag, t.max_replay_lag
                ));
            }
            if r.queue_depth.saturating_mul(100)
                >= capacity.saturating_mul(t.queue_watermark_pct as u64)
            {
                degraded.push(format!(
                    "worker {} queue depth {}/{} >= {}%",
                    r.worker, r.queue_depth, capacity, t.queue_watermark_pct
                ));
            }
        }
        if !rows.is_empty() && rows.iter().all(|r| r.queue_depth >= capacity) {
            unhealthy.push("every worker queue is at capacity".to_string());
        }
        // Replay errors are deterministic across replicas (same entry,
        // same state), so *any* error means a sequenced write failed on
        // every replica that has reached it — the log carries a statement
        // the pool cannot apply. That is broken state, not load: surface
        // it as unhealthy, not merely as a windowed rate.
        let replay_errors: u64 = rows.iter().map(|r| r.replay_errors).sum();
        if replay_errors > 0 {
            unhealthy.push(format!(
                "{replay_errors} replay error(s): a sequenced write fails on every replica"
            ));
        }
        let (busy_rate, error_rate, window_span_ns) = match self.window() {
            Some(w) => (
                w.rate_per_sec("pool.rejected_full"),
                w.rate_per_sec("pool.replay_errors"),
                w.span_ns(),
            ),
            None => (0.0, 0.0, 0),
        };
        if busy_rate > t.max_busy_rate {
            degraded.push(format!(
                "busy rate {busy_rate:.1}/s > {:.1}/s",
                t.max_busy_rate
            ));
        }
        if error_rate > t.max_error_rate {
            degraded.push(format!(
                "replay error rate {error_rate:.1}/s > {:.1}/s",
                t.max_error_rate
            ));
        }
        let health = if !unhealthy.is_empty() {
            unhealthy.extend(degraded);
            Health::Unhealthy { reasons: unhealthy }
        } else if !degraded.is_empty() {
            Health::Degraded { reasons: degraded }
        } else {
            Health::Healthy
        };
        HealthReport {
            health,
            workers: rows.len(),
            log_len: self.log.len(),
            max_replay_lag: rows.iter().map(|r| r.replay_lag).max().unwrap_or(0),
            max_queue_depth: rows.iter().map(|r| r.queue_depth).max().unwrap_or(0),
            busy_rate,
            error_rate,
            window_span_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pool, PoolConfig};
    use polyview::obs::SharedManualClock;
    use std::sync::Arc;

    #[test]
    fn health_is_healthy_on_an_idle_pool() {
        let pool = Pool::new(PoolConfig::default().workers(2));
        let report = pool.health();
        assert!(report.health.is_healthy(), "{:?}", report.health);
        assert_eq!(report.health.as_str(), "healthy");
        assert_eq!(report.workers, 2);
        assert_eq!(report.max_replay_lag, 0);
        assert!(report.health.reasons().is_empty());
        pool.shutdown();
    }

    #[test]
    fn windowing_disabled_performs_zero_clock_reads() {
        let clock = Arc::new(SharedManualClock::new());
        let mut pool = Pool::new(
            PoolConfig::default()
                .workers(1)
                .telemetry_clock(clock.clone()),
        );
        pool.run(0, "1 + 1").expect("read");
        for _ in 0..10 {
            assert!(!pool.tick_window(), "no window configured");
        }
        let _ = pool.health();
        assert!(pool.window().is_none());
        assert_eq!(
            clock.reads(),
            0,
            "disabled windowing (and disabled telemetry) never read the clock"
        );
        pool.shutdown();
    }

    #[test]
    fn windowed_rates_are_deterministic_under_a_manual_clock() {
        let mut pool = Pool::new(PoolConfig::default().workers(1).stats_window(WindowConfig {
            capacity: 4,
            interval_ns: 1_000_000_000,
        }));
        assert!(pool.tick_window_at(0), "first tick always snapshots");
        assert!(
            !pool.tick_window_at(999_999_999),
            "inside the interval: no-op"
        );
        for _ in 0..10 {
            pool.run(0, "1 + 1").expect("read");
        }
        pool.run(0, "val hw = 2;").expect("write");
        assert!(pool.tick_window_at(2_000_000_000));
        let w = pool.window().expect("two snapshots make a window");
        assert_eq!(w.span_ns(), 2_000_000_000);
        assert_eq!(w.counter_delta("pool.submitted_reads"), 10);
        assert_eq!(w.counter_delta("pool.submitted_writes"), 1);
        assert_eq!(w.rate_per_sec("pool.submitted_reads"), 5.0);
        // The ring bounds history: 3 more ticks evict the origin.
        for i in 3..6u64 {
            assert!(pool.tick_window_at(i * 1_000_000_000));
        }
        let w = pool.window().expect("window");
        assert_eq!(w.span_ns(), 3_000_000_000, "capacity 4 spans 3 intervals");
        assert_eq!(
            w.counter_delta("pool.submitted_reads"),
            0,
            "load is old news"
        );
        pool.shutdown();
    }

    #[test]
    fn degraded_drill_replay_lag_and_recovery() {
        // Healthy → Degraded{replay lag} while a paused replica falls
        // behind → Healthy on resume. Deterministic: the pause gate holds
        // the replica, writes go to the log, and no sleeps are needed —
        // lag is read from shared atomics, and the barrier bounds resume.
        let mut pool = Pool::new(
            PoolConfig::default()
                .workers(2)
                .queue_capacity(64)
                .health_thresholds(HealthThresholds {
                    max_replay_lag: 3,
                    ..HealthThresholds::default()
                }),
        );
        assert!(pool.health().health.is_healthy());

        let paused = 0usize;
        let gate = pool.pause_worker(paused).expect("pause");
        // Drive writes through a session pinned to the *other* replica,
        // so they complete while the paused replica's lag grows.
        let session = (0..u64::MAX)
            .find(|s| pool.worker_for(*s) != paused)
            .expect("some session maps elsewhere");
        for i in 0..4 {
            pool.run(session, &format!("val drill{i} = {i};"))
                .expect("write");
        }
        let report = pool.health();
        match &report.health {
            Health::Degraded { reasons } => {
                assert!(
                    reasons.iter().any(|r| r.contains("replay lag")),
                    "expected a replay-lag reason, got {reasons:?}"
                );
            }
            other => panic!("expected Degraded, got {other:?} ({report:?})"),
        }
        assert!(report.max_replay_lag >= 3);

        gate.release();
        pool.barrier().expect("barrier");
        let report = pool.health();
        assert!(
            report.health.is_healthy(),
            "healthy again after resume: {:?}",
            report.health
        );
        assert_eq!(report.max_replay_lag, 0);
        pool.shutdown();
    }

    #[test]
    fn dead_worker_is_unhealthy_until_respawned() {
        let mut pool = Pool::new(PoolConfig::default().workers(2));
        pool.queue_worker_panic(0);
        pool.await_worker_exit(0);
        let report = pool.health();
        match &report.health {
            Health::Unhealthy { reasons } => {
                assert!(reasons.iter().any(|r| r.contains("dead")), "{reasons:?}");
            }
            other => panic!("expected Unhealthy, got {other:?}"),
        }
        // Any pool interaction respawns; health recovers.
        pool.barrier().expect("barrier respawns");
        assert!(pool.health().health.is_healthy());
        pool.shutdown();
    }

    #[test]
    fn health_display_includes_reasons() {
        let h = Health::Degraded {
            reasons: vec!["worker 1 replay lag 9 >= 3".to_string()],
        };
        assert_eq!(h.to_string(), "degraded (worker 1 replay lag 9 >= 3)");
        assert_eq!(Health::Healthy.to_string(), "healthy");
    }
}

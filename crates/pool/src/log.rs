//! The declaration log: the pool's single total order over writes.
//!
//! Every write (`val`/`fun`/`class` declaration, `insert`/`delete`,
//! `update`) is appended here exactly once, at submit time, and replayed by
//! every replica in offset order. Because the engine pipeline is
//! deterministic ([`polyview::Engine::replay`]), replicas that have applied
//! the same prefix of the log are in identical states — same `env_epoch`,
//! same top-level bindings, extents that render identically — regardless of
//! how many reads each has served in between.
//!
//! The log is append-only and entries are `Arc<str>`, so replaying clones a
//! pointer, never the source text, and the lock is held only for the
//! pointer clone — never while an engine executes anything.

use std::sync::{Arc, Mutex, MutexGuard};

/// An append-only, thread-shared sequence of write statements.
#[derive(Debug, Default)]
pub struct DeclLog {
    entries: Mutex<Vec<Arc<str>>>,
}

impl DeclLog {
    pub fn new() -> Self {
        DeclLog::default()
    }

    /// Number of sequenced writes. Also the `min_offset` a read submitted
    /// *now* must observe for read-your-writes.
    pub fn len(&self) -> u64 {
        self.lock().len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// The entry at `offset`, if sequenced yet.
    pub fn get(&self, offset: u64) -> Option<Arc<str>> {
        self.lock().get(offset as usize).cloned()
    }

    /// Append an entry, returning its offset. The router prefers
    /// [`DeclLog::lock`] so it can reserve the offset and enqueue the
    /// apply-request atomically; this standalone append exists for tests
    /// and for building a log ahead of pool construction.
    pub fn append(&self, src: &str) -> u64 {
        let mut entries = self.lock();
        let offset = entries.len() as u64;
        entries.push(Arc::from(src));
        offset
    }

    /// Lock the underlying entry vector. Poison-tolerant: a worker never
    /// holds this lock while executing user code, but if a panic ever does
    /// poison it, the log's data is still consistent (appends are a single
    /// `push`), so we keep serving rather than wedging the whole pool.
    pub(crate) fn lock(&self) -> MutexGuard<'_, Vec<Arc<str>>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_dense_offsets() {
        let log = DeclLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append("val x = 1;"), 0);
        assert_eq!(log.append("val y = 2;"), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(0).as_deref(), Some("val x = 1;"));
        assert_eq!(log.get(1).as_deref(), Some("val y = 2;"));
        assert_eq!(log.get(2), None);
    }

    #[test]
    fn entries_are_shared_not_copied() {
        let log = DeclLog::new();
        log.append("val x = 1;");
        let a = log.get(0).unwrap();
        let b = log.get(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}

//! The declaration log: the pool's single total order over writes.
//!
//! Every write (`val`/`fun`/`class` declaration, `insert`/`delete`,
//! `update`) is appended here exactly once, at submit time, and replayed by
//! every replica in offset order. Because the engine pipeline is
//! deterministic ([`polyview::Engine::replay`]), replicas that have applied
//! the same prefix of the log are in identical states — same `env_epoch`,
//! same top-level bindings, extents that render identically — regardless of
//! how many reads each has served in between.
//!
//! The log is append-only at the head and **truncatable at the tail**:
//! once every replica is past an offset *and* a checkpoint at or above it
//! exists (`crate::checkpoint`), the entries below it can never be read
//! again — a respawn bootstraps from the checkpoint, not from offset 0 —
//! so [`DeclLog::truncate_below`] drops them and records the cut as
//! `base`. **Offsets stay absolute** across truncation: `len()` still
//! counts every write ever sequenced, and a read below `base` is a
//! [`TruncatedRead`] error, never a silent `None` — silently treating a
//! compacted prefix as "not sequenced yet" would let a replica skip
//! history and diverge.
//!
//! Entries are `Arc<str>`, so replaying clones a pointer, never the source
//! text, and the lock is held only for the pointer clone — never while an
//! engine executes anything.

use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// A read below the log's truncation point — always a compaction-invariant
/// violation by the caller (the router only truncates offsets every
/// replica and the newest checkpoint are past), never a routine miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TruncatedRead {
    /// The offset that was asked for.
    pub offset: u64,
    /// The current truncation point: entries below this are gone.
    pub base: u64,
}

impl fmt::Display for TruncatedRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "log offset {} was truncated away (entries below {} are compacted; \
             bootstrap from a checkpoint instead of replaying history)",
            self.offset, self.base
        )
    }
}

impl std::error::Error for TruncatedRead {}

/// The locked interior: the truncation point plus the live suffix.
/// `entries[i]` holds the write sequenced at absolute offset `base + i`.
#[derive(Debug, Default)]
pub(crate) struct LogInner {
    base: u64,
    entries: Vec<Arc<str>>,
}

impl LogInner {
    /// The absolute offset the next appended entry will get (= the number
    /// of writes ever sequenced).
    pub(crate) fn next_offset(&self) -> u64 {
        self.base + self.entries.len() as u64
    }

    /// Append an entry, returning its absolute offset.
    pub(crate) fn push(&mut self, src: &str) -> u64 {
        let offset = self.next_offset();
        self.entries.push(Arc::from(src));
        offset
    }
}

/// An append-only, thread-shared sequence of write statements with
/// absolute offsets and a compaction point (see the module docs).
#[derive(Debug, Default)]
pub struct DeclLog {
    inner: Mutex<LogInner>,
}

impl DeclLog {
    pub fn new() -> Self {
        DeclLog::default()
    }

    /// A log whose entire prefix `[0, base)` is already compacted — the
    /// restart-from-checkpoint constructor: the process that wrote the
    /// checkpoint sequenced `base` writes whose text is gone, and every
    /// replica bootstraps from the checkpoint, so nothing ever needs them.
    pub fn with_base(base: u64) -> Self {
        DeclLog {
            inner: Mutex::new(LogInner {
                base,
                entries: Vec::new(),
            }),
        }
    }

    /// Number of writes ever sequenced (absolute, unaffected by
    /// truncation). Also the `min_offset` a read submitted *now* must
    /// observe for read-your-writes.
    pub fn len(&self) -> u64 {
        self.lock().next_offset()
    }

    /// The truncation point: entries below this offset are compacted away.
    pub fn base(&self) -> u64 {
        self.lock().base
    }

    /// True iff no write was ever sequenced.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry at absolute `offset`. `Ok(None)` means "not sequenced
    /// yet" (offset at or past the head — the caller waits for it);
    /// `Err(TruncatedRead)` means the entry existed and was compacted —
    /// a loud invariant violation, since the router never truncates an
    /// offset any replica still needs.
    pub fn get(&self, offset: u64) -> Result<Option<Arc<str>>, TruncatedRead> {
        let inner = self.lock();
        if offset < inner.base {
            return Err(TruncatedRead {
                offset,
                base: inner.base,
            });
        }
        Ok(inner.entries.get((offset - inner.base) as usize).cloned())
    }

    /// Append an entry, returning its absolute offset. The router prefers
    /// [`DeclLog::lock`] so it can reserve the offset and enqueue the
    /// apply-request atomically; this standalone append exists for tests
    /// and for building a log ahead of pool construction.
    pub fn append(&self, src: &str) -> u64 {
        self.lock().push(src)
    }

    /// Drop every entry below absolute offset `upto` (clamped to the
    /// head), advancing `base`. Returns the number of entries dropped.
    /// The caller (the router's compaction pass) must already know no
    /// replica will read below `upto` — every replica has applied past it
    /// and a checkpoint at or above it exists for future bootstraps.
    pub fn truncate_below(&self, upto: u64) -> u64 {
        let mut inner = self.lock();
        let head = inner.next_offset();
        let cut = upto.min(head);
        if cut <= inner.base {
            return 0;
        }
        let dropped = (cut - inner.base) as usize;
        inner.entries.drain(..dropped);
        inner.base = cut;
        dropped as u64
    }

    /// Lock the log interior. Poison-tolerant: a worker never holds this
    /// lock while executing user code, but if a panic ever does poison it,
    /// the log's data is still consistent (appends are a single `push`),
    /// so we keep serving rather than wedging the whole pool.
    pub(crate) fn lock(&self) -> MutexGuard<'_, LogInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_dense_offsets() {
        let log = DeclLog::new();
        assert!(log.is_empty());
        assert_eq!(log.append("val x = 1;"), 0);
        assert_eq!(log.append("val y = 2;"), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(0).unwrap().as_deref(), Some("val x = 1;"));
        assert_eq!(log.get(1).unwrap().as_deref(), Some("val y = 2;"));
        assert_eq!(log.get(2).unwrap(), None);
    }

    #[test]
    fn entries_are_shared_not_copied() {
        let log = DeclLog::new();
        log.append("val x = 1;");
        let a = log.get(0).unwrap().unwrap();
        let b = log.get(0).unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn truncation_keeps_offsets_absolute_and_reads_below_base_loud() {
        let log = DeclLog::new();
        for i in 0..5 {
            log.append(&format!("val x{i} = {i};"));
        }
        assert_eq!(log.truncate_below(3), 3);
        assert_eq!(log.base(), 3);
        assert_eq!(log.len(), 5, "len counts compacted history");
        // Surviving entries keep their absolute offsets.
        assert_eq!(log.get(3).unwrap().as_deref(), Some("val x3 = 3;"));
        assert_eq!(log.get(4).unwrap().as_deref(), Some("val x4 = 4;"));
        assert_eq!(log.get(5).unwrap(), None, "head is still a plain miss");
        // A compacted read is an error, never None-as-empty.
        let err = log.get(2).expect_err("below base is loud");
        assert_eq!(err, TruncatedRead { offset: 2, base: 3 });
        assert!(err.to_string().contains("truncated"));
        // Appends continue at absolute offsets.
        assert_eq!(log.append("val x5 = 5;"), 5);
        // Truncation is idempotent and clamped.
        assert_eq!(log.truncate_below(2), 0, "below base is a no-op");
        assert_eq!(log.truncate_below(100), 3, "clamped to the head");
        assert_eq!(log.base(), 6);
    }

    #[test]
    fn with_base_starts_fully_compacted() {
        let log = DeclLog::with_base(7);
        assert_eq!(log.len(), 7);
        assert_eq!(log.base(), 7);
        assert!(!log.is_empty());
        assert!(log.get(6).is_err());
        assert_eq!(log.get(7).unwrap(), None);
        assert_eq!(log.append("val a = 1;"), 7);
        assert_eq!(log.get(7).unwrap().as_deref(), Some("val a = 1;"));
    }
}

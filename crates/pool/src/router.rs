//! The pool front-end: classification, session-affinity routing, write
//! sequencing, barriers, and shutdown.
//!
//! A [`Pool`] is driven from one coordinating thread (`&mut self`
//! methods); all concurrency lives behind the workers' queues. That makes
//! the ordering story easy to state: offsets are assigned under the log
//! lock and enqueued before the lock drops, so each queue sees
//! non-decreasing offsets, and a worker's catch-up-then-serve loop never
//! observes a gap.

use crate::checkpoint::CheckpointStore;
use crate::log::DeclLog;
use crate::supervisor::{spawn_worker, WorkerHandle};
use crate::telemetry::{RequestTrace, SlowRequest, Telemetry};
use crate::worker::{BatchItem, Request};
use crate::{PoolConfig, PoolError};
use polyview::obs::{EventSink, SharedClock};
use polyview::{EffectSet, StmtClass};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TrySendError};
use std::sync::Arc;

/// Outcome of a submit against a bounded queue.
#[derive(Debug)]
pub enum Submit<T> {
    /// Accepted; the `T` resolves when the worker serves it.
    Queued(T),
    /// The target worker's queue is at capacity — backpressure. Retry,
    /// shed, or route elsewhere; nothing was enqueued and (for writes)
    /// nothing was sequenced.
    Full,
}

impl<T> Submit<T> {
    pub fn is_full(&self) -> bool {
        matches!(self, Submit::Full)
    }

    pub fn queued(self) -> Option<T> {
        match self {
            Submit::Queued(t) => Some(t),
            Submit::Full => None,
        }
    }
}

/// A pending reply from a worker.
#[derive(Debug)]
pub struct Ticket {
    worker: usize,
    /// For writes, the log offset the statement was sequenced at.
    sequenced: Option<u64>,
    rx: Receiver<Result<String, PoolError>>,
    /// Telemetry context, carried so a dead worker still yields a
    /// terminal `pool.worker_lost` event and an e2e observation.
    trace: Option<TicketTrace>,
}

/// The ticket's half of the trace: enough to emit the terminal event if
/// the worker never replies.
struct TicketTrace {
    telemetry: Arc<Telemetry>,
    trace: RequestTrace,
}

impl std::fmt::Debug for TicketTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketTrace")
            .field("trace", &self.trace)
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Which worker is serving this request.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The log offset this request was sequenced at, if it is a write.
    /// A write ticket's statement is durably in the declaration log — it
    /// will be applied by every replica whether or not the reply arrives.
    pub fn sequenced(&self) -> Option<u64> {
        self.sequenced
    }

    /// The telemetry trace id minted for this request, `None` when
    /// telemetry is disabled. This is the join key a front end (the
    /// network door) uses to stamp its own events — `net.read`,
    /// `net.decoded` — onto the same trace the pool and engine are
    /// already writing.
    pub fn trace_id(&self) -> Option<u64> {
        self.trace.as_ref().map(|tt| tt.trace.id)
    }

    /// Block until the worker replies. If the worker dies first, resolves
    /// to [`PoolError::WorkerLost`] (the supervisor respawns the worker on
    /// the pool's next interaction). A lost *read* is safe to resubmit; a
    /// lost *write* carries `sequenced: Some(offset)` and **must not be
    /// resubmitted** — it is already in the log and will be applied by
    /// every replica, only its outcome string was lost.
    pub fn wait(self) -> Result<String, PoolError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => {
                // The serving worker died with the request in flight: the
                // worker-side terminal event never fired, so the ticket
                // emits it — the trace still ends, and the e2e histogram
                // still counts the request.
                if let Some(tt) = &self.trace {
                    tt.telemetry.note_worker_lost(&tt.trace, self.worker);
                }
                Err(PoolError::WorkerLost {
                    sequenced: self.sequenced,
                })
            }
        }
    }
}

/// A pending reply for a pipelined batch ([`Pool::submit_batch`]): N
/// statements, one queue slot, one ticket.
#[derive(Debug)]
pub struct BatchTicket {
    worker: usize,
    /// For batches containing writes: the contiguous log range
    /// `[first, first + count)` the writes were sequenced at.
    sequenced: Option<(u64, u64)>,
    rx: Receiver<Vec<Result<String, PoolError>>>,
    trace: Option<TicketTrace>,
}

impl BatchTicket {
    /// Which worker is serving this batch.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The `(first_offset, count)` log range this batch's writes were
    /// sequenced at, if any. Like a single write's offset, the range is
    /// durable the moment the ticket exists: every replica will apply the
    /// writes whether or not the reply arrives.
    pub fn sequenced(&self) -> Option<(u64, u64)> {
        self.sequenced
    }

    /// The telemetry trace id of the batch (see [`Ticket::trace_id`]).
    pub fn trace_id(&self) -> Option<u64> {
        self.trace.as_ref().map(|tt| tt.trace.id)
    }

    /// Block until the worker replies with one result per statement, in
    /// submission order. A lost worker resolves to
    /// [`PoolError::WorkerLost`] carrying the first sequenced offset:
    /// batch writes, like single writes, are already in the log and must
    /// not be resubmitted.
    pub fn wait(self) -> Result<Vec<Result<String, PoolError>>, PoolError> {
        match self.rx.recv() {
            Ok(res) => Ok(res),
            Err(_) => {
                if let Some(tt) = &self.trace {
                    tt.telemetry.note_worker_lost(&tt.trace, self.worker);
                }
                Err(PoolError::WorkerLost {
                    sequenced: self.sequenced.map(|(first, _)| first),
                })
            }
        }
    }
}

/// Holds one worker inside its `Pause` request until dropped (or
/// [`WorkerGate::release`]d). Deterministic backpressure for tests and
/// demos: a paused worker dequeues nothing, so its bounded queue fills.
#[derive(Debug)]
pub struct WorkerGate {
    _tx: Sender<()>,
}

impl WorkerGate {
    /// Unblock the worker (equivalent to dropping the gate).
    pub fn release(self) {}
}

/// A replicated engine pool. See the crate docs for the model; the
/// API surface is [`Pool::submit`] / [`Pool::submit_read`] /
/// [`Pool::submit_write`] (non-blocking, backpressured), [`Pool::run`]
/// (blocking convenience), [`Pool::barrier`], [`Pool::stats`] /
/// [`Pool::metrics_json`], and [`Pool::shutdown`].
pub struct Pool {
    pub(crate) cfg: PoolConfig,
    pub(crate) log: Arc<DeclLog>,
    pub(crate) workers: Vec<WorkerHandle>,
    /// Names declared effectful by sequenced writes — the router-side half
    /// of classification ([`polyview::EffectSet`]). Kept in lockstep with
    /// the log: updated the moment a write is sequenced, so a later
    /// `f(o)` routes as a write even though it is syntactically pure.
    pub(crate) effects: EffectSet,
    /// Shared request telemetry (trace events, latency histograms, slow
    /// log) — one instance for the pool's lifetime, shared with every
    /// worker across respawns.
    pub(crate) telemetry: Arc<Telemetry>,
    /// The newest engine checkpoint (workers publish, the router reads it
    /// for bootstrap, log truncation, and snapshot-dir persistence).
    pub(crate) checkpoints: Arc<CheckpointStore>,
    pub(crate) respawns: u64,
    pub(crate) submitted_reads: u64,
    pub(crate) submitted_writes: u64,
    pub(crate) rejected_full: u64,
    /// Windowed-stats state ([`crate::PoolConfig::stats_window`]); `None`
    /// keeps ticking a zero-clock-read branch.
    pub(crate) window: Option<crate::health::PoolWindow>,
}

impl Pool {
    pub fn new(cfg: PoolConfig) -> Pool {
        assert!(cfg.workers >= 1, "a pool needs at least one worker");
        // With a snapshot directory, restart resumes from the newest
        // persisted checkpoint: the log starts fully compacted at the
        // checkpoint's offset and every replica bootstraps from its
        // engine bytes. Writes sequenced *after* the last persisted
        // checkpoint did not survive the previous process — the log is
        // in-memory by design; the checkpoint interval is the durability
        // granularity.
        let (checkpoints, restored) = match &cfg.snapshot_dir {
            Some(dir) => CheckpointStore::open(dir.clone()),
            None => (CheckpointStore::in_memory(), None),
        };
        let checkpoints = Arc::new(checkpoints);
        let log = Arc::new(match &restored {
            Some(r) => DeclLog::with_base(r.offset),
            None => DeclLog::new(),
        });
        let mut effects = EffectSet::new();
        if cfg.load_prelude {
            // Replicas load the prelude before serving; classification
            // must see the same declarations (the prelude is pure today,
            // but that is not this module's invariant to assume).
            let _ = effects.observe_program(polyview::prelude::PRELUDE);
        }
        if let Some(r) = &restored {
            // Re-arm classification: the sources that declared these
            // names effectful live in the compacted prefix and can never
            // be re-observed. The persisted set was taken at (or after)
            // the checkpoint's offset, so it is a superset of the names
            // effectful *at* the offset — conservative-safe: an extra
            // name only routes some pure statements through the log.
            for name in &r.effects {
                effects.mark_effectful(name.as_str());
            }
        }
        let telemetry = Arc::new(Telemetry::new(&cfg));
        let workers = (0..cfg.workers)
            .map(|i| spawn_worker(i, 0, &cfg, &log, &telemetry, &checkpoints))
            .collect();
        let window = cfg.stats_window.map(crate::health::PoolWindow::new);
        Pool {
            cfg,
            log,
            workers,
            effects,
            telemetry,
            checkpoints,
            respawns: 0,
            submitted_reads: 0,
            submitted_writes: 0,
            rejected_full: 0,
            window,
        }
    }

    /// A pool of `n` replicas with default queue/stack settings.
    pub fn with_workers(n: usize) -> Pool {
        Pool::new(PoolConfig::default().workers(n))
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of writes sequenced so far (absolute — compaction does not
    /// shrink it).
    pub fn log_len(&self) -> u64 {
        self.log.len()
    }

    /// The log's truncation point: entries below this offset have been
    /// compacted away (0 until checkpointing produces one).
    pub fn log_base(&self) -> u64 {
        self.log.base()
    }

    /// Grow the pool by `k` replicas. New workers bootstrap from the
    /// newest checkpoint and replay only the log tail above it — growth
    /// cost is bounded by the checkpoint interval, not by the full write
    /// history (without checkpointing they replay from offset 0, exactly
    /// like a respawn). Session affinity remaps over the new width, so
    /// some existing sessions migrate; replicas are interchangeable, so
    /// only their statement-cache warmth is lost.
    pub fn add_workers(&mut self, k: usize) {
        for _ in 0..k {
            let index = self.workers.len();
            self.workers.push(spawn_worker(
                index,
                0,
                &self.cfg,
                &self.log,
                &self.telemetry,
                &self.checkpoints,
            ));
        }
        self.cfg.workers = self.workers.len();
    }

    /// The declaration log (shared with every replica).
    pub fn log(&self) -> &Arc<DeclLog> {
        &self.log
    }

    /// Session affinity: which worker serves `session`'s requests. A
    /// bijective finalizer (splitmix64) spreads adjacent session ids
    /// across replicas while keeping the mapping stable for a session's
    /// lifetime — so a REPL-style session reuses one replica's warmed
    /// statement cache.
    pub fn worker_for(&self, session: u64) -> usize {
        (splitmix64(session) % self.workers.len() as u64) as usize
    }

    /// Classify `src` against the pool's [`EffectSet`] — syntax *plus*
    /// names that sequenced writes made effectful (`classify`'s module
    /// docs explain why bare syntax is not enough: `f(o)` after
    /// `fun f x = insert(C, x);` must be a write).
    pub fn classify(&self, src: &str) -> Result<StmtClass, PoolError> {
        Ok(self.effects.classify_program(src)?)
    }

    /// Classify `src` ([`Pool::classify`]) and route it: reads to the
    /// session's affinity worker, writes through the declaration log.
    pub fn submit(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match self.classify(src)? {
            StmtClass::Read => {
                let worker = self.worker_for(session);
                let trace = self.telemetry.begin(session, StmtClass::Read);
                Ok(self.dispatch_read(worker, src, trace))
            }
            StmtClass::Write => {
                let worker = self.worker_for(session);
                let trace = self.telemetry.begin(session, StmtClass::Write);
                Ok(self.dispatch_write(worker, src, trace))
            }
        }
    }

    /// Submit a statement that must be a read; a write is rejected with
    /// [`PoolError::Misrouted`] *before* anything is enqueued, so a
    /// mis-labelled mutation can never bypass log sequencing.
    pub fn submit_read(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match self.classify(src)? {
            StmtClass::Read => {
                let worker = self.worker_for(session);
                let trace = self.telemetry.begin(session, StmtClass::Read);
                Ok(self.dispatch_read(worker, src, trace))
            }
            got @ StmtClass::Write => Err(PoolError::Misrouted {
                expected: StmtClass::Read,
                got,
            }),
        }
    }

    /// Submit a statement that must be a write. Rejecting reads keeps the
    /// log free of no-op entries (every replica would replay them
    /// forever). For the one classification blind spot — calling an
    /// effectful closure reached through *data* rather than a name (see
    /// `classify`'s module docs) — wrap the call in a declaration
    /// (`val it = …;`): declarations always classify as writes, which
    /// forces sequencing.
    pub fn submit_write(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match self.classify(src)? {
            StmtClass::Write => {
                let worker = self.worker_for(session);
                let trace = self.telemetry.begin(session, StmtClass::Write);
                Ok(self.dispatch_write(worker, src, trace))
            }
            got @ StmtClass::Read => Err(PoolError::Misrouted {
                expected: StmtClass::Write,
                got,
            }),
        }
    }

    /// Submit a pipelined batch: N statements, one queue slot, one
    /// [`BatchTicket`] — the front door's amortization lever. All write
    /// items are sequenced **contiguously under one log-lock hold**
    /// (instead of N lock acquisitions and N queue slots), and the batch
    /// is served in order on the session's affinity replica, so a read
    /// item observes every write item before it. Backpressure is
    /// all-or-nothing: a full queue rejects the whole batch with
    /// [`Submit::Full`] and sequences nothing.
    pub fn submit_batch(
        &mut self,
        session: u64,
        stmts: &[&str],
    ) -> Result<Submit<BatchTicket>, PoolError> {
        if stmts.is_empty() {
            return Err(PoolError::Internal("empty batch".to_string()));
        }
        let mut classes = Vec::with_capacity(stmts.len());
        for src in stmts {
            classes.push(self.classify(src)?);
        }
        let worker = self.worker_for(session);
        let class = if classes.iter().any(|c| matches!(c, StmtClass::Write)) {
            StmtClass::Write
        } else {
            StmtClass::Read
        };
        let mut trace = self.telemetry.begin(session, class);
        self.supervise();
        let (reply, rx) = sync_channel(1);
        // Same atomicity discipline as `dispatch_write`, generalized:
        // reserve a contiguous offset range for the write items and
        // enqueue the batch while holding the log lock — nothing is
        // sequenced unless the queue accepted the request.
        let mut entries = self.log.lock();
        let base = entries.next_offset();
        let mut next = base;
        let mut items = Vec::with_capacity(stmts.len());
        let mut writes = Vec::new();
        for (src, class) in stmts.iter().zip(&classes) {
            match class {
                StmtClass::Write => {
                    items.push(BatchItem::Write { offset: next });
                    next += 1;
                    writes.push(*src);
                }
                StmtClass::Read => items.push(BatchItem::Read {
                    src: (*src).to_string(),
                }),
            }
        }
        let n_writes = writes.len() as u64;
        if let Some(t) = trace.as_mut() {
            self.telemetry.stamp_enqueue(t);
        }
        self.workers[worker]
            .shared
            .depth
            .fetch_add(1, Ordering::Relaxed);
        match self.workers[worker].tx.try_send(Request::Batch {
            items,
            min_offset: base,
            src: stmts.join(" ; "),
            reply,
            trace,
        }) {
            Ok(()) => {
                for src in &writes {
                    entries.push(src);
                }
                drop(entries);
                for src in &writes {
                    let _ = self.effects.observe_program(src);
                }
                self.submitted_writes += n_writes;
                self.submitted_reads += stmts.len() as u64 - n_writes;
                let sequenced = (n_writes > 0).then_some(base);
                if let Some(t) = &trace {
                    self.telemetry.note_enqueued(t, worker, sequenced);
                }
                if n_writes > 0 {
                    for i in 0..self.workers.len() {
                        if i != worker {
                            let _ = self.try_send(i, Request::CatchUp { upto: next });
                        }
                    }
                    self.compact_log();
                }
                Ok(Submit::Queued(BatchTicket {
                    worker,
                    sequenced: (n_writes > 0).then_some((base, n_writes)),
                    rx,
                    trace: trace.map(|trace| TicketTrace {
                        telemetry: Arc::clone(&self.telemetry),
                        trace,
                    }),
                }))
            }
            Err(_) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                drop(entries);
                self.rejected_full += 1;
                if let Some(t) = &trace {
                    self.telemetry.note_rejected(t, worker);
                }
                Ok(Submit::Full)
            }
        }
    }

    /// Whether request telemetry is enabled (fixed at construction).
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.enabled
    }

    /// The shared time source every telemetry timestamp comes from. A
    /// front end (the network door) reads the same clock so its events —
    /// `net.read`, `net.decoded` — land on the same timeline as the
    /// pool's and the engines'.
    pub fn telemetry_clock(&self) -> Arc<dyn SharedClock> {
        Arc::clone(&self.telemetry.clock)
    }

    /// The shared sink telemetry events are emitted to, for front ends
    /// stamping their own lifecycle events onto a request's trace.
    pub fn event_sink(&self) -> Arc<dyn EventSink> {
        Arc::clone(&self.telemetry.sink)
    }

    /// Flush everything already accepted: every request queued on every
    /// replica is served and every sequenced write applied before this
    /// returns. This is the pool-side half of a graceful drain (the
    /// network door stops accepting, drains its connections, then calls
    /// this); a barrier gives exactly that, since barrier requests queue
    /// behind all earlier work.
    pub fn drain(&mut self) -> Result<(), PoolError> {
        self.barrier().map(|_| ())
    }

    /// Blocking convenience over [`Pool::submit`]: waits out backpressure
    /// (sleeping with capped exponential backoff between retries — never a
    /// hot spin) and waits for the reply. Classification runs **once**,
    /// not per retry. REPL-style callers want exactly this; servers should
    /// use `submit` and handle [`Submit::Full`] themselves.
    pub fn run(&mut self, session: u64, src: &str) -> Result<String, PoolError> {
        let class = self.classify(src)?;
        let worker = self.worker_for(session);
        // One trace for the whole call: a backpressured retry re-stamps
        // its enqueue time (after a `pool.rejected_full` event) rather
        // than minting a fresh id, so the final timeline shows the waits.
        let trace = self.telemetry.begin(session, class);
        let mut backoff = std::time::Duration::from_micros(50);
        loop {
            let submit = match class {
                StmtClass::Read => self.dispatch_read(worker, src, trace),
                StmtClass::Write => self.dispatch_write(worker, src, trace),
            };
            match submit {
                Submit::Queued(ticket) => return ticket.wait(),
                Submit::Full => {
                    // The queue is full because the worker is busy (or
                    // paused): sleep rather than spin, backing off to a
                    // bound that keeps a wedged worker from pinning this
                    // core while staying responsive once it drains.
                    // `dispatch_*` re-runs supervision each retry, so a
                    // *dead* worker is respawned, not waited on.
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(std::time::Duration::from_millis(5));
                }
            }
        }
    }

    /// Route a read to a *specific* replica (bypassing affinity), waiting
    /// for the reply. The request still carries the current log length, so
    /// the replica catches up before answering — this is the probe the
    /// convergence tests use to check that every replica answers a query
    /// identically. A statement classifying as a write is rejected
    /// ([`PoolError::Misrouted`]): executing it on one replica only would
    /// diverge the pool.
    pub fn probe_worker(&mut self, worker: usize, src: &str) -> Result<String, PoolError> {
        if let got @ StmtClass::Write = self.classify(src)? {
            return Err(PoolError::Misrouted {
                expected: StmtClass::Read,
                got,
            });
        }
        self.supervise();
        let min_offset = self.log.len();
        let (reply, rx) = sync_channel(1);
        let req = Request::Read {
            src: src.to_string(),
            min_offset,
            reply,
            trace: None,
        };
        if self.blocking_send(worker, req).is_err() {
            return Err(PoolError::WorkerLost { sequenced: None });
        }
        rx.recv()
            .unwrap_or(Err(PoolError::WorkerLost { sequenced: None }))
    }

    /// The slow-request log, oldest first: every telemetry-tracked
    /// request whose end-to-end latency met
    /// [`crate::PoolConfig::slow_threshold_ns`], up to the configured ring
    /// capacity. Empty when no threshold is set (the default).
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.telemetry.slow_requests()
    }

    /// Wait until every replica has applied every write sequenced so far.
    /// Returns each worker's applied offset (all ≥ the log length observed
    /// at entry). Dead workers are respawned — and therefore fully caught
    /// up by replay — as part of the barrier.
    pub fn barrier(&mut self) -> Result<Vec<u64>, PoolError> {
        self.supervise();
        let upto = self.log.len();
        let mut pending = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            let (reply, rx) = sync_channel(1);
            if self
                .blocking_send(i, Request::Barrier { upto, reply })
                .is_err()
            {
                return Err(PoolError::WorkerLost { sequenced: None });
            }
            pending.push(rx);
        }
        let mut applied = Vec::with_capacity(pending.len());
        for rx in pending {
            applied.push(
                rx.recv()
                    .map_err(|_| PoolError::WorkerLost { sequenced: None })?,
            );
        }
        Ok(applied)
    }

    /// Hold `worker` inside a `Pause` request until the returned gate is
    /// dropped. While paused, the worker dequeues nothing, so submissions
    /// to it observe real [`Submit::Full`] backpressure — the hook the
    /// tier-1 backpressure test and the example server use. (The pause
    /// request itself is sent blocking, so it always lands.)
    pub fn pause_worker(&mut self, worker: usize) -> Result<WorkerGate, PoolError> {
        self.supervise();
        let (gtx, grx) = channel();
        if self
            .blocking_send(worker, Request::Pause { gate: grx })
            .is_err()
        {
            return Err(PoolError::WorkerLost { sequenced: None });
        }
        Ok(WorkerGate { _tx: gtx })
    }

    /// Make `worker` panic, and wait until its thread is actually dead —
    /// a deterministic chaos hook for supervision tests. The next pool
    /// interaction ([`Pool::supervise`] runs on every submit, barrier, and
    /// stats call) respawns it with a full log replay. Do not call while
    /// the worker is paused (it would never dequeue the crash); use
    /// [`Pool::queue_worker_panic`] + [`Pool::await_worker_exit`] there.
    pub fn inject_worker_panic(&mut self, worker: usize) {
        self.supervise();
        let _ = self.blocking_send(worker, Request::Crash);
        self.await_worker_exit(worker);
    }

    /// Enqueue a panic without waiting for it to be served — composes with
    /// [`Pool::pause_worker`] to order a crash deterministically between
    /// other queued requests. Returns false if the queue was full.
    pub fn queue_worker_panic(&mut self, worker: usize) -> bool {
        self.try_send(worker, Request::Crash).is_ok()
    }

    /// Spin until `worker`'s current thread has exited.
    pub fn await_worker_exit(&self, worker: usize) {
        while !self.workers[worker].join.is_finished() {
            std::thread::yield_now();
        }
    }

    /// Stop every worker and join their threads. Workers finish whatever
    /// is already queued first (the queue drains before the disconnect is
    /// observed), so shutdown is clean, not abortive.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Compact the log: persist the newest checkpoint to the snapshot
    /// directory (no-op without one), then drop every entry below
    /// `min(newest checkpoint offset, min over replicas of applied)`.
    /// Both bounds are necessary: a future bootstrap reads from the
    /// checkpoint offset, and a live replica (or a dead one about to be
    /// respawned — its frozen `applied` gauge is conservative) reads from
    /// its own `applied`. Returns the new truncation point. Runs after
    /// every sequenced write; without checkpointing it never truncates
    /// anything, which is exactly the pre-checkpoint behavior.
    pub fn compact_log(&mut self) -> u64 {
        let Some(cp) = self.checkpoints.latest_offset() else {
            return self.log.base();
        };
        self.persist_checkpoint();
        let min_applied = self
            .workers
            .iter()
            .map(|w| w.shared.applied.load(Ordering::Relaxed))
            .min()
            .unwrap_or(0);
        self.log.truncate_below(cp.min(min_applied));
        self.log.base()
    }

    /// Write the newest checkpoint (plus the router's current effect
    /// names — see `Pool::new` on why they must travel with it) to the
    /// snapshot directory. No-op without a directory or when the newest
    /// checkpoint is already on disk.
    fn persist_checkpoint(&self) {
        let effects: Vec<String> = self
            .effects
            .effectful_names()
            .map(|n| n.as_str().to_string())
            .collect();
        self.checkpoints.persist_latest(&effects);
    }

    fn shutdown_inner(&mut self) {
        for handle in self.workers.drain(..) {
            // Best effort explicit shutdown, then disconnect the queue —
            // the worker exits on whichever it sees first. Never block on
            // a full queue here.
            let _ = handle.tx.try_send(Request::Shutdown);
            drop(handle.tx);
            let _ = handle.join.join();
        }
        // Final durability point, after the drain so the slot holds the
        // newest checkpoint any worker published while finishing its
        // queue: a shutdown between compaction passes must not lose it.
        self.persist_checkpoint();
    }

    // ----- dispatch internals -----

    fn dispatch_read(
        &mut self,
        worker: usize,
        src: &str,
        mut trace: Option<RequestTrace>,
    ) -> Submit<Ticket> {
        self.supervise();
        let min_offset = self.log.len();
        // Stamp the enqueue time *before* the send: the worker can
        // dequeue (and read the clock) the instant the send lands, and
        // its reading must be ordered after ours for the queue wait to be
        // well-defined.
        if let Some(t) = trace.as_mut() {
            self.telemetry.stamp_enqueue(t);
        }
        let (reply, rx) = sync_channel(1);
        let req = Request::Read {
            src: src.to_string(),
            min_offset,
            reply,
            trace,
        };
        match self.try_send(worker, req) {
            Ok(()) => {
                self.submitted_reads += 1;
                if let Some(t) = &trace {
                    self.telemetry.note_enqueued(t, worker, None);
                }
                Submit::Queued(self.ticket(worker, None, rx, trace))
            }
            Err(()) => {
                self.rejected_full += 1;
                if let Some(t) = &trace {
                    self.telemetry.note_rejected(t, worker);
                }
                Submit::Full
            }
        }
    }

    fn ticket(
        &self,
        worker: usize,
        sequenced: Option<u64>,
        rx: Receiver<Result<String, PoolError>>,
        trace: Option<RequestTrace>,
    ) -> Ticket {
        Ticket {
            worker,
            sequenced,
            rx,
            trace: trace.map(|trace| TicketTrace {
                telemetry: Arc::clone(&self.telemetry),
                trace,
            }),
        }
    }

    fn dispatch_write(
        &mut self,
        worker: usize,
        src: &str,
        mut trace: Option<RequestTrace>,
    ) -> Submit<Ticket> {
        self.supervise();
        let (reply, rx) = sync_channel(1);
        // Reserve the next offset and enqueue the apply-request while
        // holding the log lock: nothing is sequenced unless the affinity
        // worker accepted the request (backpressure must not grow the
        // log), and no other thread can observe the offset before the
        // entry is in place.
        let mut entries = self.log.lock();
        let offset = entries.next_offset();
        // Enqueue stamp before the send (see `dispatch_read`).
        if let Some(t) = trace.as_mut() {
            self.telemetry.stamp_enqueue(t);
        }
        // Gauge before send, so the worker's decrement-on-dequeue can
        // never observe (and wrap below) a count that excludes its own
        // request; undone if the send fails.
        self.workers[worker]
            .shared
            .depth
            .fetch_add(1, Ordering::Relaxed);
        match self.workers[worker].tx.try_send(Request::Write {
            offset,
            reply,
            trace,
        }) {
            Ok(()) => {
                entries.push(src);
                drop(entries);
                // The write is sequenced: record the names it makes
                // effectful, so later statements that *use* them classify
                // as writes too (the declared-function escape).
                let _ = self.effects.observe_program(src);
                self.submitted_writes += 1;
                if let Some(t) = &trace {
                    self.telemetry.note_enqueued(t, worker, Some(offset));
                }
                // Eager propagation: nudge every other replica to replay
                // the new entry now rather than on its next read. Best
                // effort — a full queue just means that replica catches up
                // lazily (its next offset-carrying request replays the
                // gap).
                for i in 0..self.workers.len() {
                    if i != worker {
                        let _ = self.try_send(i, Request::CatchUp { upto: offset + 1 });
                    }
                }
                self.compact_log();
                Submit::Queued(self.ticket(worker, Some(offset), rx, trace))
            }
            Err(_) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                drop(entries);
                self.rejected_full += 1;
                if let Some(t) = &trace {
                    self.telemetry.note_rejected(t, worker);
                }
                Submit::Full
            }
        }
    }

    /// Non-blocking send with depth accounting — the gauge is incremented
    /// *before* the send and rolled back on failure, so the worker's
    /// decrement at dequeue always finds its own increment already in
    /// place (no transient wrap past zero). `Err(())` covers both a full
    /// queue and a disconnected (dead) worker; for reads the caller
    /// reports backpressure either way and the dead worker is respawned on
    /// the next interaction.
    fn try_send(&mut self, worker: usize, req: Request) -> Result<(), ()> {
        let depth = &self.workers[worker].shared.depth;
        depth.fetch_add(1, Ordering::Relaxed);
        match self.workers[worker].tx.try_send(req) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                Err(())
            }
        }
    }

    /// Blocking send for control-plane requests (barrier, stats, pause,
    /// probe): waits out a momentarily full queue, errs only if the worker
    /// is gone. Same gauge discipline as [`Pool::try_send`].
    pub(crate) fn blocking_send(&mut self, worker: usize, req: Request) -> Result<(), ()> {
        let depth = &self.workers[worker].shared.depth;
        depth.fetch_add(1, Ordering::Relaxed);
        match self.workers[worker].tx.send(req) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_sub(1, Ordering::Relaxed);
                Err(())
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// splitmix64's finalizer: a cheap bijective mixer, plenty for spreading
/// session ids across a handful of replicas.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_is_stable_and_spread() {
        let pool = Pool::new(PoolConfig::default().workers(4));
        let w = pool.worker_for(42);
        assert_eq!(pool.worker_for(42), w, "affinity must be stable");
        let hit: std::collections::BTreeSet<usize> = (0..64).map(|s| pool.worker_for(s)).collect();
        assert!(hit.len() > 1, "sessions must spread across replicas");
        pool.shutdown();
    }

    #[test]
    fn splitmix_is_not_identity_like() {
        // Adjacent inputs should not map to adjacent outputs mod small n.
        let outs: Vec<u64> = (0..8).map(|i| splitmix64(i) % 4).collect();
        assert!(outs.iter().collect::<std::collections::BTreeSet<_>>().len() > 1);
    }
}

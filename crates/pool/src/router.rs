//! The pool front-end: classification, session-affinity routing, write
//! sequencing, barriers, and shutdown.
//!
//! A [`Pool`] is driven from one coordinating thread (`&mut self`
//! methods); all concurrency lives behind the workers' queues. That makes
//! the ordering story easy to state: offsets are assigned under the log
//! lock and enqueued before the lock drops, so each queue sees
//! non-decreasing offsets, and a worker's catch-up-then-serve loop never
//! observes a gap.

use crate::log::DeclLog;
use crate::supervisor::{spawn_worker, WorkerHandle};
use crate::worker::Request;
use crate::{PoolConfig, PoolError};
use polyview::{classify_program, StmtClass};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TrySendError};
use std::sync::Arc;

/// Outcome of a submit against a bounded queue.
#[derive(Debug)]
pub enum Submit<T> {
    /// Accepted; the `T` resolves when the worker serves it.
    Queued(T),
    /// The target worker's queue is at capacity — backpressure. Retry,
    /// shed, or route elsewhere; nothing was enqueued and (for writes)
    /// nothing was sequenced.
    Full,
}

impl<T> Submit<T> {
    pub fn is_full(&self) -> bool {
        matches!(self, Submit::Full)
    }

    pub fn queued(self) -> Option<T> {
        match self {
            Submit::Queued(t) => Some(t),
            Submit::Full => None,
        }
    }
}

/// A pending reply from a worker.
#[derive(Debug)]
pub struct Ticket {
    worker: usize,
    rx: Receiver<Result<String, PoolError>>,
}

impl Ticket {
    /// Which worker is serving this request.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Block until the worker replies. If the worker dies first, resolves
    /// to [`PoolError::WorkerLost`] (the supervisor respawns the worker on
    /// the pool's next interaction; resubmit the request).
    pub fn wait(self) -> Result<String, PoolError> {
        self.rx.recv().unwrap_or(Err(PoolError::WorkerLost))
    }
}

/// Holds one worker inside its `Pause` request until dropped (or
/// [`WorkerGate::release`]d). Deterministic backpressure for tests and
/// demos: a paused worker dequeues nothing, so its bounded queue fills.
#[derive(Debug)]
pub struct WorkerGate {
    _tx: Sender<()>,
}

impl WorkerGate {
    /// Unblock the worker (equivalent to dropping the gate).
    pub fn release(self) {}
}

/// A replicated engine pool. See the crate docs for the model; the
/// API surface is [`Pool::submit`] / [`Pool::submit_read`] /
/// [`Pool::submit_write`] (non-blocking, backpressured), [`Pool::run`]
/// (blocking convenience), [`Pool::barrier`], [`Pool::stats`] /
/// [`Pool::metrics_json`], and [`Pool::shutdown`].
pub struct Pool {
    pub(crate) cfg: PoolConfig,
    pub(crate) log: Arc<DeclLog>,
    pub(crate) workers: Vec<WorkerHandle>,
    pub(crate) respawns: u64,
    pub(crate) submitted_reads: u64,
    pub(crate) submitted_writes: u64,
    pub(crate) rejected_full: u64,
}

impl Pool {
    pub fn new(cfg: PoolConfig) -> Pool {
        assert!(cfg.workers >= 1, "a pool needs at least one worker");
        let log = Arc::new(DeclLog::new());
        let workers = (0..cfg.workers)
            .map(|i| spawn_worker(i, 0, &cfg, &log))
            .collect();
        Pool {
            cfg,
            log,
            workers,
            respawns: 0,
            submitted_reads: 0,
            submitted_writes: 0,
            rejected_full: 0,
        }
    }

    /// A pool of `n` replicas with default queue/stack settings.
    pub fn with_workers(n: usize) -> Pool {
        Pool::new(PoolConfig::default().workers(n))
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of writes sequenced so far.
    pub fn log_len(&self) -> u64 {
        self.log.len()
    }

    /// The declaration log (shared with every replica).
    pub fn log(&self) -> &Arc<DeclLog> {
        &self.log
    }

    /// Session affinity: which worker serves `session`'s requests. A
    /// bijective finalizer (splitmix64) spreads adjacent session ids
    /// across replicas while keeping the mapping stable for a session's
    /// lifetime — so a REPL-style session reuses one replica's warmed
    /// statement cache.
    pub fn worker_for(&self, session: u64) -> usize {
        (splitmix64(session) % self.workers.len() as u64) as usize
    }

    /// Classify `src` ([`polyview::classify`], the single source of
    /// truth) and route it: reads to the session's affinity worker, writes
    /// through the declaration log.
    pub fn submit(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match classify_program(src)? {
            StmtClass::Read => {
                let worker = self.worker_for(session);
                Ok(self.dispatch_read(worker, src))
            }
            StmtClass::Write => {
                let worker = self.worker_for(session);
                Ok(self.dispatch_write(worker, src))
            }
        }
    }

    /// Submit a statement that must be a read; a write is rejected with
    /// [`PoolError::Misrouted`] *before* anything is enqueued, so a
    /// mis-labelled mutation can never bypass log sequencing.
    pub fn submit_read(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match classify_program(src)? {
            StmtClass::Read => {
                let worker = self.worker_for(session);
                Ok(self.dispatch_read(worker, src))
            }
            got @ StmtClass::Write => Err(PoolError::Misrouted {
                expected: StmtClass::Read,
                got,
            }),
        }
    }

    /// Submit a statement that must be a write. Rejecting reads keeps the
    /// log free of no-op entries (every replica would replay them
    /// forever).
    pub fn submit_write(&mut self, session: u64, src: &str) -> Result<Submit<Ticket>, PoolError> {
        match classify_program(src)? {
            StmtClass::Write => {
                let worker = self.worker_for(session);
                Ok(self.dispatch_write(worker, src))
            }
            got @ StmtClass::Read => Err(PoolError::Misrouted {
                expected: StmtClass::Write,
                got,
            }),
        }
    }

    /// Blocking convenience over [`Pool::submit`]: spins (yielding) on
    /// backpressure and waits for the reply. REPL-style callers want
    /// exactly this; servers should use `submit` and handle
    /// [`Submit::Full`] themselves.
    pub fn run(&mut self, session: u64, src: &str) -> Result<String, PoolError> {
        loop {
            match self.submit(session, src)? {
                Submit::Queued(ticket) => return ticket.wait(),
                Submit::Full => std::thread::yield_now(),
            }
        }
    }

    /// Route a read to a *specific* replica (bypassing affinity), waiting
    /// for the reply. The request still carries the current log length, so
    /// the replica catches up before answering — this is the probe the
    /// convergence tests use to check that every replica answers a query
    /// identically.
    pub fn probe_worker(&mut self, worker: usize, src: &str) -> Result<String, PoolError> {
        self.supervise();
        let min_offset = self.log.len();
        let (reply, rx) = sync_channel(1);
        let req = Request::Read {
            src: src.to_string(),
            min_offset,
            reply,
        };
        if self.blocking_send(worker, req).is_err() {
            return Err(PoolError::WorkerLost);
        }
        rx.recv().unwrap_or(Err(PoolError::WorkerLost))
    }

    /// Wait until every replica has applied every write sequenced so far.
    /// Returns each worker's applied offset (all ≥ the log length observed
    /// at entry). Dead workers are respawned — and therefore fully caught
    /// up by replay — as part of the barrier.
    pub fn barrier(&mut self) -> Result<Vec<u64>, PoolError> {
        self.supervise();
        let upto = self.log.len();
        let mut pending = Vec::with_capacity(self.workers.len());
        for i in 0..self.workers.len() {
            let (reply, rx) = sync_channel(1);
            if self
                .blocking_send(i, Request::Barrier { upto, reply })
                .is_err()
            {
                return Err(PoolError::WorkerLost);
            }
            pending.push(rx);
        }
        let mut applied = Vec::with_capacity(pending.len());
        for rx in pending {
            applied.push(rx.recv().map_err(|_| PoolError::WorkerLost)?);
        }
        Ok(applied)
    }

    /// Hold `worker` inside a `Pause` request until the returned gate is
    /// dropped. While paused, the worker dequeues nothing, so submissions
    /// to it observe real [`Submit::Full`] backpressure — the hook the
    /// tier-1 backpressure test and the example server use. (The pause
    /// request itself is sent blocking, so it always lands.)
    pub fn pause_worker(&mut self, worker: usize) -> Result<WorkerGate, PoolError> {
        self.supervise();
        let (gtx, grx) = channel();
        if self
            .blocking_send(worker, Request::Pause { gate: grx })
            .is_err()
        {
            return Err(PoolError::WorkerLost);
        }
        Ok(WorkerGate { _tx: gtx })
    }

    /// Make `worker` panic, and wait until its thread is actually dead —
    /// a deterministic chaos hook for supervision tests. The next pool
    /// interaction ([`Pool::supervise`] runs on every submit, barrier, and
    /// stats call) respawns it with a full log replay. Do not call while
    /// the worker is paused (it would never dequeue the crash); use
    /// [`Pool::queue_worker_panic`] + [`Pool::await_worker_exit`] there.
    pub fn inject_worker_panic(&mut self, worker: usize) {
        self.supervise();
        let _ = self.blocking_send(worker, Request::Crash);
        self.await_worker_exit(worker);
    }

    /// Enqueue a panic without waiting for it to be served — composes with
    /// [`Pool::pause_worker`] to order a crash deterministically between
    /// other queued requests. Returns false if the queue was full.
    pub fn queue_worker_panic(&mut self, worker: usize) -> bool {
        self.try_send(worker, Request::Crash).is_ok()
    }

    /// Spin until `worker`'s current thread has exited.
    pub fn await_worker_exit(&self, worker: usize) {
        while !self.workers[worker].join.is_finished() {
            std::thread::yield_now();
        }
    }

    /// Stop every worker and join their threads. Workers finish whatever
    /// is already queued first (the queue drains before the disconnect is
    /// observed), so shutdown is clean, not abortive.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for handle in self.workers.drain(..) {
            // Best effort explicit shutdown, then disconnect the queue —
            // the worker exits on whichever it sees first. Never block on
            // a full queue here.
            let _ = handle.tx.try_send(Request::Shutdown);
            drop(handle.tx);
            let _ = handle.join.join();
        }
    }

    // ----- dispatch internals -----

    fn dispatch_read(&mut self, worker: usize, src: &str) -> Submit<Ticket> {
        self.supervise();
        let min_offset = self.log.len();
        let (reply, rx) = sync_channel(1);
        let req = Request::Read {
            src: src.to_string(),
            min_offset,
            reply,
        };
        match self.try_send(worker, req) {
            Ok(()) => {
                self.submitted_reads += 1;
                Submit::Queued(Ticket { worker, rx })
            }
            Err(()) => {
                self.rejected_full += 1;
                Submit::Full
            }
        }
    }

    fn dispatch_write(&mut self, worker: usize, src: &str) -> Submit<Ticket> {
        self.supervise();
        let (reply, rx) = sync_channel(1);
        // Reserve the next offset and enqueue the apply-request while
        // holding the log lock: nothing is sequenced unless the affinity
        // worker accepted the request (backpressure must not grow the
        // log), and no other thread can observe the offset before the
        // entry is in place.
        let mut entries = self.log.lock();
        let offset = entries.len() as u64;
        match self.workers[worker]
            .tx
            .try_send(Request::Write { offset, reply })
        {
            Ok(()) => {
                entries.push(Arc::from(src));
                drop(entries);
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_add(1, Ordering::Relaxed);
                self.submitted_writes += 1;
                // Eager propagation: nudge every other replica to replay
                // the new entry now rather than on its next read. Best
                // effort — a full queue just means that replica catches up
                // lazily (its next offset-carrying request replays the
                // gap).
                for i in 0..self.workers.len() {
                    if i != worker {
                        let _ = self.try_send(i, Request::CatchUp { upto: offset + 1 });
                    }
                }
                Submit::Queued(Ticket { worker, rx })
            }
            Err(_) => {
                drop(entries);
                self.rejected_full += 1;
                Submit::Full
            }
        }
    }

    /// Non-blocking send with depth accounting. `Err(())` covers both a
    /// full queue and a disconnected (dead) worker; for reads the caller
    /// reports backpressure either way and the dead worker is respawned on
    /// the next interaction.
    fn try_send(&mut self, worker: usize, req: Request) -> Result<(), ()> {
        match self.workers[worker].tx.try_send(req) {
            Ok(()) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => Err(()),
        }
    }

    /// Blocking send for control-plane requests (barrier, stats, pause,
    /// probe): waits out a momentarily full queue, errs only if the worker
    /// is gone.
    pub(crate) fn blocking_send(&mut self, worker: usize, req: Request) -> Result<(), ()> {
        match self.workers[worker].tx.send(req) {
            Ok(()) => {
                self.workers[worker]
                    .shared
                    .depth
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(_) => Err(()),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// splitmix64's finalizer: a cheap bijective mixer, plenty for spreading
/// session ids across a handful of replicas.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_is_stable_and_spread() {
        let pool = Pool::new(PoolConfig::default().workers(4));
        let w = pool.worker_for(42);
        assert_eq!(pool.worker_for(42), w, "affinity must be stable");
        let hit: std::collections::BTreeSet<usize> = (0..64).map(|s| pool.worker_for(s)).collect();
        assert!(hit.len() > 1, "sessions must spread across replicas");
        pool.shutdown();
    }

    #[test]
    fn splitmix_is_not_identity_like() {
        // Adjacent inputs should not map to adjacent outputs mod small n.
        let outs: Vec<u64> = (0..8).map(|i| splitmix64(i) % 4).collect();
        assert!(outs.iter().collect::<std::collections::BTreeSet<_>>().len() > 1);
    }
}

//! Engine checkpoints: the bound on respawn replay and the durability
//! story.
//!
//! A checkpoint is an [`polyview::Engine::snapshot`] taken by a worker
//! after applying the log prefix `[0, offset)`. Replay is deterministic,
//! so *which* worker took it does not matter — every replica at `offset`
//! has byte-identical state — and one shared slot holding the newest
//! checkpoint serves the whole pool:
//!
//! * a respawned (or newly added) worker restores the checkpointed engine
//!   and replays only the log tail `[offset, head)` instead of the whole
//!   history;
//! * the router may truncate the log below `min(offset, every replica's
//!   applied)` — nothing will ever read below that
//!   ([`crate::DeclLog::truncate_below`]);
//! * with a snapshot directory configured, the router persists the newest
//!   checkpoint (plus the effect-set names classification needs — their
//!   defining sources live in the truncated prefix) so a *restarted
//!   process* resumes from it.
//!
//! Persistence is crash-safe by construction: write to a temp file, then
//! `rename` into place (atomic on POSIX), then prune older files. The
//! on-disk format is the same hand-rolled no-serde discipline as the wire
//! codec (`polyview::syntax::wire`): magic, version, offset, effect
//! names, engine bytes.

use polyview::syntax::wire::{ByteReader, ByteWriter, WireError};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// File magic for a persisted pool checkpoint ("PolyView Pool
/// Checkpoint").
const CKPT_MAGIC: [u8; 4] = *b"PVPC";
const CKPT_VERSION: u32 = 1;

/// The newest engine snapshot the pool holds, tagged with the log prefix
/// it covers. Cheap to clone (the bytes are shared).
#[derive(Clone, Debug)]
pub(crate) struct Checkpoint {
    /// Exclusive log offset: the engine state after applying `[0, offset)`.
    pub offset: u64,
    /// [`polyview::Engine::snapshot`] bytes.
    pub engine: Arc<[u8]>,
}

/// What a persisted checkpoint restores at process restart, beyond the
/// engine bytes themselves: the effect-set names the router needs to keep
/// classifying correctly once the defining log prefix is gone.
#[derive(Debug)]
pub(crate) struct RestoredCheckpoint {
    pub offset: u64,
    pub effects: Vec<String>,
}

/// One shared slot holding the newest checkpoint, plus the optional
/// directory it is persisted to. Shared (`Arc`) between the router and
/// every worker: workers publish, the router reads for bootstrap,
/// truncation, and persistence.
#[derive(Debug)]
pub(crate) struct CheckpointStore {
    slot: Mutex<Option<Checkpoint>>,
    dir: Option<PathBuf>,
    /// Offset of the newest checkpoint written to `dir` (0 = none yet);
    /// guards against rewriting the same file on every compaction pass.
    persisted: Mutex<u64>,
}

impl CheckpointStore {
    /// An in-memory store (no durability across process restarts).
    pub(crate) fn in_memory() -> CheckpointStore {
        CheckpointStore {
            slot: Mutex::new(None),
            dir: None,
            persisted: Mutex::new(0),
        }
    }

    /// Open (creating if needed) a snapshot directory, loading the newest
    /// valid checkpoint file into the slot. Corrupt or unreadable files
    /// are reported loudly on stderr and skipped — the pool starts from
    /// the newest file that decodes, or empty. Returns the store plus the
    /// restart payload (offset + effect names) when a checkpoint loaded.
    pub(crate) fn open(dir: PathBuf) -> (CheckpointStore, Option<RestoredCheckpoint>) {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "pool: cannot create snapshot dir {}: {e}; running without durability",
                dir.display()
            );
            return (CheckpointStore::in_memory(), None);
        }
        let mut candidates = checkpoint_files(&dir);
        // Newest first (offsets are encoded in the file names).
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (offset, path) in candidates {
            match read_checkpoint_file(&path) {
                Ok((cp, effects)) => {
                    debug_assert_eq!(cp.offset, offset);
                    let restored = RestoredCheckpoint {
                        offset: cp.offset,
                        effects,
                    };
                    let store = CheckpointStore {
                        slot: Mutex::new(Some(cp)),
                        dir: Some(dir),
                        persisted: Mutex::new(offset),
                    };
                    return (store, Some(restored));
                }
                Err(e) => {
                    eprintln!("pool: ignoring corrupt checkpoint {}: {e}", path.display());
                }
            }
        }
        let store = CheckpointStore {
            slot: Mutex::new(None),
            dir: Some(dir),
            persisted: Mutex::new(0),
        };
        (store, None)
    }

    /// The newest checkpoint, if any (cheap: bytes are `Arc`-shared).
    pub(crate) fn latest(&self) -> Option<Checkpoint> {
        self.lock_slot().clone()
    }

    /// The newest checkpoint's offset, if any.
    pub(crate) fn latest_offset(&self) -> Option<u64> {
        self.lock_slot().as_ref().map(|c| c.offset)
    }

    /// Publish a checkpoint (worker-side). Kept only if strictly newer
    /// than the current slot — replicas racing to checkpoint the same
    /// prefix produce identical bytes, so dropping the loser loses
    /// nothing.
    pub(crate) fn publish(&self, cp: Checkpoint) {
        let mut slot = self.lock_slot();
        if slot.as_ref().is_none_or(|cur| cur.offset < cp.offset) {
            *slot = Some(cp);
        }
    }

    /// Persist the newest checkpoint to the snapshot directory if it is
    /// newer than what is already on disk (router-side; `effects` is the
    /// router's current effect-name set). I/O errors are loud on stderr
    /// but non-fatal: the in-memory checkpoint still bounds respawn
    /// replay; only restart durability is degraded.
    pub(crate) fn persist_latest(&self, effects: &[String]) {
        let Some(dir) = &self.dir else { return };
        let Some(cp) = self.latest() else { return };
        let mut persisted = self.persisted.lock().unwrap_or_else(|e| e.into_inner());
        if *persisted >= cp.offset {
            return;
        }
        match write_checkpoint_file(dir, &cp, effects) {
            Ok(path) => {
                *persisted = cp.offset;
                drop(persisted);
                prune_below(dir, cp.offset, &path);
            }
            Err(e) => {
                eprintln!(
                    "pool: failed to persist checkpoint at offset {} to {}: {e}",
                    cp.offset,
                    dir.display()
                );
            }
        }
    }

    fn lock_slot(&self) -> std::sync::MutexGuard<'_, Option<Checkpoint>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn file_name(offset: u64) -> String {
    // Zero-padded so lexicographic order equals offset order for the
    // curious shell user; the loader parses the number, not the order.
    format!("checkpoint-{offset:020}.pvpc")
}

/// `(offset, path)` for every well-formed checkpoint file in `dir`.
fn checkpoint_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".pvpc"))
        else {
            continue;
        };
        if let Ok(offset) = num.parse::<u64>() {
            out.push((offset, entry.path()));
        }
    }
    out
}

fn write_checkpoint_file(
    dir: &Path,
    cp: &Checkpoint,
    effects: &[String],
) -> std::io::Result<PathBuf> {
    let mut w = ByteWriter::new();
    w.u32(u32::from_le_bytes(CKPT_MAGIC));
    w.u32(CKPT_VERSION);
    w.u64(cp.offset);
    w.usize(effects.len());
    for name in effects {
        w.str(name);
    }
    w.bytes(&cp.engine);
    let bytes = w.into_bytes();

    let final_path = dir.join(file_name(cp.offset));
    let tmp_path = dir.join(format!("{}.tmp", file_name(cp.offset)));
    std::fs::write(&tmp_path, &bytes)?;
    // Atomic publish: readers only ever see a complete file.
    std::fs::rename(&tmp_path, &final_path)?;
    Ok(final_path)
}

fn read_checkpoint_file(path: &Path) -> Result<(Checkpoint, Vec<String>), String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    parse_checkpoint(&bytes).map_err(|e| e.to_string())
}

fn parse_checkpoint(bytes: &[u8]) -> Result<(Checkpoint, Vec<String>), WireError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.u32("checkpoint magic")?;
    if magic.to_le_bytes() != CKPT_MAGIC {
        return Err(WireError::Malformed(format!(
            "bad checkpoint magic {:?}",
            magic.to_le_bytes()
        )));
    }
    let version = r.u32("checkpoint version")?;
    if version != CKPT_VERSION {
        return Err(WireError::Malformed(format!(
            "unsupported checkpoint version {version} (expected {CKPT_VERSION})"
        )));
    }
    let offset = r.u64("checkpoint offset")?;
    let n_effects = r.count("effect name count")?;
    let mut effects = Vec::with_capacity(n_effects);
    for _ in 0..n_effects {
        effects.push(r.str("effect name")?);
    }
    let engine = r.bytes("engine snapshot bytes")?;
    // Validate the payload decodes before anyone trusts it: a truncated
    // or corrupt engine section must fail at load, loudly, not inside a
    // worker thread at respawn time.
    polyview::Engine::from_snapshot(engine).map_err(|e| match e {
        polyview::Error::Snapshot(w) => w,
        other => WireError::Malformed(other.to_string()),
    })?;
    if !r.finished() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after checkpoint",
            r.remaining()
        )));
    }
    Ok((
        Checkpoint {
            offset,
            engine: engine.to_vec().into(),
        },
        effects,
    ))
}

/// Remove persisted checkpoints older than `keep_offset` (best effort;
/// `keep_path` is never touched).
fn prune_below(dir: &Path, keep_offset: u64, keep_path: &Path) {
    for (offset, path) in checkpoint_files(dir) {
        if offset < keep_offset && path != keep_path {
            let _ = std::fs::remove_file(&path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("polyview-ckpt-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn engine_bytes() -> Arc<[u8]> {
        polyview::Engine::new().snapshot().into()
    }

    #[test]
    fn publish_keeps_the_newest() {
        let store = CheckpointStore::in_memory();
        assert!(store.latest().is_none());
        let bytes = engine_bytes();
        store.publish(Checkpoint {
            offset: 4,
            engine: Arc::clone(&bytes),
        });
        store.publish(Checkpoint {
            offset: 2,
            engine: Arc::clone(&bytes),
        });
        assert_eq!(store.latest_offset(), Some(4), "older publish is dropped");
        store.publish(Checkpoint {
            offset: 8,
            engine: bytes,
        });
        assert_eq!(store.latest_offset(), Some(8));
    }

    #[test]
    fn persist_and_reopen_roundtrips() {
        let dir = temp_dir("roundtrip");
        let (store, restored) = CheckpointStore::open(dir.clone());
        assert!(restored.is_none(), "fresh dir has nothing to restore");
        store.publish(Checkpoint {
            offset: 3,
            engine: engine_bytes(),
        });
        store.persist_latest(&["f".to_string(), "g".to_string()]);

        let (reopened, restored) = CheckpointStore::open(dir.clone());
        let restored = restored.expect("persisted checkpoint restores");
        assert_eq!(restored.offset, 3);
        assert_eq!(restored.effects, ["f", "g"]);
        assert_eq!(reopened.latest_offset(), Some(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newer_persist_prunes_older_files() {
        let dir = temp_dir("prune");
        let (store, _) = CheckpointStore::open(dir.clone());
        store.publish(Checkpoint {
            offset: 2,
            engine: engine_bytes(),
        });
        store.persist_latest(&[]);
        store.publish(Checkpoint {
            offset: 5,
            engine: engine_bytes(),
        });
        store.persist_latest(&[]);
        let files = checkpoint_files(&dir);
        assert_eq!(files.len(), 1, "older checkpoint pruned: {files:?}");
        assert_eq!(files[0].0, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_skipped_loudly_not_trusted() {
        let dir = temp_dir("corrupt");
        std::fs::write(dir.join(file_name(9)), b"PVPCgarbage").expect("write");
        let (store, restored) = CheckpointStore::open(dir.clone());
        assert!(restored.is_none(), "corrupt checkpoint must not restore");
        assert!(store.latest().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
